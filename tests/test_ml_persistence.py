"""Tests for model persistence, checkpoints and memory sizing."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.persistence import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    load_model,
    model_memory_bytes,
    save_checkpoint,
    save_model,
)
from repro.ml.preprocessing import StandardScaler


def _trained_mlp(rng):
    features = rng.normal(size=(60, 4))
    labels = rng.integers(0, 3, size=60)
    model = MLPClassifier(input_dim=4, num_classes=3, hidden_units=(8,), seed=0,
                          max_epochs=10)
    model.fit(features, labels)
    return model, features


class TestSaveLoad:
    def test_mlp_round_trip(self, tmp_path, rng):
        model, features = _trained_mlp(rng)
        path = save_model(tmp_path / "model.json", model)
        rebuilt, scaler, metadata = load_model(path)
        assert scaler is None
        assert metadata == {}
        np.testing.assert_allclose(
            rebuilt.predict_proba(features[:5]), model.predict_proba(features[:5])
        )

    def test_round_trip_with_scaler_and_metadata(self, tmp_path, rng):
        model, features = _trained_mlp(rng)
        scaler = StandardScaler().fit(features)
        path = save_model(
            tmp_path / "nested" / "model.json",
            model,
            scaler=scaler,
            metadata={"accuracy": 0.97, "configs": ["F100_A128"]},
        )
        rebuilt, rebuilt_scaler, metadata = load_model(path)
        assert metadata["accuracy"] == 0.97
        np.testing.assert_allclose(
            rebuilt_scaler.transform(features), scaler.transform(features)
        )

    def test_logistic_round_trip(self, tmp_path, rng):
        features = rng.normal(size=(40, 3))
        labels = rng.integers(0, 2, size=40)
        model = LogisticRegressionClassifier(input_dim=3, num_classes=2, seed=1)
        model.fit(features, labels)
        path = save_model(tmp_path / "logistic.json", model)
        rebuilt, _, _ = load_model(path)
        assert isinstance(rebuilt, LogisticRegressionClassifier)
        np.testing.assert_allclose(
            rebuilt.predict_proba(features), model.predict_proba(features)
        )

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"model": {"kind": "svm"}, "scaler": null, "metadata": {}}')
        with pytest.raises(ValueError):
            load_model(path)


class TestCheckpoints:
    def test_round_trip_preserves_aliasing(self, tmp_path, rng):
        shared = rng.normal(size=(4, 3))
        payload = {"a": shared, "b": shared, "step": 7}
        written = save_checkpoint(tmp_path / "ck" / "round.ckpt", payload)
        assert written == (tmp_path / "ck" / "round.ckpt").stat().st_size
        loaded = load_checkpoint(tmp_path / "ck" / "round.ckpt")
        assert loaded["step"] == 7
        np.testing.assert_array_equal(loaded["a"], shared)
        # The single-dump format keeps shared references shared.
        assert loaded["a"] is loaded["b"]

    def test_no_temp_file_left_behind(self, tmp_path):
        save_checkpoint(tmp_path / "round.ckpt", {"x": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["round.ckpt"]

    def test_foreign_pickle_rejected(self, tmp_path):
        path = tmp_path / "alien.ckpt"
        path.write_bytes(pickle.dumps({"whatever": 1}))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_bytes(
            pickle.dumps(
                {
                    "magic": "repro-checkpoint",
                    "version": CHECKPOINT_VERSION + 1,
                    "payload": {},
                }
            )
        )
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "short.ckpt"
        save_checkpoint(path, {"x": list(range(100))})
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(Exception):
            load_checkpoint(path)


class TestModelMemoryBytes:
    def test_float32_sizing(self, rng):
        model, _ = _trained_mlp(rng)
        assert model_memory_bytes(model) == model.num_parameters * 4

    def test_quantised_sizing(self, rng):
        model, _ = _trained_mlp(rng)
        assert model_memory_bytes(model, bytes_per_weight=1) == model.num_parameters

    def test_invalid_bytes_per_weight(self, rng):
        model, _ = _trained_mlp(rng)
        with pytest.raises(ValueError):
            model_memory_bytes(model, bytes_per_weight=0)

"""Tests for model persistence and memory sizing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.persistence import load_model, model_memory_bytes, save_model
from repro.ml.preprocessing import StandardScaler


def _trained_mlp(rng):
    features = rng.normal(size=(60, 4))
    labels = rng.integers(0, 3, size=60)
    model = MLPClassifier(input_dim=4, num_classes=3, hidden_units=(8,), seed=0,
                          max_epochs=10)
    model.fit(features, labels)
    return model, features


class TestSaveLoad:
    def test_mlp_round_trip(self, tmp_path, rng):
        model, features = _trained_mlp(rng)
        path = save_model(tmp_path / "model.json", model)
        rebuilt, scaler, metadata = load_model(path)
        assert scaler is None
        assert metadata == {}
        np.testing.assert_allclose(
            rebuilt.predict_proba(features[:5]), model.predict_proba(features[:5])
        )

    def test_round_trip_with_scaler_and_metadata(self, tmp_path, rng):
        model, features = _trained_mlp(rng)
        scaler = StandardScaler().fit(features)
        path = save_model(
            tmp_path / "nested" / "model.json",
            model,
            scaler=scaler,
            metadata={"accuracy": 0.97, "configs": ["F100_A128"]},
        )
        rebuilt, rebuilt_scaler, metadata = load_model(path)
        assert metadata["accuracy"] == 0.97
        np.testing.assert_allclose(
            rebuilt_scaler.transform(features), scaler.transform(features)
        )

    def test_logistic_round_trip(self, tmp_path, rng):
        features = rng.normal(size=(40, 3))
        labels = rng.integers(0, 2, size=40)
        model = LogisticRegressionClassifier(input_dim=3, num_classes=2, seed=1)
        model.fit(features, labels)
        path = save_model(tmp_path / "logistic.json", model)
        rebuilt, _, _ = load_model(path)
        assert isinstance(rebuilt, LogisticRegressionClassifier)
        np.testing.assert_allclose(
            rebuilt.predict_proba(features), model.predict_proba(features)
        )

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"model": {"kind": "svm"}, "scaler": null, "metadata": {}}')
        with pytest.raises(ValueError):
            load_model(path)


class TestModelMemoryBytes:
    def test_float32_sizing(self, rng):
        model, _ = _trained_mlp(rng)
        assert model_memory_bytes(model) == model.num_parameters * 4

    def test_quantised_sizing(self, rng):
        model, _ = _trained_mlp(rng)
        assert model_memory_bytes(model, bytes_per_weight=1) == model.num_parameters

    def test_invalid_bytes_per_weight(self, rng):
        model, _ = _trained_mlp(rng)
        with pytest.raises(ValueError):
            model_memory_bytes(model, bytes_per_weight=0)

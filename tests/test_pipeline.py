"""Tests for the HAR pipeline (features -> scaler -> classifier)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import NUM_ACTIVITIES, Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.core.pipeline import ClassificationResult, HarPipeline
from repro.sensors.imu import SensorWindow


class TestClassificationResult:
    def test_probability_vector_length_enforced(self):
        with pytest.raises(ValueError):
            ClassificationResult(
                activity=Activity.SIT, confidence=0.9, probabilities=np.ones(3)
            )


class TestHarPipelineTraining:
    def test_training_reaches_reasonable_accuracy(self, trained_pipeline, small_dataset):
        assert trained_pipeline.evaluate(small_dataset) > 0.8

    def test_num_parameters_positive(self, trained_pipeline):
        assert trained_pipeline.num_parameters > 0

    def test_memory_bytes_scales_with_parameters(self, trained_pipeline):
        assert trained_pipeline.memory_bytes() == trained_pipeline.num_parameters * 4
        assert trained_pipeline.memory_bytes(bytes_per_weight=1) == trained_pipeline.num_parameters

    def test_confusion_matrix_shape_and_totals(self, trained_pipeline, small_dataset):
        matrix = trained_pipeline.confusion(small_dataset)
        assert matrix.shape == (NUM_ACTIVITIES, NUM_ACTIVITIES)
        assert matrix.sum() == len(small_dataset)

    def test_predict_dataset_length(self, trained_pipeline, small_dataset):
        predictions = trained_pipeline.predict_dataset(small_dataset)
        assert predictions.shape == (len(small_dataset),)


class TestHarPipelineInference:
    def test_classify_samples_returns_result(self, trained_pipeline, walk_window):
        result = trained_pipeline.classify_samples(walk_window, HIGH_POWER_CONFIG.sampling_hz)
        assert isinstance(result, ClassificationResult)
        assert isinstance(result.activity, Activity)
        assert 0.0 <= result.confidence <= 1.0

    def test_probabilities_sum_to_one(self, trained_pipeline, walk_window):
        result = trained_pipeline.classify_samples(walk_window, 100.0)
        assert result.probabilities.shape == (NUM_ACTIVITIES,)
        assert result.probabilities.sum() == pytest.approx(1.0)

    def test_confidence_is_max_probability(self, trained_pipeline, sit_window):
        result = trained_pipeline.classify_samples(sit_window, 100.0)
        assert result.confidence == pytest.approx(result.probabilities.max())
        assert int(result.activity) == int(np.argmax(result.probabilities))

    def test_classifies_obvious_windows_correctly(
        self, trained_pipeline, sit_window, walk_window
    ):
        sit_result = trained_pipeline.classify_samples(sit_window, 100.0)
        walk_result = trained_pipeline.classify_samples(walk_window, 100.0)
        assert sit_result.activity.is_static
        assert walk_result.activity.is_dynamic

    def test_classify_window_wrapper(self, trained_pipeline, dataset_builder):
        samples = dataset_builder.acquire_raw_window(Activity.WALK, LOW_POWER_CONFIG)
        count = samples.shape[0]
        window = SensorWindow(
            samples=samples,
            times_s=np.arange(1, count + 1) / LOW_POWER_CONFIG.sampling_hz,
            config=LOW_POWER_CONFIG,
        )
        result = trained_pipeline.classify_window(window)
        assert isinstance(result, ClassificationResult)

    def test_handles_every_spot_state_batch_size(self, trained_pipeline, dataset_builder):
        """One pipeline must classify batches from every configuration."""
        for config in DEFAULT_SPOT_STATES:
            samples = dataset_builder.acquire_raw_window(Activity.STAND, config)
            result = trained_pipeline.classify_samples(samples, config.sampling_hz)
            assert result.probabilities.shape == (NUM_ACTIVITIES,)

    def test_classify_features_rejects_matrices(self, trained_pipeline, small_dataset):
        with pytest.raises(ValueError):
            trained_pipeline.classify_features(small_dataset.features[:2])

    def test_pipeline_without_scaler_works(self, small_dataset):
        from repro.ml.mlp import MLPClassifier

        classifier = MLPClassifier(
            input_dim=small_dataset.num_features,
            num_classes=NUM_ACTIVITIES,
            hidden_units=(8,),
            seed=0,
            max_epochs=10,
        )
        classifier.fit(small_dataset.features, small_dataset.labels)
        pipeline = HarPipeline(classifier=classifier, scaler=None)
        result = pipeline.classify_features(small_dataset.features[0])
        assert isinstance(result.activity, Activity)


class TestBatchedInference:
    def test_batch_results_are_bit_identical_to_single(
        self, trained_pipeline, small_dataset
    ):
        """Classification must be invariant to how requests are batched —
        the property the fleet engine's one-call-per-tick design rests on."""
        features = small_dataset.features[:7]
        batch = trained_pipeline.classify_batch(features)
        assert len(batch) == 7
        for row, batched in zip(features, batch):
            single = trained_pipeline.classify_features(row)
            assert single.activity == batched.activity
            assert single.confidence == batched.confidence
            assert np.array_equal(single.probabilities, batched.probabilities)

    def test_batch_probabilities_are_valid(self, trained_pipeline, small_dataset):
        for result in trained_pipeline.classify_batch(small_dataset.features[:5]):
            assert result.probabilities.shape == (NUM_ACTIVITIES,)
            assert result.probabilities.sum() == pytest.approx(1.0)
            assert result.confidence == pytest.approx(result.probabilities.max())

    def test_empty_batch(self, trained_pipeline, small_dataset):
        assert trained_pipeline.classify_batch(small_dataset.features[:0]) == []

    def test_batch_rejects_vectors(self, trained_pipeline, small_dataset):
        with pytest.raises(ValueError):
            trained_pipeline.classify_batch(small_dataset.features[0])

    def test_classify_windows_preserves_order_across_configs(
        self, trained_pipeline, dataset_builder
    ):
        """Mixed-configuration windows are grouped for stacked extraction
        but results come back in input order."""
        windows = []
        for config in (HIGH_POWER_CONFIG, LOW_POWER_CONFIG, HIGH_POWER_CONFIG):
            samples = dataset_builder.acquire_raw_window(Activity.WALK, config)
            count = samples.shape[0]
            windows.append(
                SensorWindow(
                    samples=samples,
                    times_s=np.arange(1, count + 1) / config.sampling_hz,
                    config=config,
                )
            )
        batched = trained_pipeline.classify_windows(windows)
        assert len(batched) == 3
        for window, result in zip(windows, batched):
            single = trained_pipeline.classify_window(window)
            assert single.activity == result.activity
            assert single.confidence == result.confidence

    def test_classify_windows_empty(self, trained_pipeline):
        assert trained_pipeline.classify_windows([]) == []

"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == "quick"
        assert args.seed == 2020

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.setting == "low"
        assert args.controller == "spot_confidence"

    def test_train_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.devices == 100
        assert args.duration == 600.0
        assert args.engine == "batched"
        assert args.out is None


class TestExperimentsCommand:
    def test_lists_every_experiment(self):
        out = io.StringIO()
        assert main(["experiments"], out=out) == 0
        text = out.getvalue()
        for name in EXPERIMENTS:
            assert name in text


class TestRunCommand:
    def test_run_table1_prints_configurations(self):
        out = io.StringIO()
        assert main(["run", "table1"], out=out) == 0
        text = out.getvalue()
        assert "F100_A128" in text
        assert "F6.25_A8" in text

    def test_run_memory_prints_savings(self):
        out = io.StringIO()
        assert main(["run", "memory"], out=out) == 0
        assert "memory saving vs IbA" in out.getvalue()


class TestTrainAndSimulate:
    def test_train_writes_model_file(self, tmp_path):
        out = io.StringIO()
        model_path = tmp_path / "model.json"
        code = main(
            ["train", "--output", str(model_path), "--windows", "6", "--seed", "1"],
            out=out,
        )
        assert code == 0
        assert model_path.exists()
        assert "trained shared classifier" in out.getvalue()

    def test_simulate_with_saved_model(self, tmp_path):
        model_path = tmp_path / "model.json"
        main(["train", "--output", str(model_path), "--windows", "6", "--seed", "1"],
             out=io.StringIO())
        out = io.StringIO()
        code = main(
            [
                "simulate",
                "--model", str(model_path),
                "--setting", "low",
                "--duration", "120",
                "--controller", "spot",
                "--threshold", "5",
                "--seed", "3",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "accuracy" in text
        assert "power saving" in text

    def test_fleet_runs_and_exports_json(self, tmp_path):
        out = io.StringIO()
        report_path = tmp_path / "fleet.json"
        code = main(
            [
                "fleet",
                "--devices", "4",
                "--duration", "15",
                "--windows", "6",
                "--seed", "5",
                "--out", str(report_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "engine             : batched" in text
        assert "device-seconds/s" in text
        assert "config dwell" in text
        report = json.loads(report_path.read_text())
        assert report["fleet"]["num_devices"] == 4
        assert len(report["devices"]) == 4

    def test_fleet_sequential_engine_matches_batched(self, tmp_path):
        outputs = {}
        for engine in ("batched", "sequential"):
            path = tmp_path / f"{engine}.json"
            code = main(
                [
                    "fleet",
                    "--devices", "3",
                    "--duration", "10",
                    "--windows", "6",
                    "--seed", "5",
                    "--engine", engine,
                    "--out", str(path),
                ],
                out=io.StringIO(),
            )
            assert code == 0
            outputs[engine] = json.loads(path.read_text())
        assert outputs["batched"]["devices"] == outputs["sequential"]["devices"]

    def test_fleet_sharded_engine_matches_batched(self, tmp_path):
        outputs = {}
        for engine, extra in (
            ("batched", []),
            ("sharded", ["--shards", "2"]),
        ):
            path = tmp_path / f"{engine}.json"
            out = io.StringIO()
            code = main(
                [
                    "fleet",
                    "--devices", "4",
                    "--duration", "10",
                    "--windows", "6",
                    "--seed", "5",
                    "--engine", engine,
                    "--out", str(path),
                ]
                + extra,
                out=out,
            )
            assert code == 0
            if engine == "sharded":
                assert "sharded (2 shards" in out.getvalue()
            outputs[engine] = json.loads(path.read_text())
        assert outputs["sharded"] == outputs["batched"]

    def test_fleet_exact_features_flag(self):
        out = io.StringIO()
        code = main(
            [
                "fleet",
                "--devices", "2",
                "--duration", "8",
                "--windows", "6",
                "--seed", "5",
                "--features", "exact",
            ],
            out=out,
        )
        assert code == 0
        assert "features           : exact" in out.getvalue()

    def test_simulate_trains_fresh_model_when_none_given(self):
        out = io.StringIO()
        code = main(
            [
                "simulate",
                "--setting", "high",
                "--duration", "90",
                "--controller", "static",
                "--windows", "6",
                "--seed", "4",
            ],
            out=out,
        )
        assert code == 0
        assert "average current    : 180.0 uA" in out.getvalue()


class TestModuleEntryPoint:
    def test_python_dash_m_repro_invokes_cli(self):
        """``python -m repro`` must reach the same main()."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "experiments"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "table1" in completed.stdout


class TestObservabilityFlags:
    def test_flags_parsed_with_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.metrics is None
        assert args.trace_events is None
        assert args.prometheus is None
        assert args.log_level is None

    def test_log_level_accepted_after_subcommand(self):
        args = build_parser().parse_args(["fleet", "--log-level", "debug"])
        assert args.log_level == "debug"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--log-level", "loud"])

    def test_fleet_exports_metrics_trace_and_prometheus(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "prom.txt"
        out = io.StringIO()
        code = main(
            [
                "fleet",
                "--devices", "3",
                "--duration", "10",
                "--windows", "6",
                "--seed", "5",
                "--metrics", str(metrics_path),
                "--trace-events", str(trace_path),
                "--prometheus", str(prom_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert f"metrics            -> {metrics_path}" in text
        assert f"trace events       -> {trace_path}" in text

        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["engine.ticks"] == 10.0
        assert metrics["counters"]["engine.windows_classified"] == 30.0
        assert metrics["meta"]["engine"] == "batched"
        assert "tick.sense" in metrics["histograms"]

        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans
        assert all("ts" in e and "dur" in e for e in spans)

        prom = prom_path.read_text()
        assert "# TYPE repro_engine_ticks counter" in prom

    def test_metered_fleet_telemetry_matches_unmetered(self, tmp_path):
        """--metrics must not perturb the simulated fleet."""
        outputs = {}
        for name, extra in (
            ("plain", []),
            ("metered", ["--metrics", str(tmp_path / "m.json")]),
        ):
            path = tmp_path / f"{name}.json"
            code = main(
                [
                    "fleet",
                    "--devices", "3",
                    "--duration", "10",
                    "--windows", "6",
                    "--seed", "5",
                    "--out", str(path),
                ]
                + extra,
                out=io.StringIO(),
            )
            assert code == 0
            outputs[name] = json.loads(path.read_text())
        assert outputs["metered"] == outputs["plain"]

    def test_sharded_fleet_prints_per_shard_lines_and_merges_metrics(
        self, tmp_path
    ):
        metrics_path = tmp_path / "metrics.json"
        out = io.StringIO()
        code = main(
            [
                "fleet",
                "--devices", "4",
                "--duration", "10",
                "--windows", "6",
                "--seed", "5",
                "--engine", "sharded",
                "--shards", "2",
                "--metrics", str(metrics_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "shard 0" in text and "shard 1" in text
        assert "shard skew" in text
        metrics = json.loads(metrics_path.read_text())
        # Two worker runs merged, plus the coordinator's heartbeats.
        assert metrics["counters"]["engine.runs"] == 2.0
        assert metrics["counters"]["engine.windows_classified"] == 40.0
        assert metrics["histograms"]["shard.elapsed_s"]["count"] == 2
        assert metrics["gauges"]["shard.count"] == 2.0


class TestFleetFaultTolerance:
    def test_resilience_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "fleet",
                "--engine", "sharded",
                "--max-retries", "5",
                "--shard-timeout", "30",
                "--checkpoint", "ckpts",
                "--round", "120",
                "--resume",
            ]
        )
        assert args.max_retries == 5
        assert args.shard_timeout == 30.0
        assert args.checkpoint == "ckpts"
        assert args.round_s == 120.0
        assert args.resume is True
        defaults = build_parser().parse_args(["fleet"])
        assert defaults.max_retries == 2
        assert defaults.shard_timeout is None
        assert defaults.checkpoint is None
        assert defaults.resume is False

    def test_injected_kill_recovers_and_reports(self, tmp_path, monkeypatch):
        """REPRO_FAULT_PLAN-driven worker kill: the CLI run retries,
        prints the recovery line and exports the failure counters."""
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kill:shard=1,round=0")
        metrics_path = tmp_path / "metrics.json"
        faulty = io.StringIO()
        code = main(
            [
                "fleet",
                "--devices", "4",
                "--duration", "10",
                "--windows", "6",
                "--seed", "5",
                "--engine", "sharded",
                "--shards", "2",
                "--out", str(tmp_path / "faulty.json"),
                "--metrics", str(metrics_path),
            ],
            out=faulty,
        )
        assert code == 0
        assert "recovery         : 1 retries" in faulty.getvalue()
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["shard.retries"] == 1.0
        assert metrics["counters"]["shard.failures"] == 1.0

        monkeypatch.delenv("REPRO_FAULT_PLAN")
        clean = io.StringIO()
        code = main(
            [
                "fleet",
                "--devices", "4",
                "--duration", "10",
                "--windows", "6",
                "--seed", "5",
                "--engine", "sharded",
                "--shards", "2",
                "--out", str(tmp_path / "clean.json"),
            ],
            out=clean,
        )
        assert code == 0
        assert "recovery" not in clean.getvalue()
        faulty_report = json.loads((tmp_path / "faulty.json").read_text())
        clean_report = json.loads((tmp_path / "clean.json").read_text())
        assert faulty_report == clean_report

    def test_checkpoint_and_resume_round_trip(self, tmp_path):
        """A fresh checkpointed campaign and its resume produce the
        same telemetry report."""
        directory = tmp_path / "campaign"
        reports = {}
        for name, extra in (
            ("fresh", []),
            ("resumed", ["--resume"]),
        ):
            path = tmp_path / f"{name}.json"
            out = io.StringIO()
            code = main(
                [
                    "fleet",
                    "--devices", "4",
                    "--duration", "10",
                    "--windows", "6",
                    "--seed", "5",
                    "--engine", "sharded",
                    "--shards", "2",
                    "--checkpoint", str(directory),
                    "--round", "4",
                    "--out", str(path),
                ]
                + extra,
                out=out,
            )
            assert code == 0
            assert "checkpoints      :" in out.getvalue()
            reports[name] = json.loads(path.read_text())
        assert reports["fresh"] == reports["resumed"]
        assert (directory / "manifest.json").is_file()


class TestFleetNoiseMode:
    def test_noise_flag_parsed(self):
        args = build_parser().parse_args(["fleet", "--noise", "batched"])
        assert args.noise == "batched"
        assert build_parser().parse_args(["fleet"]).noise == "per_device"

    def test_batched_noise_engines_agree(self, tmp_path):
        """The batched acquisition layer must give identical telemetry
        from the lock-step and sharded engines (same-mode bit-identity),
        through the CLI plumbing."""
        outputs = {}
        for engine, extra in (
            ("batched", []),
            ("sharded", ["--shards", "2"]),
        ):
            path = tmp_path / f"{engine}.json"
            out = io.StringIO()
            code = main(
                [
                    "fleet",
                    "--devices", "4",
                    "--duration", "10",
                    "--windows", "6",
                    "--seed", "5",
                    "--engine", engine,
                    "--noise", "batched",
                    "--out", str(path),
                ]
                + extra,
                out=out,
            )
            assert code == 0
            assert "noise              : batched" in out.getvalue()
            outputs[engine] = json.loads(path.read_text())
        assert outputs["batched"]["devices"] == outputs["sharded"]["devices"]


class TestResumeRequiresCheckpoint:
    @pytest.mark.parametrize("command", ["fleet", "campaign"])
    def test_resume_without_checkpoint_fails_fast(self, command, capsys):
        """--resume without --checkpoint DIR is an argparse error (exit
        code 2) before any training or simulation starts."""
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["fleet", "campaign"])
    def test_resume_with_checkpoint_parses(self, command):
        args = build_parser().parse_args(
            [command, "--resume", "--checkpoint", "ckpts"]
        )
        assert args.resume is True
        assert args.checkpoint == "ckpts"


class TestCampaignCommand:
    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.devices == 100
        assert args.duration == 600.0
        assert args.noise == "batched"
        assert args.trace == "summary"
        assert args.shards is None
        assert args.thresholds is None

    def test_campaign_runs_and_exports_report(self, tmp_path):
        out = io.StringIO()
        report_path = tmp_path / "campaign.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "campaign",
                "--devices", "4",
                "--duration", "15",
                "--windows", "6",
                "--seed", "5",
                "--thresholds", "10,30",
                "--confidences", "0.75,0.9",
                "--out", str(report_path),
                "--metrics", str(metrics_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "variants           : 4" in text
        assert "pareto fronts" in text
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.campaign/v1"
        assert report["meta"]["num_variants"] == 4
        assert report["meta"]["virtual_devices"] == 16
        assert "fleet" in report["pareto_fronts"]
        metrics = json.loads(metrics_path.read_text())
        assert metrics["gauges"]["campaign.variants"] == 4.0
        assert metrics["counters"]["campaign.shared_group_hits"] > 0.0

    def test_campaign_sharded_matches_in_process(self, tmp_path):
        reports = {}
        for label, extra in (
            ("inline", []),
            ("sharded", ["--shards", "2"]),
        ):
            path = tmp_path / f"{label}.json"
            code = main(
                [
                    "campaign",
                    "--devices", "4",
                    "--duration", "10",
                    "--windows", "6",
                    "--seed", "5",
                    "--thresholds", "10,30",
                    "--out", str(path),
                ]
                + extra,
                out=io.StringIO(),
            )
            assert code == 0
            reports[label] = json.loads(path.read_text())
        inline = dict(reports["inline"])
        sharded = dict(reports["sharded"])
        # Wall-clock and shard count legitimately differ; everything
        # else (variant telemetry, Pareto fronts) must be identical.
        for report in (inline, sharded):
            report["meta"] = {
                key: value
                for key, value in report["meta"].items()
                if key
                not in ("elapsed_s", "throughput_device_seconds_per_s",
                        "num_shards")
            }
        assert inline == sharded


class TestLiveTelemetry:
    def test_live_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "fleet",
                "--engine", "sharded",
                "--watch",
                "--events", "events.ndjson",
                "--heartbeat", "5",
                "--flight", "flightdir",
            ]
        )
        assert args.watch is True
        assert args.events == "events.ndjson"
        assert args.heartbeat_s == 5.0
        assert args.flight == "flightdir"
        defaults = build_parser().parse_args(["fleet"])
        assert defaults.watch is False
        assert defaults.events is None
        assert defaults.heartbeat_s is None
        assert defaults.flight is None

    @pytest.mark.parametrize(
        "flag", [["--watch"], ["--events", "e"], ["--heartbeat", "5"],
                 ["--flight", "f"]]
    )
    def test_fleet_live_flags_require_sharded_engine(self, flag, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--devices", "4"] + flag, out=io.StringIO())
        assert excinfo.value.code == 2
        assert "requires --engine sharded" in capsys.readouterr().err

    def test_monitored_fleet_matches_unmonitored(self, tmp_path):
        """--events/--heartbeat leave the exported telemetry report
        bit-identical and write a schema-valid NDJSON stream."""
        from repro.obs import validate_events_file

        events_path = tmp_path / "events.ndjson"
        reports = {}
        for label, extra in (
            ("plain", []),
            (
                "monitored",
                ["--events", str(events_path), "--heartbeat", "2"],
            ),
        ):
            path = tmp_path / f"{label}.json"
            out = io.StringIO()
            code = main(
                [
                    "fleet",
                    "--devices", "4",
                    "--duration", "10",
                    "--windows", "6",
                    "--seed", "5",
                    "--engine", "sharded",
                    "--shards", "2",
                    "--out", str(path),
                ]
                + extra,
                out=out,
            )
            assert code == 0
            reports[label] = json.loads(path.read_text())
        assert reports["plain"] == reports["monitored"]
        counts = validate_events_file(events_path)
        assert counts["run_start"] == 1
        assert counts["run_complete"] == 1
        assert counts["heartbeat"] >= 2

    def test_campaign_events_stream(self, tmp_path):
        from repro.obs import validate_events_file

        events_path = tmp_path / "campaign.ndjson"
        out = io.StringIO()
        code = main(
            [
                "campaign",
                "--devices", "4",
                "--duration", "10",
                "--windows", "6",
                "--seed", "5",
                "--thresholds", "10,30",
                "--events", str(events_path),
            ],
            out=out,
        )
        assert code == 0
        assert "event stream" in out.getvalue()
        counts = validate_events_file(events_path)
        assert counts["run_start"] == 1 and counts["run_complete"] == 1

"""Tests for fused multi-variant campaign execution.

The load-bearing property is *fused-vs-independent equivalence*: every
variant folded out of one fused campaign run must match an independent
fleet run of that variant over the same population bit-for-bit — for
every grid shape, shard count, dtype lane, and fresh-vs-resumed
execution.  The grid/pareto helpers get targeted unit tests alongside.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignVariant,
    CAMPAIGN_SCHEMA,
    ParetoPoint,
    fused_layout,
    pareto_front_3d,
    variant_grid,
    virtual_profiles,
)
from repro.exec.sharding import ShardedFleetSimulator
from repro.fleet import DevicePopulation, FleetSimulator
from repro.fleet.engine import traces_equal
from repro.fleet.telemetry import FleetTelemetry
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def population():
    return DevicePopulation.generate(8, duration_s=25.0, master_seed=77)


@pytest.fixture(scope="module")
def grid():
    return variant_grid(
        stability_thresholds=(10, 30), confidence_thresholds=(0.75, 0.9)
    )


def independent_telemetries(pipeline, variants, population, **settings):
    """Per-variant telemetry from plain, independent fleet runs."""
    telemetries = []
    for variant in variants:
        result = FleetSimulator(pipeline, **settings).run(
            variant.profiles_for(population.profiles), trace="summary"
        )
        telemetries.append(FleetTelemetry.from_result(result))
    return telemetries


# ----------------------------------------------------------------------
# Grid construction and the deduplicated fused layout
# ----------------------------------------------------------------------
class TestGrid:
    def test_cartesian_product_and_names(self):
        variants = variant_grid(
            stability_thresholds=(10, 20), confidence_thresholds=(0.8,)
        )
        assert len(variants) == 2
        assert variants[0].name == "t=10|c=0.8"
        assert variants[0].overrides == {
            "stability_threshold": 10, "confidence_threshold": 0.8,
        }

    def test_no_axes_is_single_baseline(self):
        variants = variant_grid()
        assert len(variants) == 1
        assert variants[0].name == "baseline"
        assert variants[0].overrides == {}

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown ControllerSpec"):
            CampaignVariant("bad", {"no_such_field": 1})

    def test_config_table_dropped_for_non_spot_kinds(self, population):
        variant = CampaignVariant(
            "tables", {"config_table": ("F100_A128", "F50_A16")}
        )
        for profile in population:
            spec = variant.apply(profile.controller)
            if spec.kind in ("spot", "spot_confidence"):
                assert spec.config_table == ("F100_A128", "F50_A16")
            else:
                assert spec == profile.controller

    def test_virtual_profiles_variant_major_ids(self, population, grid):
        fused = virtual_profiles(population.profiles, grid)
        num_devices = len(population)
        assert len(fused) == len(grid) * num_devices
        for v in range(len(grid)):
            for d in range(num_devices):
                virtual = fused[v * num_devices + d]
                assert virtual.device_id == v * num_devices + d
                assert virtual.seed == population[d].seed
                assert virtual.schedule == population[d].schedule

    def test_fused_layout_dedupes_behaviour_duplicates(self, population, grid):
        reps, assignment = fused_layout(population.profiles, grid)
        num_devices = len(population)
        # Every physical device is represented, ids strictly increase
        # (the sharded coordinator's merge sorts on them).
        assert len({r.device_id for r in reps}) == len(reps)
        assert [r.device_id for r in reps] == sorted(r.device_id for r in reps)
        assert len(assignment) == len(grid)
        assert all(len(row) == num_devices for row in assignment)
        # Non-SPOT devices ignore both grid axes: all four variants of
        # such a device must share one representative.
        kinds = {d: population[d].controller.kind for d in range(num_devices)}
        for d, kind in kinds.items():
            positions = {assignment[v][d] for v in range(len(grid))}
            if kind in ("static", "intensity"):
                assert len(positions) == 1
            elif kind == "spot":
                # Confidence axis collapses: 2 thresholds x 2 cutoffs -> 2.
                assert len(positions) == 2
            else:
                assert len(positions) == len(grid)
        assert len(reps) < len(grid) * num_devices

    def test_duplicate_variants_share_every_representative(self, population):
        twins = (
            CampaignVariant("a", {"stability_threshold": 15}),
            CampaignVariant("b", {"stability_threshold": 15}),
        )
        reps, assignment = fused_layout(population.profiles, twins)
        assert len(reps) == len(population)
        assert assignment[0] == assignment[1]


# ----------------------------------------------------------------------
# Fused-vs-independent equivalence
# ----------------------------------------------------------------------
class TestFusedEquivalence:
    @pytest.mark.parametrize("num_variants", [1, 2, 4])
    def test_fused_matches_independent_runs(
        self, trained_pipeline, population, num_variants
    ):
        variants = variant_grid(
            stability_thresholds=(10, 20, 30, 40)[:num_variants]
        )
        runner = CampaignRunner(trained_pipeline, variants)
        fused = runner.run(population, trace="summary")
        expected = independent_telemetries(
            trained_pipeline, variants, population,
            features="incremental", sensing="stacked",
            controllers="bank", noise="batched",
        )
        for got, want in zip(fused.telemetries, expected):
            assert got.to_dict() == want.to_dict()

    def test_full_traces_match_independent_runs(
        self, trained_pipeline, population, grid
    ):
        fused = CampaignRunner(trained_pipeline, grid).run(
            population, trace="full"
        )
        for variant, result in zip(grid, fused.results):
            reference = FleetSimulator(
                trained_pipeline, features="incremental", sensing="stacked",
                controllers="bank", noise="batched",
            ).run(variant.profiles_for(population.profiles), trace="full")
            for got, want in zip(result.traces, reference.traces):
                assert traces_equal(got, want)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_shard_count_and_dtype_invariance(
        self, trained_pipeline, population, grid, num_shards, dtype
    ):
        fused = CampaignRunner(
            trained_pipeline, grid, dtype=dtype, num_shards=num_shards
        ).run(population, trace="summary")
        expected = independent_telemetries(
            trained_pipeline, grid, population,
            features="incremental", sensing="stacked",
            controllers="bank", noise="batched", dtype=dtype,
        )
        for got, want in zip(fused.telemetries, expected):
            assert got.to_dict() == want.to_dict()

    def test_duplicate_variants_produce_identical_telemetry(
        self, trained_pipeline, population
    ):
        twins = (
            CampaignVariant("a", {"stability_threshold": 15}),
            CampaignVariant("b", {"stability_threshold": 15}),
        )
        fused = CampaignRunner(trained_pipeline, twins).run(
            population, trace="summary"
        )
        assert (
            fused.telemetries[0].to_dict() == fused.telemetries[1].to_dict()
        )
        assert fused.simulated_devices == len(population)

    def test_killed_campaign_resumes_bit_identically(
        self, trained_pipeline, population, grid, tmp_path
    ):
        """Checkpoint -> kill -> resume reproduces the fault-free fused
        campaign exactly."""
        baseline = CampaignRunner(trained_pipeline, grid).run(
            population, trace="summary"
        )
        directory = tmp_path / "campaign"
        faulty = CampaignRunner(
            trained_pipeline, grid, num_shards=2,
            checkpoint_dir=directory, round_s=6.0, max_retries=2,
            fault_plan="kill:shard=1,round=1",
        ).run(population, trace="summary")
        resumed = CampaignRunner(
            trained_pipeline, grid, num_shards=2,
            checkpoint_dir=directory, round_s=6.0, resume=True,
        ).run(population, trace="summary")
        for run in (faulty, resumed):
            for got, want in zip(run.telemetries, baseline.telemetries):
                assert got.to_dict() == want.to_dict()


# ----------------------------------------------------------------------
# Campaign result, metrics and Pareto fronts
# ----------------------------------------------------------------------
class TestCampaignResult:
    def test_report_schema_and_metrics(self, trained_pipeline, population, grid):
        registry = MetricsRegistry()
        runner = CampaignRunner(trained_pipeline, grid, metrics=registry)
        result = runner.run(population, trace="summary")
        report = result.to_dict()
        assert report["schema"] == CAMPAIGN_SCHEMA
        meta = report["meta"]
        assert meta["num_variants"] == len(grid)
        assert meta["num_devices"] == len(population)
        assert meta["virtual_devices"] == len(grid) * len(population)
        assert 0 < meta["simulated_devices"] <= meta["virtual_devices"]
        assert len(report["variants"]) == len(grid)
        assert "fleet" in report["pareto_fronts"]
        snapshot = registry.snapshot()
        assert snapshot.gauges["campaign.variants"] == len(grid)
        assert snapshot.gauges["campaign.devices"] == len(population)
        assert (
            snapshot.gauges["campaign.unique_devices"]
            == meta["simulated_devices"]
        )
        assert snapshot.counters.get("campaign.shared_group_hits", 0.0) > 0.0

    def test_naive_mode_matches_fused_mode(
        self, trained_pipeline, population, grid
    ):
        runner = CampaignRunner(trained_pipeline, grid)
        fused = runner.run(population, trace="summary")
        naive = runner.run_naive(population, trace="summary")
        assert naive.mode == "naive"
        assert naive.simulated_devices == naive.virtual_devices
        for got, want in zip(fused.telemetries, naive.telemetries):
            assert got.to_dict() == want.to_dict()
        assert fused.to_dict()["pareto_fronts"] == (
            naive.to_dict()["pareto_fronts"]
        )

    def test_variant_names_must_be_unique(self, trained_pipeline):
        twins = (CampaignVariant("same"), CampaignVariant("same"))
        with pytest.raises(ValueError, match="unique"):
            CampaignRunner(trained_pipeline, twins)


class TestPareto:
    def test_front_keeps_only_non_dominated(self):
        def point(name, acc, energy, battery):
            return ParetoPoint(
                variant=name, scenario="fleet", num_devices=1,
                accuracy=acc, energy_uc=energy, battery_life_days=battery,
            )

        best = point("best", 0.9, 100.0, 10.0)
        dominated = point("dominated", 0.8, 150.0, 5.0)
        tradeoff = point("tradeoff", 0.95, 200.0, 4.0)
        front = pareto_front_3d([dominated, best, tradeoff])
        assert [p.variant for p in front] == ["tradeoff", "best"]

    def test_identical_points_all_survive(self):
        twins = [
            ParetoPoint(
                variant=name, scenario="fleet", num_devices=1,
                accuracy=0.9, energy_uc=100.0, battery_life_days=10.0,
            )
            for name in ("a", "b")
        ]
        assert len(pareto_front_3d(twins)) == 2


# ----------------------------------------------------------------------
# Sharded-coordinator integration details
# ----------------------------------------------------------------------
class TestShardedIntegration:
    def test_fused_profiles_drive_sharded_runs_directly(
        self, trained_pipeline, population, grid
    ):
        """The deduped fused layout round-trips through the sharded
        coordinator: merged traces come back in representative order."""
        reps, _ = fused_layout(population.profiles, grid)
        run = ShardedFleetSimulator(trained_pipeline, num_shards=2).run(
            reps, trace="summary"
        )
        assert len(run.result.traces) == len(reps)
        assert [p.device_id for p in run.result.profiles] == [
            r.device_id for r in reps
        ]

"""Tests for the comparison baselines (static and intensity-based)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.intensity_based import (
    DEFAULT_LOW_INTENSITY_CONFIG,
    IntensityBasedApproach,
    IntensityThresholds,
    activity_intensity,
)
from repro.baselines.static import AlwaysHighPowerBaseline
from repro.core.activities import Activity
from repro.core.config import HIGH_POWER_CONFIG
from repro.datasets.scenarios import make_fig5_schedule, make_stable_schedule
from repro.energy.accelerometer import AccelerometerPowerModel


@pytest.fixture(scope="module")
def trained_iba():
    """A small intensity-based baseline shared by the tests in this module."""
    return IntensityBasedApproach.train(
        windows_per_activity=30, calibration_windows_per_activity=10, seed=0
    )


class TestAlwaysHighPowerBaseline:
    def test_constant_current(self, trained_pipeline):
        baseline = AlwaysHighPowerBaseline(pipeline=trained_pipeline)
        trace = baseline.simulate(make_stable_schedule(Activity.SIT, 20.0), seed=0)
        model = AccelerometerPowerModel.bmi160()
        np.testing.assert_allclose(trace.currents_ua, model.current_ua(HIGH_POWER_CONFIG))
        assert baseline.average_current_ua == pytest.approx(
            model.current_ua(HIGH_POWER_CONFIG)
        )

    def test_high_accuracy_on_easy_schedule(self, trained_pipeline):
        baseline = AlwaysHighPowerBaseline(pipeline=trained_pipeline)
        trace = baseline.simulate(make_stable_schedule(Activity.LIE, 30.0), seed=1)
        assert trace.accuracy > 0.9

    def test_exposes_config_and_pipeline(self, trained_pipeline):
        baseline = AlwaysHighPowerBaseline(pipeline=trained_pipeline)
        assert baseline.config == HIGH_POWER_CONFIG
        assert baseline.pipeline is trained_pipeline


class TestActivityIntensity:
    def test_walking_more_intense_than_sitting(self, dataset_builder):
        sit = dataset_builder.acquire_raw_window(Activity.SIT, HIGH_POWER_CONFIG)
        walk = dataset_builder.acquire_raw_window(Activity.WALK, HIGH_POWER_CONFIG)
        assert activity_intensity(walk) > activity_intensity(sit)

    def test_constant_signal_zero_intensity(self):
        assert activity_intensity(np.ones((50, 3))) == 0.0

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            activity_intensity(np.ones((1, 3)))

    def test_requires_three_axes(self):
        with pytest.raises(ValueError):
            activity_intensity(np.ones((10, 2)))


class TestIntensityThresholds:
    def test_lookup(self):
        thresholds = IntensityThresholds({"F100_A128": 1.5})
        assert thresholds.for_config(HIGH_POWER_CONFIG) == 1.5

    def test_missing_config_raises(self):
        thresholds = IntensityThresholds({})
        with pytest.raises(KeyError):
            thresholds.for_config(HIGH_POWER_CONFIG)


class TestIntensityBasedApproach:
    def test_training_produces_two_pipelines(self, trained_iba):
        assert trained_iba.pipeline_for(trained_iba.high_config) is not None
        assert trained_iba.pipeline_for(trained_iba.low_config) is not None
        assert trained_iba.low_config == DEFAULT_LOW_INTENSITY_CONFIG

    def test_memory_is_sum_of_both_classifiers(self, trained_iba):
        high = trained_iba.pipeline_for(trained_iba.high_config)
        low = trained_iba.pipeline_for(trained_iba.low_config)
        assert trained_iba.num_parameters == high.num_parameters + low.num_parameters
        assert trained_iba.memory_bytes() == high.memory_bytes() + low.memory_bytes()

    def test_thresholds_separate_static_from_dynamic(self, trained_iba, dataset_builder):
        threshold = trained_iba.thresholds.for_config(trained_iba.high_config)
        sit = dataset_builder.acquire_raw_window(Activity.SIT, trained_iba.high_config)
        walk = dataset_builder.acquire_raw_window(Activity.WALK, trained_iba.high_config)
        assert activity_intensity(sit) < threshold < activity_intensity(walk)

    def test_static_bout_drops_to_low_config(self, trained_iba):
        trace = trained_iba.simulate(make_stable_schedule(Activity.SIT, 30.0), seed=2)
        assert trained_iba.low_config.name in trace.config_names
        # After the first second the sensor should essentially stay low.
        assert trace.config_names[-1] == trained_iba.low_config.name

    def test_dynamic_bout_stays_at_high_config(self, trained_iba):
        trace = trained_iba.simulate(make_stable_schedule(Activity.WALK, 30.0), seed=3)
        residency = trace.state_residency()
        assert residency.get(trained_iba.high_config.name, 0.0) > 0.8

    def test_power_tracks_activity_mix_not_stability(self, trained_iba):
        """A stable walking hour costs IbA full power (unlike AdaSense)."""
        walking = trained_iba.simulate(make_stable_schedule(Activity.WALK, 40.0), seed=4)
        sitting = trained_iba.simulate(make_stable_schedule(Activity.SIT, 40.0), seed=5)
        assert walking.average_current_ua > sitting.average_current_ua

    def test_mixed_schedule_accuracy_reasonable(self, trained_iba):
        trace = trained_iba.simulate(make_fig5_schedule(30.0, 30.0), seed=6)
        # The quick-trained baseline classifiers are small; the full-scale
        # comparison happens in the Fig. 7 experiment.  Here we only require
        # clearly-better-than-chance behaviour over a trace with a transition.
        assert trace.accuracy > 0.5

    def test_simulation_reproducible(self, trained_iba):
        schedule = make_fig5_schedule(20.0, 20.0)
        a = trained_iba.simulate(schedule, seed=7)
        b = trained_iba.simulate(schedule, seed=7)
        np.testing.assert_allclose(a.currents_ua, b.currents_ua)

    def test_missing_pipeline_rejected(self, trained_iba):
        with pytest.raises(ValueError):
            IntensityBasedApproach(
                pipelines={},
                thresholds=trained_iba.thresholds,
            )

"""Tests for the push-style streaming interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG
from repro.core.controller import SpotController
from repro.sim.streaming import StreamingAdaSense


def _second_of(dataset_builder, activity, config):
    """One second of raw samples of ``activity`` acquired under ``config``."""
    window = dataset_builder.acquire_raw_window(activity, config, window_duration_s=1.0)
    return window


class TestStreamingBasics:
    def test_starts_at_high_power_config(self, trained_pipeline):
        stream = StreamingAdaSense(pipeline=trained_pipeline)
        assert stream.current_config == HIGH_POWER_CONFIG
        assert stream.steps == 0

    def test_invalid_min_duration_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            StreamingAdaSense(trained_pipeline, min_classify_duration_s=0.0)
        with pytest.raises(ValueError):
            StreamingAdaSense(trained_pipeline, min_classify_duration_s=5.0)

    def test_rejects_malformed_samples(self, trained_pipeline):
        stream = StreamingAdaSense(pipeline=trained_pipeline)
        with pytest.raises(ValueError):
            stream.push(np.zeros((10, 2)), HIGH_POWER_CONFIG)
        with pytest.raises(ValueError):
            stream.push(np.zeros((0, 3)), HIGH_POWER_CONFIG)

    def test_short_push_returns_no_result(self, trained_pipeline, dataset_builder):
        stream = StreamingAdaSense(pipeline=trained_pipeline, min_classify_duration_s=1.0)
        half_second = _second_of(dataset_builder, Activity.SIT, HIGH_POWER_CONFIG)[:50]
        step = stream.push(half_second, HIGH_POWER_CONFIG)
        assert step.result is None
        assert step.next_config == HIGH_POWER_CONFIG
        assert stream.steps == 0

    def test_push_second_produces_classification(self, trained_pipeline, dataset_builder):
        stream = StreamingAdaSense(pipeline=trained_pipeline)
        second = _second_of(dataset_builder, Activity.WALK, HIGH_POWER_CONFIG)
        step = stream.push(second, HIGH_POWER_CONFIG)
        assert step.result is not None
        assert 0.0 <= step.result.confidence <= 1.0
        assert stream.steps == 1
        assert stream.samples_seen == second.shape[0]


class TestStreamingControlLoop:
    def test_stable_stream_descends_to_lower_power(self, trained_pipeline, dataset_builder):
        stream = StreamingAdaSense(
            pipeline=trained_pipeline,
            controller=SpotController(stability_threshold=1),
            min_classify_duration_s=0.9,
        )
        config = stream.current_config
        visited = {config.name}
        for _ in range(20):
            samples = _second_of(dataset_builder, Activity.LIE, config)
            step = stream.push(samples, config)
            config = step.next_config
            visited.add(config.name)
        assert DEFAULT_SPOT_STATES[-1].name in visited

    def test_config_change_flushes_and_still_classifies(
        self, trained_pipeline, dataset_builder
    ):
        # min_classify_duration_s is slightly below one second because a
        # "one second" batch at 12.5 Hz rounds down to 12 samples (0.96 s).
        stream = StreamingAdaSense(pipeline=trained_pipeline, min_classify_duration_s=0.9)
        first = _second_of(dataset_builder, Activity.SIT, HIGH_POWER_CONFIG)
        stream.push(first, HIGH_POWER_CONFIG)
        low = DEFAULT_SPOT_STATES[-1]
        second = _second_of(dataset_builder, Activity.SIT, low)
        step = stream.push(second, low)
        # The buffer was flushed by the configuration change, so it now holds
        # exactly one second of low-rate data, which is still classifiable.
        assert step.buffered_duration_s <= 1.01
        assert step.result is not None

    def test_reset_restores_initial_state(self, trained_pipeline, dataset_builder):
        # Same robust walk-down setup as test_walks_down_to_lowest_state
        # (stable LIE, enough pushes, min duration below the 12.5 Hz
        # rounding): the point here is reset(), not borderline windows.
        controller = SpotController(stability_threshold=1)
        stream = StreamingAdaSense(
            pipeline=trained_pipeline,
            controller=controller,
            min_classify_duration_s=0.9,
        )
        config = stream.current_config
        for _ in range(20):
            samples = _second_of(dataset_builder, Activity.LIE, config)
            config = stream.push(samples, config).next_config
        assert controller.state_index > 0
        stream.reset()
        assert stream.current_config == HIGH_POWER_CONFIG
        assert stream.steps == 0
        assert stream.samples_seen == 0

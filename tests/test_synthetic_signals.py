"""Tests for the synthetic activity signal models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import ALL_ACTIVITIES, Activity
from repro.datasets.synthetic import (
    ActivityProfile,
    HarmonicSpec,
    ScheduledSignal,
    SyntheticSignalGenerator,
    default_activity_profiles,
)
from repro.utils.constants import GRAVITY_MS2


class TestHarmonicSpec:
    def test_valid_spec(self):
        spec = HarmonicSpec(axis=2, amplitude=1.5, frequency_scale=2.0)
        assert spec.axis == 2

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            HarmonicSpec(axis=3, amplitude=1.0, frequency_scale=1.0)

    def test_negative_amplitude(self):
        with pytest.raises(ValueError):
            HarmonicSpec(axis=0, amplitude=-1.0, frequency_scale=1.0)

    def test_zero_frequency_scale(self):
        with pytest.raises(ValueError):
            HarmonicSpec(axis=0, amplitude=1.0, frequency_scale=0.0)


class TestDefaultProfiles:
    def test_covers_all_activities(self):
        profiles = default_activity_profiles()
        assert set(profiles) == set(ALL_ACTIVITIES)

    def test_locomotion_faster_than_postural(self):
        profiles = default_activity_profiles()
        for dynamic in (Activity.WALK, Activity.UPSTAIRS, Activity.DOWNSTAIRS):
            for static in (Activity.SIT, Activity.STAND, Activity.LIE):
                assert (
                    profiles[dynamic].base_frequency_hz
                    > profiles[static].base_frequency_hz
                )

    def test_profile_validation_rejects_bad_gravity(self):
        with pytest.raises(ValueError):
            ActivityProfile(
                activity=Activity.SIT,
                gravity_direction=(0.0, 0.0, 0.0),
                base_frequency_hz=1.0,
                frequency_jitter=0.1,
                harmonics=(),
            )


class TestActivityRealization:
    def test_evaluate_shape(self):
        realization = default_activity_profiles()[Activity.WALK].realize(0)
        values = realization.evaluate(np.linspace(0, 2, 100))
        assert values.shape == (100, 3)

    def test_static_activity_close_to_gravity_magnitude(self):
        realization = default_activity_profiles()[Activity.STAND].realize(1)
        values = realization.evaluate(np.linspace(0, 5, 500))
        magnitudes = np.linalg.norm(values, axis=1)
        assert abs(np.mean(magnitudes) - GRAVITY_MS2) < 1.0

    def test_walk_has_periodic_energy(self):
        realization = default_activity_profiles()[Activity.WALK].realize(2)
        values = realization.evaluate(np.linspace(0, 4, 400))
        assert values[:, 2].std() > 0.5

    def test_windowed_average_matches_numerical_mean(self):
        """The closed-form sinc attenuation must equal a numeric average."""
        realization = default_activity_profiles()[Activity.WALK].realize(3)
        window = 0.08
        times = np.array([1.0, 1.5, 2.0])
        closed_form = realization.evaluate_windowed(times, window)
        numeric = np.empty_like(closed_form)
        for row, end in enumerate(times):
            grid = np.linspace(end - window, end, 4001)
            numeric[row] = realization.evaluate(grid).mean(axis=0)
        np.testing.assert_allclose(closed_form, numeric, atol=1e-3)

    def test_zero_window_equals_instantaneous(self):
        realization = default_activity_profiles()[Activity.SIT].realize(4)
        times = np.linspace(0, 3, 50)
        np.testing.assert_allclose(
            realization.evaluate_windowed(times, 0.0), realization.evaluate(times)
        )

    def test_windowed_average_attenuates_oscillation(self):
        """Averaging over a long window must shrink the dynamic range."""
        realization = default_activity_profiles()[Activity.DOWNSTAIRS].realize(5)
        times = np.linspace(1, 5, 400)
        raw = realization.evaluate(times)[:, 2]
        smoothed = realization.evaluate_windowed(times, 0.3)[:, 2]
        assert smoothed.std() < raw.std()

    def test_negative_window_rejected(self):
        realization = default_activity_profiles()[Activity.SIT].realize(6)
        with pytest.raises(ValueError):
            realization.evaluate_windowed(np.array([1.0]), -0.1)

    def test_requires_1d_times(self):
        realization = default_activity_profiles()[Activity.SIT].realize(7)
        with pytest.raises(ValueError):
            realization.evaluate(np.zeros((3, 2)))

    def test_same_seed_same_signal(self):
        profile = default_activity_profiles()[Activity.WALK]
        times = np.linspace(0, 2, 64)
        np.testing.assert_allclose(
            profile.realize(42).evaluate(times), profile.realize(42).evaluate(times)
        )

    def test_different_seeds_differ(self):
        profile = default_activity_profiles()[Activity.WALK]
        times = np.linspace(0, 2, 64)
        assert not np.allclose(
            profile.realize(1).evaluate(times), profile.realize(2).evaluate(times)
        )


class TestSyntheticSignalGenerator:
    def test_realize_accepts_strings(self, signal_generator):
        realization = signal_generator.realize("walk", rng=0)
        assert realization.activity == Activity.WALK

    def test_missing_profile_rejected(self):
        profiles = default_activity_profiles()
        del profiles[Activity.LIE]
        with pytest.raises(ValueError, match="missing"):
            SyntheticSignalGenerator(profiles=profiles)

    def test_profiles_property_is_copy(self, signal_generator):
        profiles = signal_generator.profiles
        profiles.clear()
        assert signal_generator.profiles


class TestScheduledSignal:
    def test_duration_is_sum_of_bouts(self):
        signal = ScheduledSignal([(Activity.SIT, 10.0), (Activity.WALK, 5.0)], seed=0)
        assert signal.duration_s == pytest.approx(15.0)

    def test_activity_at_respects_boundaries(self):
        signal = ScheduledSignal([(Activity.SIT, 10.0), (Activity.WALK, 5.0)], seed=0)
        assert signal.activity_at(0.0) == Activity.SIT
        assert signal.activity_at(9.99) == Activity.SIT
        assert signal.activity_at(10.0) == Activity.WALK
        assert signal.activity_at(14.9) == Activity.WALK

    def test_activity_at_end_clamps_to_last(self):
        signal = ScheduledSignal([(Activity.SIT, 10.0), (Activity.WALK, 5.0)], seed=0)
        assert signal.activity_at(15.0) == Activity.WALK
        assert signal.activity_at(100.0) == Activity.WALK

    def test_negative_time_rejected(self):
        signal = ScheduledSignal([(Activity.SIT, 10.0)], seed=0)
        with pytest.raises(ValueError):
            signal.activity_at(-1.0)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            ScheduledSignal([], seed=0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            ScheduledSignal([(Activity.SIT, 0.0)], seed=0)

    def test_evaluate_covers_both_segments(self):
        signal = ScheduledSignal([(Activity.SIT, 5.0), (Activity.WALK, 5.0)], seed=1)
        times = np.linspace(0, 10, 200)
        values = signal.evaluate(times)
        assert values.shape == (200, 3)
        # Walking half has visibly more vertical-axis variance than sitting.
        sit_std = values[times < 5.0][:, 2].std()
        walk_std = values[times >= 5.0][:, 2].std()
        assert walk_std > sit_std

    def test_evaluate_windowed_shape(self):
        signal = ScheduledSignal([(Activity.SIT, 5.0), (Activity.WALK, 5.0)], seed=1)
        values = signal.evaluate_windowed(np.linspace(0, 10, 50), 0.05)
        assert values.shape == (50, 3)

    def test_segments_chronological(self):
        signal = ScheduledSignal(
            [(Activity.SIT, 5.0), (Activity.WALK, 5.0), (Activity.LIE, 3.0)], seed=2
        )
        segments = signal.segments
        assert [segment.activity for segment in segments] == [
            Activity.SIT,
            Activity.WALK,
            Activity.LIE,
        ]
        assert segments[0].end_s == segments[1].start_s

    def test_segment_at_lookup(self):
        signal = ScheduledSignal([(Activity.SIT, 5.0), (Activity.WALK, 5.0)], seed=3)
        assert signal.segment_at(7.0).activity == Activity.WALK

    def test_same_seed_reproducible(self):
        schedule = [(Activity.SIT, 5.0), (Activity.WALK, 5.0)]
        times = np.linspace(0, 10, 100)
        a = ScheduledSignal(schedule, seed=9).evaluate(times)
        b = ScheduledSignal(schedule, seed=9).evaluate(times)
        np.testing.assert_allclose(a, b)

    def test_repeated_activity_gets_fresh_realization(self):
        signal = ScheduledSignal(
            [(Activity.WALK, 5.0), (Activity.SIT, 5.0), (Activity.WALK, 5.0)], seed=4
        )
        first, last = signal.segments[0].realization, signal.segments[2].realization
        assert first.fundamental_hz != pytest.approx(last.fundamental_hz)

"""Tests for heterogeneous device-population generation."""

from __future__ import annotations

import pytest

from repro.baselines.intensity_based import (
    DEFAULT_LOW_INTENSITY_CONFIG,
    IntensityController,
    calibrate_intensity_thresholds,
)
from repro.core.config import HIGH_POWER_CONFIG
from repro.core.controller import (
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.datasets.scenarios import schedule_duration
from repro.fleet.population import (
    CONTROLLER_KINDS,
    SCENARIO_NAMES,
    ControllerSpec,
    DevicePopulation,
    PopulationSpec,
    make_scenario_schedule,
)


class TestControllerSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ControllerSpec(kind="pid")

    def test_intensity_requires_thresholds(self):
        with pytest.raises(ValueError):
            ControllerSpec(kind="intensity")

    def test_builds_every_kind(self):
        thresholds = calibrate_intensity_thresholds(
            (HIGH_POWER_CONFIG, DEFAULT_LOW_INTENSITY_CONFIG),
            windows_per_activity=2,
            seed=0,
        )
        built = {
            "spot": ControllerSpec(kind="spot").build(),
            "spot_confidence": ControllerSpec(kind="spot_confidence").build(),
            "static": ControllerSpec(kind="static").build(),
            "intensity": ControllerSpec(
                kind="intensity", intensity_thresholds=thresholds
            ).build(),
        }
        assert isinstance(built["spot"], SpotController)
        assert not isinstance(built["spot"], SpotWithConfidenceController)
        assert isinstance(built["spot_confidence"], SpotWithConfidenceController)
        assert isinstance(built["static"], StaticController)
        assert isinstance(built["intensity"], IntensityController)

    def test_labels_mention_knobs(self):
        assert "10" in ControllerSpec(kind="spot", stability_threshold=10).label
        assert "0.9" in ControllerSpec(
            kind="spot_confidence", confidence_threshold=0.9
        ).label
        assert "F100_A128" in ControllerSpec(kind="static").label


class TestScenarioSchedules:
    def test_every_named_scenario_generates(self):
        for scenario in SCENARIO_NAMES:
            schedule = make_scenario_schedule(scenario, 120.0, seed=1)
            assert schedule_duration(schedule) == pytest.approx(120.0)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            make_scenario_schedule("astronaut", 120.0)


class TestPopulationSpec:
    def test_rejects_unknown_scenario_weight(self):
        with pytest.raises(ValueError):
            PopulationSpec(scenario_weights={"astronaut": 1.0})

    def test_rejects_unknown_controller_weight(self):
        with pytest.raises(ValueError):
            PopulationSpec(controller_weights={"pid": 1.0})

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            PopulationSpec(controller_weights={"spot": 0.0})


class TestGeneration:
    def test_population_is_deterministic(self):
        first = DevicePopulation.generate(8, duration_s=60.0, master_seed=42)
        second = DevicePopulation.generate(8, duration_s=60.0, master_seed=42)
        assert first.profiles == second.profiles

    def test_master_seed_changes_population(self):
        first = DevicePopulation.generate(8, duration_s=60.0, master_seed=1)
        second = DevicePopulation.generate(8, duration_s=60.0, master_seed=2)
        assert first.profiles != second.profiles

    def test_growing_population_preserves_prefix(self):
        """Device i depends only on (master_seed, i), not the fleet size."""
        small = DevicePopulation.generate(4, duration_s=60.0, master_seed=3)
        large = DevicePopulation.generate(9, duration_s=60.0, master_seed=3)
        assert large.profiles[:4] == small.profiles

    def test_schedules_match_requested_duration(self):
        population = DevicePopulation.generate(6, duration_s=90.0, master_seed=0)
        for profile in population:
            assert profile.duration_s == pytest.approx(90.0)

    def test_population_is_heterogeneous(self):
        population = DevicePopulation.generate(40, duration_s=30.0, master_seed=5)
        assert len(population.scenario_counts()) >= 4
        assert len(population.controller_counts()) >= 3
        noises = {profile.noise.base_noise_std_ms2 for profile in population}
        batteries = {profile.battery.capacity_mah for profile in population}
        assert len(noises) > 20
        assert len(batteries) > 20

    def test_only_known_kinds_and_scenarios(self):
        population = DevicePopulation.generate(20, duration_s=30.0, master_seed=6)
        for profile in population:
            assert profile.scenario in SCENARIO_NAMES
            assert profile.controller.kind in CONTROLLER_KINDS

    def test_controller_mix_can_be_restricted(self):
        spec = PopulationSpec(controller_weights={"static": 1.0})
        population = DevicePopulation.generate(
            5, duration_s=30.0, master_seed=0, spec=spec
        )
        assert population.controller_counts() == {"static": 5}

    def test_collection_protocol(self):
        population = DevicePopulation.generate(3, duration_s=30.0, master_seed=0)
        assert len(population) == 3
        assert population[1].device_id == 1
        assert [profile.device_id for profile in population] == [0, 1, 2]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            DevicePopulation.generate(0, duration_s=30.0)
        with pytest.raises(ValueError):
            DevicePopulation.generate(3, duration_s=-1.0)

"""Tests for the AdaSense facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.core.adasense import AdaSense
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.core.controller import (
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.datasets.scenarios import make_fig5_schedule, make_stable_schedule
from repro.sim.trace import SimulationTrace


class TestConstructionAndDefaults:
    def test_default_controller_is_spot_with_confidence(self, trained_pipeline):
        system = AdaSense(pipeline=trained_pipeline)
        assert isinstance(system.controller, SpotWithConfidenceController)

    def test_properties_exposed(self, trained_system):
        assert trained_system.pipeline is not None
        assert trained_system.power_model is not None
        assert trained_system.noise_model is not None

    def test_with_controller_shares_pipeline(self, trained_system):
        derived = trained_system.with_controller(StaticController())
        assert derived.pipeline is trained_system.pipeline
        assert isinstance(derived.controller, StaticController)
        assert derived is not trained_system

    def test_controller_factories(self):
        spot = AdaSense.spot_controller(stability_threshold=5)
        assert isinstance(spot, SpotController)
        assert spot.stability_threshold == 5
        confident = AdaSense.spot_with_confidence_controller(confidence_threshold=0.9)
        assert confident.confidence_threshold == pytest.approx(0.9)
        static = AdaSense.static_controller()
        assert static.current_config == HIGH_POWER_CONFIG
        pinned = AdaSense.static_controller(LOW_POWER_CONFIG)
        assert pinned.current_config == LOW_POWER_CONFIG


class TestTraining:
    def test_train_produces_working_system(self):
        system = AdaSense.train(windows_per_activity_per_config=6, seed=0)
        trace = system.simulate(make_fig5_schedule(20.0, 20.0), seed=1)
        assert isinstance(trace, SimulationTrace)
        assert len(trace) == 40

    def test_from_dataset(self, small_dataset):
        system = AdaSense.from_dataset(small_dataset, hidden_units=(16,), seed=0)
        assert system.pipeline.evaluate(small_dataset) > 0.7


class TestClassification:
    def test_classify_delegates_to_pipeline(self, trained_system, walk_window):
        result = trained_system.classify(walk_window, HIGH_POWER_CONFIG.sampling_hz)
        assert result.activity in list(Activity)

    def test_simulator_uses_configured_controller(self, trained_system):
        adaptive = trained_system.with_controller(SpotController(stability_threshold=2))
        simulator = adaptive.simulator()
        assert simulator.controller.stability_threshold == 2


class TestClosedLoopBehaviour:
    def test_stable_bout_reaches_low_power(self, trained_system):
        adaptive = trained_system.with_controller(SpotController(stability_threshold=3))
        trace = adaptive.simulate(make_stable_schedule(Activity.SIT, 40.0), seed=2)
        # The descent must reach the lowest-power state at some point and the
        # bout as a whole must be far cheaper than the always-on baseline.
        assert LOW_POWER_CONFIG.name in trace.config_names
        assert trace.average_current_ua < 0.75 * 180.0

    def test_spot_uses_less_power_than_static(self, trained_system):
        schedule = make_fig5_schedule(40.0, 40.0)
        static = trained_system.with_controller(StaticController()).simulate(schedule, seed=3)
        adaptive = trained_system.with_controller(
            SpotController(stability_threshold=5)
        ).simulate(schedule, seed=3)
        assert adaptive.average_current_ua < static.average_current_ua

    def test_all_visited_configs_are_spot_states(self, trained_system):
        adaptive = trained_system.with_controller(SpotController(stability_threshold=2))
        trace = adaptive.simulate(make_fig5_schedule(20.0, 20.0), seed=4)
        state_names = {config.name for config in DEFAULT_SPOT_STATES}
        assert set(trace.config_names) <= state_names

    def test_simulation_reproducible(self, trained_system):
        schedule = make_fig5_schedule(15.0, 15.0)
        adaptive = trained_system.with_controller(SpotController(stability_threshold=2))
        a = adaptive.simulate(schedule, seed=5)
        b = adaptive.simulate(schedule, seed=5)
        np.testing.assert_allclose(a.currents_ua, b.currents_ua)

"""Tests for the simulated accelerometer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.core.config import HIGH_POWER_CONFIG, LOW_POWER_CONFIG, SensorConfig
from repro.datasets.synthetic import default_activity_profiles
from repro.sensors.imu import NoiseModel, SensorWindow, SimulatedAccelerometer
from repro.utils.constants import GRAVITY_MS2


class TestNoiseModel:
    def test_noise_shrinks_with_averaging_window(self):
        noise = NoiseModel(base_noise_std_ms2=1.6)
        assert noise.output_noise_std(64) < noise.output_noise_std(8)

    def test_noise_scaling_is_sqrt(self):
        noise = NoiseModel(base_noise_std_ms2=1.6)
        assert noise.output_noise_std(16) == pytest.approx(1.6 / 4.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel().output_noise_std(0)

    def test_full_scale_in_ms2(self):
        noise = NoiseModel(full_scale_g=2.0)
        assert noise.full_scale_ms2 == pytest.approx(2.0 * GRAVITY_MS2)

    def test_lsb_matches_resolution(self):
        noise = NoiseModel(full_scale_g=2.0, resolution_bits=16)
        assert noise.lsb_ms2 == pytest.approx(4.0 * GRAVITY_MS2 / 2**16)

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(resolution_bits=0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(base_noise_std_ms2=-1.0)


class TestSensorWindow:
    def test_requires_three_axes(self):
        with pytest.raises(ValueError):
            SensorWindow(
                samples=np.zeros((10, 2)),
                times_s=np.arange(10.0),
                config=HIGH_POWER_CONFIG,
            )

    def test_requires_matching_times(self):
        with pytest.raises(ValueError):
            SensorWindow(
                samples=np.zeros((10, 3)),
                times_s=np.arange(9.0),
                config=HIGH_POWER_CONFIG,
            )

    def test_duration_property(self):
        config = SensorConfig(10.0, 8)
        times = 0.1 * np.arange(1, 21)
        window = SensorWindow(samples=np.zeros((20, 3)), times_s=times, config=config)
        assert window.duration_s == pytest.approx(2.0)
        assert window.num_samples == 20
        assert window.sampling_hz == 10.0


class TestSimulatedAccelerometer:
    def _sensor(self, activity=Activity.STAND, seed=0, **kwargs):
        realization = default_activity_profiles()[activity].realize(seed)
        return SimulatedAccelerometer(signal=realization, seed=seed, **kwargs)

    def test_sample_count_matches_config(self):
        sensor = self._sensor()
        for config in (HIGH_POWER_CONFIG, LOW_POWER_CONFIG, SensorConfig(6.25, 8)):
            window = sensor.read_window(2.0, 2.0, config)
            assert window.num_samples == config.samples_per_window

    def test_read_second_is_one_second(self):
        sensor = self._sensor()
        window = sensor.read_second(5.0, HIGH_POWER_CONFIG)
        assert window.num_samples == 100

    def test_window_before_time_zero_rejected(self):
        sensor = self._sensor()
        with pytest.raises(ValueError):
            sensor.read_window(1.0, 2.0, HIGH_POWER_CONFIG)

    def test_samples_clipped_to_full_scale(self):
        sensor = self._sensor(noise=NoiseModel(full_scale_g=0.5))
        window = sensor.read_window(2.0, 2.0, HIGH_POWER_CONFIG)
        assert np.max(np.abs(window.samples)) <= 0.5 * GRAVITY_MS2 + 1e-9

    def test_quantisation_grid(self):
        noise = NoiseModel()
        sensor = self._sensor(noise=noise)
        window = sensor.read_window(2.0, 2.0, HIGH_POWER_CONFIG)
        steps = window.samples / noise.lsb_ms2
        np.testing.assert_allclose(steps, np.round(steps), atol=1e-6)

    def test_averaging_window_duration_capped_by_sample_period(self):
        sensor = self._sensor()
        # 128 sub-samples at 1600 Hz span 80 ms, longer than the 10 ms period
        # of a 100 Hz output rate, so the window is capped at 10 ms.
        assert sensor.averaging_window_duration(HIGH_POWER_CONFIG) == pytest.approx(0.01)
        # At 12.5 Hz the 8-sub-sample window (5 ms) fits comfortably.
        assert sensor.averaging_window_duration(LOW_POWER_CONFIG) == pytest.approx(
            8 / 1600.0
        )

    def test_small_averaging_window_noisier_than_large(self):
        """Empirical noise must grow when the averaging window shrinks."""
        realization = default_activity_profiles()[Activity.STAND].realize(3)
        sensor = SimulatedAccelerometer(signal=realization, seed=3)
        clean = realization.evaluate_windowed  # noqa: F841  (documenting intent)
        noisy_large = sensor.read_window(4.0, 4.0, SensorConfig(25.0, 128))
        noisy_small = sensor.read_window(4.0, 4.0, SensorConfig(25.0, 8))
        residual_large = noisy_large.samples - realization.evaluate_windowed(
            noisy_large.times_s, sensor.averaging_window_duration(SensorConfig(25.0, 128))
        )
        residual_small = noisy_small.samples - realization.evaluate_windowed(
            noisy_small.times_s, sensor.averaging_window_duration(SensorConfig(25.0, 8))
        )
        assert residual_small.std() > residual_large.std()

    def test_explicit_rng_reproducible(self):
        realization = default_activity_profiles()[Activity.WALK].realize(5)
        sensor = SimulatedAccelerometer(signal=realization, seed=5)
        a = sensor.read_window(2.0, 2.0, HIGH_POWER_CONFIG, rng=123).samples
        b = sensor.read_window(2.0, 2.0, HIGH_POWER_CONFIG, rng=123).samples
        np.testing.assert_allclose(a, b)

    def test_internal_stream_advances(self):
        sensor = self._sensor()
        a = sensor.read_window(2.0, 2.0, HIGH_POWER_CONFIG).samples
        b = sensor.read_window(2.0, 2.0, HIGH_POWER_CONFIG).samples
        assert not np.allclose(a, b)

    def test_bias_is_constant_per_sensor(self):
        sensor = self._sensor()
        assert np.allclose(sensor.bias_ms2, sensor.bias_ms2)

    def test_invalid_internal_rate_rejected(self):
        realization = default_activity_profiles()[Activity.SIT].realize(0)
        with pytest.raises(ValueError):
            SimulatedAccelerometer(signal=realization, internal_rate_hz=0.0)

    def test_non_positive_duration_rejected(self):
        sensor = self._sensor()
        with pytest.raises(ValueError):
            sensor.read_window(2.0, 0.0, HIGH_POWER_CONFIG)

"""Tests for the shared execution core (:mod:`repro.exec.engine`).

The engine's central contract is that every execution strategy —
stacked vs per-device sensing, incremental vs exact features, batched
vs one-device-at-a-time stepping — produces bit-identical traces.  The
facades (:class:`ClosedLoopSimulator`, :class:`FleetSimulator`) are
checked through the same lens, plus the stacked sensing and signal
helpers the engine is built from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HIGH_POWER_CONFIG, LOW_POWER_CONFIG, TABLE1_BY_NAME
from repro.core.controller import SpotController
from repro.datasets.scenarios import make_fig5_schedule
from repro.datasets.synthetic import (
    ScheduledSignal,
    SyntheticSignalGenerator,
    evaluate_realizations_windowed,
)
from repro.exec.engine import StepEngine
from repro.fleet.engine import FleetSimulator, traces_equal
from repro.fleet.population import DevicePopulation, PopulationSpec
from repro.sensors.imu import SimulatedAccelerometer, read_windows_stacked
from repro.sim.runtime import ClosedLoopSimulator


@pytest.fixture(scope="module")
def population():
    # A switching-heavy mix so configuration changes (buffer flushes,
    # incremental-cache invalidation) are exercised.
    spec = PopulationSpec(
        controller_weights={
            "spot": 1.0,
            "spot_confidence": 1.0,
            "static": 0.5,
            "intensity": 0.5,
        }
    )
    return DevicePopulation.generate(8, duration_s=25.0, master_seed=42, spec=spec)


class TestEngineValidation:
    def test_rejects_unknown_feature_mode(self, trained_pipeline):
        with pytest.raises(ValueError):
            StepEngine(trained_pipeline, features="magic")

    def test_rejects_unknown_sensing_mode(self, trained_pipeline):
        with pytest.raises(ValueError):
            StepEngine(trained_pipeline, sensing="psychic")

    def test_rejects_window_shorter_than_step(self, trained_pipeline):
        with pytest.raises(ValueError):
            StepEngine(trained_pipeline, step_s=2.0, window_duration_s=1.0)

    def test_rejects_empty_runtime_set(self, trained_pipeline):
        with pytest.raises(ValueError):
            StepEngine(trained_pipeline).run([], 5)


class TestExecutionStrategyEquivalence:
    """All execution strategies must agree bit for bit."""

    def test_stacked_sensing_matches_per_device(self, trained_pipeline, population):
        stacked = FleetSimulator(trained_pipeline, sensing="stacked").run(population)
        scalar = FleetSimulator(trained_pipeline, sensing="per_device").run(population)
        for left, right in zip(stacked.traces, scalar.traces):
            assert traces_equal(left, right)

    def test_incremental_batched_matches_sequential(
        self, trained_pipeline, population
    ):
        simulator = FleetSimulator(trained_pipeline)  # incremental default
        batched = simulator.run(population)
        sequential = simulator.run_sequential(population)
        for left, right in zip(batched.traces, sequential.traces):
            assert traces_equal(left, right)

    def test_exact_batched_matches_sequential(self, trained_pipeline, population):
        simulator = FleetSimulator(
            trained_pipeline, features="exact", sensing="per_device"
        )
        batched = simulator.run(population)
        sequential = simulator.run_sequential(population)
        for left, right in zip(batched.traces, sequential.traces):
            assert traces_equal(left, right)

    def test_fleet_matches_closed_loop_facade(self, trained_pipeline, population):
        """The two facades share one engine, so a fleet device and an
        independently constructed single-device simulator agree."""
        fleet = FleetSimulator(trained_pipeline).run(population)
        for profile, fleet_trace in zip(fleet.profiles, fleet.traces):
            simulator = ClosedLoopSimulator(
                pipeline=trained_pipeline,
                controller=profile.make_controller(),
                power_model=profile.power_model,
                noise=profile.noise,
            )
            reference = simulator.run(list(profile.schedule), seed=profile.seed)
            assert traces_equal(fleet_trace, reference)

    @pytest.mark.parametrize("window_duration_s", [2.5, 3.0])
    def test_nonstandard_windows_stay_equivalent(
        self, trained_pipeline, population, window_duration_s
    ):
        """Window/step ratios beyond the paper's 2:1 — including a
        non-integer ratio that defeats chunk alignment — keep batched
        and sequential execution identical."""
        simulator = FleetSimulator(
            trained_pipeline, window_duration_s=window_duration_s
        )
        batched = simulator.run(population, duration_s=15.0)
        sequential = simulator.run_sequential(population, duration_s=15.0)
        for left, right in zip(batched.traces, sequential.traces):
            assert traces_equal(left, right)

    def test_incremental_tracks_exact_closely(self, trained_pipeline, population):
        """Incremental features differ from exact only in floating-point
        summation order, so traces agree on essentially every decision."""
        incremental = FleetSimulator(trained_pipeline).run(population)
        exact = FleetSimulator(trained_pipeline, features="exact").run(population)
        records = [
            (a, b)
            for left, right in zip(incremental.traces, exact.traces)
            for a, b in zip(left.records, right.records)
        ]
        agreement = np.mean(
            [a.predicted_activity == b.predicted_activity for a, b in records]
        )
        assert agreement > 0.95
        confidences = np.array(
            [(a.confidence, b.confidence) for a, b in records]
        )
        np.testing.assert_allclose(
            confidences[:, 0], confidences[:, 1], rtol=1e-6, atol=1e-8
        )


class TestStackedSensing:
    @pytest.mark.parametrize(
        "config_name", ["F100_A128", "F50_A16", "F12.5_A8", "F6.25_A32"]
    )
    def test_read_windows_stacked_matches_read_window(self, config_name):
        """Stacked acquisition is bit-identical to per-device reads for
        every Table I sampling-rate family, including ticks that span a
        bout boundary (the per-device fallback path)."""
        config = TABLE1_BY_NAME[config_name]
        schedule = make_fig5_schedule(3.0, 3.0)
        sensors, rngs_a, rngs_b = [], [], []
        for seed in range(6):
            signal = ScheduledSignal(schedule, seed=seed)
            sensors.append(SimulatedAccelerometer(signal=signal, seed=seed))
            rngs_a.append(np.random.default_rng(seed + 100))
            rngs_b.append(np.random.default_rng(seed + 100))
        for step in range(1, 7):  # step 4 spans the 3 s bout boundary at 100 Hz
            end = float(step)
            stacked = read_windows_stacked(sensors, end, 1.0, config, rngs_a)
            for sensor, rng, window in zip(sensors, rngs_b, stacked):
                reference = sensor.read_window(end, 1.0, config, rng=rng)
                np.testing.assert_array_equal(window.samples, reference.samples)
                np.testing.assert_array_equal(window.times_s, reference.times_s)
                assert window.config == reference.config

    def test_mismatched_rngs_rejected(self):
        signal = ScheduledSignal(make_fig5_schedule(2.0, 2.0), seed=0)
        sensor = SimulatedAccelerometer(signal=signal, seed=0)
        with pytest.raises(ValueError):
            read_windows_stacked([sensor], 1.0, 1.0, HIGH_POWER_CONFIG, [])

    def test_evaluate_realizations_windowed_matches_loop(self):
        generator = SyntheticSignalGenerator(seed=5)
        realizations = [
            generator.realize(activity)
            for activity in ("walk", "sit", "downstairs", "lie", "upstairs", "stand")
        ]
        times = np.linspace(0.2, 2.0, 37)
        for window_s in (0.0, 0.02, 0.08):
            stacked = evaluate_realizations_windowed(realizations, times, window_s)
            for index, realization in enumerate(realizations):
                np.testing.assert_array_equal(
                    stacked[index], realization.evaluate_windowed(times, window_s)
                )


class TestScheduledSignalHelpers:
    def test_activities_at_matches_scalar_lookup(self):
        signal = ScheduledSignal(make_fig5_schedule(5.0, 7.0), seed=3)
        times = np.array([0.5, 4.99, 5.0, 6.5, 11.9, 12.0, 50.0])
        vectorised = signal.activities_at(times)
        assert vectorised == [signal.activity_at(float(t)) for t in times]

    def test_realization_spanning_single_bout(self):
        signal = ScheduledSignal(make_fig5_schedule(5.0, 5.0), seed=4)
        inside = np.linspace(1.0, 2.0, 10)
        realization = signal.realization_spanning(inside)
        assert realization is signal.segments[0].realization

    def test_realization_spanning_across_boundary_is_none(self):
        signal = ScheduledSignal(make_fig5_schedule(5.0, 5.0), seed=4)
        straddling = np.linspace(4.5, 5.5, 10)
        assert signal.realization_spanning(straddling) is None


class TestClosedLoopFacade:
    def test_exact_mode_supported(self, trained_pipeline):
        simulator = ClosedLoopSimulator(
            pipeline=trained_pipeline,
            controller=SpotController(stability_threshold=3),
            features="exact",
        )
        trace = simulator.run(make_fig5_schedule(10.0, 10.0), seed=1)
        assert len(trace) == 20
        assert {LOW_POWER_CONFIG.name, HIGH_POWER_CONFIG.name} & set(
            trace.config_names
        )

    def test_engine_exposed(self, trained_pipeline):
        simulator = ClosedLoopSimulator(
            pipeline=trained_pipeline, controller=SpotController()
        )
        assert simulator.engine.features == "incremental"
        assert simulator.engine.sensing == "stacked"

"""Tests for the classification sample buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HIGH_POWER_CONFIG, SensorConfig
from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import SensorWindow

#: A low-power configuration whose sampling rate divides one second evenly,
#: so the expected sample counts in these tests are exact.
LOW_RATE_CONFIG = SensorConfig(25.0, 16)


def _window(config: SensorConfig, start_s: float, duration_s: float = 1.0) -> SensorWindow:
    """Build a deterministic window of the right sample count."""
    count = config.samples_in(duration_s)
    period = 1.0 / config.sampling_hz
    times = start_s + period * np.arange(1, count + 1)
    samples = np.full((count, 3), start_s)
    return SensorWindow(samples=samples, times_s=times, config=config)


class TestSampleBufferBasics:
    def test_starts_empty(self):
        buffer = SampleBuffer()
        assert buffer.is_empty
        assert not buffer.is_full
        assert buffer.num_samples == 0
        assert buffer.config is None
        assert buffer.buffered_duration_s == 0.0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SampleBuffer(window_duration_s=0.0)

    def test_window_on_empty_buffer_raises(self):
        with pytest.raises(RuntimeError):
            SampleBuffer().window()

    def test_push_one_second_not_full(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        assert not buffer.is_full
        assert buffer.buffered_duration_s == pytest.approx(1.0)

    def test_push_two_seconds_full(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        assert buffer.is_full
        assert buffer.num_samples == 200

    def test_clear_resets_state(self):
        buffer = SampleBuffer()
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.clear()
        assert buffer.is_empty
        assert buffer.config is None


class TestSampleBufferSliding:
    def test_old_samples_trimmed(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        for second in range(5):
            buffer.push(_window(HIGH_POWER_CONFIG, float(second)))
        assert buffer.num_samples == 200
        window = buffer.window()
        # Only the two newest seconds remain (values 3.0 and 4.0).
        assert set(np.unique(window.samples)) == {3.0, 4.0}

    def test_window_concatenates_chronologically(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        window = buffer.window()
        assert window.times_s[0] < window.times_s[-1]
        assert np.all(np.diff(window.times_s) > 0)

    def test_one_second_overlap_between_batches(self):
        """Consecutive classification windows share one second of data."""
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        first = buffer.window()
        buffer.push(_window(HIGH_POWER_CONFIG, 2.0))
        second = buffer.window()
        overlap = np.intersect1d(first.times_s, second.times_s)
        assert overlap.size == 100  # one second at 100 Hz


class TestSampleBufferConfigChange:
    def test_config_change_flushes(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        buffer.push(_window(LOW_RATE_CONFIG, 2.0))
        assert buffer.config == LOW_RATE_CONFIG
        assert buffer.buffered_duration_s == pytest.approx(1.0)
        assert buffer.window().config == LOW_RATE_CONFIG

    def test_same_config_does_not_flush(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(LOW_RATE_CONFIG, 0.0))
        buffer.push(_window(LOW_RATE_CONFIG, 1.0))
        assert buffer.buffered_duration_s == pytest.approx(2.0)

    def test_refills_after_flush(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(LOW_RATE_CONFIG, 1.0))
        buffer.push(_window(LOW_RATE_CONFIG, 2.0))
        assert buffer.is_full
        assert buffer.num_samples == 2 * LOW_RATE_CONFIG.samples_in(1.0)


def _reference_window(chunks):
    """Last-window reference: plain concatenation plus tail trimming."""
    samples = np.concatenate([c for c, _ in chunks], axis=0)
    times = np.concatenate([t for _, t in chunks], axis=0)
    return samples, times


class TestRingStorage:
    """Edge cases of the preallocated ring behind :class:`SampleBuffer`:
    wraparound, reads spanning the wrap seam, ``push``/``push_raw``
    interleaving and counter-based ``num_samples``."""

    def test_wraparound_many_times(self):
        """Pushing far past capacity keeps exactly the last window."""
        buffer = SampleBuffer(window_duration_s=2.0)
        rng = np.random.default_rng(0)
        kept = []
        for second in range(9):
            count = LOW_RATE_CONFIG.samples_in(1.0)
            period = 1.0 / LOW_RATE_CONFIG.sampling_hz
            times = second + period * np.arange(1, count + 1)
            samples = rng.normal(size=(count, 3))
            kept.append((samples, times))
            buffer.push_raw(samples, times, LOW_RATE_CONFIG)
        assert buffer.num_samples == LOW_RATE_CONFIG.samples_in(2.0)
        expected_samples, expected_times = _reference_window(kept[-2:])
        window = buffer.window()
        np.testing.assert_array_equal(window.samples, expected_samples)
        np.testing.assert_array_equal(window.times_s, expected_times)

    def test_read_spanning_wrap_seam(self):
        """A window whose oldest samples sit at the end of the ring and
        newest at the start must still come out in stream order."""
        config = SensorConfig(10.0, 16)
        buffer = SampleBuffer(window_duration_s=2.0)  # capacity 20
        rng = np.random.default_rng(1)
        # 13 + 13 samples: second push wraps (26 > 20); then a 7-sample
        # push moves the seam mid-window.
        history = []
        for start, count in ((0.0, 13), (1.3, 13), (2.6, 7)):
            times = start + 0.1 * np.arange(1, count + 1)
            samples = rng.normal(size=(count, 3))
            history.append((samples, times))
            buffer.push_raw(samples, times, config)
        assert buffer.num_samples == 20
        all_samples, all_times = _reference_window(history)
        window = buffer.window()
        np.testing.assert_array_equal(window.samples, all_samples[-20:])
        np.testing.assert_array_equal(window.times_s, all_times[-20:])

    def test_push_and_push_raw_interleave(self):
        """Both spellings feed the same ring; mixing them is exactly a
        sequence of raw pushes."""
        mixed = SampleBuffer(window_duration_s=2.0)
        raw_only = SampleBuffer(window_duration_s=2.0)
        rng = np.random.default_rng(2)
        for second in range(5):
            count = LOW_RATE_CONFIG.samples_in(1.0)
            times = second + (1.0 / 25.0) * np.arange(1, count + 1)
            samples = rng.normal(size=(count, 3))
            if second % 2:
                mixed.push(
                    SensorWindow(
                        samples=samples, times_s=times, config=LOW_RATE_CONFIG
                    )
                )
            else:
                mixed.push_raw(samples, times, LOW_RATE_CONFIG)
            raw_only.push_raw(samples, times, LOW_RATE_CONFIG)
        assert mixed.num_samples == raw_only.num_samples
        assert mixed.chunk_sizes() == raw_only.chunk_sizes()
        np.testing.assert_array_equal(
            mixed.window().samples, raw_only.window().samples
        )

    def test_num_samples_constant_after_wrap(self):
        """The count is a maintained counter: after the ring wraps it
        stays pinned at capacity for any push pattern."""
        buffer = SampleBuffer(window_duration_s=2.0)
        rng = np.random.default_rng(3)
        capacity = LOW_RATE_CONFIG.samples_in(2.0)
        cursor = 0.0
        pushed = 0
        for count in (25, 25, 7, 25, 1, 13, 25, 3):
            times = cursor + (1.0 / 25.0) * np.arange(1, count + 1)
            buffer.push_raw(
                rng.normal(size=(count, 3)), times, LOW_RATE_CONFIG
            )
            cursor = float(times[-1])
            pushed += count
            assert buffer.num_samples == min(pushed, capacity)
        assert buffer.num_samples == capacity
        assert buffer.capacity == capacity

    def test_single_push_larger_than_capacity(self):
        buffer = SampleBuffer(window_duration_s=1.0)  # capacity 25
        rng = np.random.default_rng(4)
        samples = rng.normal(size=(60, 3))
        times = 0.04 * np.arange(1, 61)
        buffer.push_raw(samples, times, LOW_RATE_CONFIG)
        assert buffer.num_samples == 25
        assert buffer.chunk_sizes() == (25,)
        np.testing.assert_array_equal(buffer.window().samples, samples[-25:])

    def test_property_sweep_matches_concatenation(self):
        """Random push sizes across many seeds: the ring always equals
        a plain concatenate-then-trim reference."""
        for seed in range(12):
            rng = np.random.default_rng(seed)
            config = SensorConfig(float(rng.integers(10, 60)), 16)
            window_s = float(rng.choice([1.0, 2.0, 3.0]))
            buffer = SampleBuffer(window_duration_s=window_s)
            capacity = max(1, int(round(window_s * config.sampling_hz)))
            history = []
            cursor = 0.0
            for _ in range(int(rng.integers(3, 12))):
                count = int(rng.integers(1, 2 * capacity))
                period = 1.0 / config.sampling_hz
                times = cursor + period * np.arange(1, count + 1)
                samples = rng.normal(size=(count, 3))
                history.append((samples, times))
                buffer.push_raw(samples, times, config)
                cursor = float(times[-1])
                all_samples, all_times = _reference_window(history)
                assert buffer.num_samples == min(
                    all_samples.shape[0], capacity
                )
                window = buffer.window()
                np.testing.assert_array_equal(
                    window.samples, all_samples[-capacity:]
                )
                np.testing.assert_array_equal(
                    window.times_s, all_times[-capacity:]
                )


class TestRingBufferBank:
    """The fleet-wide ring bank mirrors per-device buffers exactly."""

    def _push_both(self, bank, buffers, rows, samples, times, config):
        from repro.sensors.buffer import RingBufferBank  # noqa: F401

        changed = bank.push_group(np.asarray(rows), samples, times, config)
        for row_position, device in enumerate(rows):
            buffers[device].push_raw(samples[row_position], times, config)
        return changed

    def test_matches_per_device_buffers(self):
        from repro.sensors.buffer import RingBufferBank

        rng = np.random.default_rng(7)
        num_devices = 6
        bank = RingBufferBank(num_devices, window_duration_s=2.0)
        buffers = [SampleBuffer(window_duration_s=2.0) for _ in range(num_devices)]
        configs = [LOW_RATE_CONFIG, HIGH_POWER_CONFIG, SensorConfig(12.5, 16)]
        cursor = 0.0
        for tick in range(10):
            # Random partition of the fleet into configuration groups.
            assignment = rng.integers(0, len(configs), size=num_devices)
            for config_index, config in enumerate(configs):
                rows = np.flatnonzero(assignment == config_index)
                if not rows.size:
                    continue
                count = config.samples_in(1.0)
                period = 1.0 / config.sampling_hz
                times = cursor + period * np.arange(1, count + 1)
                samples = rng.normal(size=(rows.size, count, 3))
                self._push_both(bank, buffers, rows, samples, times, config)
            cursor += 1.0
            for device in range(num_devices):
                assert bank.counts[device] == buffers[device].num_samples
                if buffers[device].num_samples:
                    bank_samples, bank_times = bank.window(device)
                    reference = buffers[device].window()
                    np.testing.assert_array_equal(
                        bank_samples, reference.samples
                    )
                    np.testing.assert_array_equal(
                        bank_times, reference.times_s
                    )

    def test_flush_reported_on_config_change(self):
        from repro.sensors.buffer import RingBufferBank

        bank = RingBufferBank(3, window_duration_s=2.0)
        count = LOW_RATE_CONFIG.samples_in(1.0)
        times = (1.0 / 25.0) * np.arange(1, count + 1)
        samples = np.zeros((3, count, 3))
        first = bank.push_group(np.arange(3), samples, times, LOW_RATE_CONFIG)
        np.testing.assert_array_equal(first, np.arange(3))
        high_count = HIGH_POWER_CONFIG.samples_in(1.0)
        high_times = 1.0 + (1.0 / 100.0) * np.arange(1, high_count + 1)
        changed = bank.push_group(
            np.array([1]), np.zeros((1, high_count, 3)), high_times,
            HIGH_POWER_CONFIG,
        )
        np.testing.assert_array_equal(changed, np.array([1]))
        assert bank.counts[1] == high_count
        assert bank.counts[0] == count

    def test_window_on_empty_ring_raises(self):
        from repro.sensors.buffer import RingBufferBank

        bank = RingBufferBank(2, window_duration_s=2.0)
        with pytest.raises(RuntimeError):
            bank.window(0)

"""Tests for the classification sample buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HIGH_POWER_CONFIG, SensorConfig
from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import SensorWindow

#: A low-power configuration whose sampling rate divides one second evenly,
#: so the expected sample counts in these tests are exact.
LOW_RATE_CONFIG = SensorConfig(25.0, 16)


def _window(config: SensorConfig, start_s: float, duration_s: float = 1.0) -> SensorWindow:
    """Build a deterministic window of the right sample count."""
    count = config.samples_in(duration_s)
    period = 1.0 / config.sampling_hz
    times = start_s + period * np.arange(1, count + 1)
    samples = np.full((count, 3), start_s)
    return SensorWindow(samples=samples, times_s=times, config=config)


class TestSampleBufferBasics:
    def test_starts_empty(self):
        buffer = SampleBuffer()
        assert buffer.is_empty
        assert not buffer.is_full
        assert buffer.num_samples == 0
        assert buffer.config is None
        assert buffer.buffered_duration_s == 0.0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SampleBuffer(window_duration_s=0.0)

    def test_window_on_empty_buffer_raises(self):
        with pytest.raises(RuntimeError):
            SampleBuffer().window()

    def test_push_one_second_not_full(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        assert not buffer.is_full
        assert buffer.buffered_duration_s == pytest.approx(1.0)

    def test_push_two_seconds_full(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        assert buffer.is_full
        assert buffer.num_samples == 200

    def test_clear_resets_state(self):
        buffer = SampleBuffer()
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.clear()
        assert buffer.is_empty
        assert buffer.config is None


class TestSampleBufferSliding:
    def test_old_samples_trimmed(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        for second in range(5):
            buffer.push(_window(HIGH_POWER_CONFIG, float(second)))
        assert buffer.num_samples == 200
        window = buffer.window()
        # Only the two newest seconds remain (values 3.0 and 4.0).
        assert set(np.unique(window.samples)) == {3.0, 4.0}

    def test_window_concatenates_chronologically(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        window = buffer.window()
        assert window.times_s[0] < window.times_s[-1]
        assert np.all(np.diff(window.times_s) > 0)

    def test_one_second_overlap_between_batches(self):
        """Consecutive classification windows share one second of data."""
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        first = buffer.window()
        buffer.push(_window(HIGH_POWER_CONFIG, 2.0))
        second = buffer.window()
        overlap = np.intersect1d(first.times_s, second.times_s)
        assert overlap.size == 100  # one second at 100 Hz


class TestSampleBufferConfigChange:
    def test_config_change_flushes(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(HIGH_POWER_CONFIG, 1.0))
        buffer.push(_window(LOW_RATE_CONFIG, 2.0))
        assert buffer.config == LOW_RATE_CONFIG
        assert buffer.buffered_duration_s == pytest.approx(1.0)
        assert buffer.window().config == LOW_RATE_CONFIG

    def test_same_config_does_not_flush(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(LOW_RATE_CONFIG, 0.0))
        buffer.push(_window(LOW_RATE_CONFIG, 1.0))
        assert buffer.buffered_duration_s == pytest.approx(2.0)

    def test_refills_after_flush(self):
        buffer = SampleBuffer(window_duration_s=2.0)
        buffer.push(_window(HIGH_POWER_CONFIG, 0.0))
        buffer.push(_window(LOW_RATE_CONFIG, 1.0))
        buffer.push(_window(LOW_RATE_CONFIG, 2.0))
        assert buffer.is_full
        assert buffer.num_samples == 2 * LOW_RATE_CONFIG.samples_in(1.0)

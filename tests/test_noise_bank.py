"""Tests for the pooled counter-based noise streams (:mod:`repro.sensors.noise_bank`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sensors.noise_bank import POOL_VALUES, NoiseBank
from repro.utils.rng import as_rng, derive_seed_sequences


def make_bank(num_devices: int, seed: int = 0, **kwargs) -> NoiseBank:
    return NoiseBank(
        derive_seed_sequences(seed, num_devices), **kwargs
    )


def reference_stream(seed: int, num_devices: int, device: int) -> np.random.Generator:
    """The Philox generator a bank built from ``seed`` gives ``device``."""
    child = derive_seed_sequences(seed, num_devices)[device]
    return np.random.Generator(np.random.Philox(child))


class TestConstruction:
    def test_from_rngs_counts_devices(self):
        bank = NoiseBank.from_rngs([as_rng(i) for i in range(7)])
        assert bank.num_devices == 7
        assert bank.pool_values == POOL_VALUES

    def test_from_rngs_does_not_consume_master_draws(self):
        reference = as_rng(3).integers(0, 1_000_000, size=8)
        master = as_rng(3)
        NoiseBank.from_rngs([master])
        np.testing.assert_array_equal(
            master.integers(0, 1_000_000, size=8), reference
        )

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError):
            make_bank(2, pool_values=0)


class TestStreams:
    def test_values_follow_device_philox_stream(self):
        """A device's draws are its own Philox stream's standard
        normals, consumed in order and scaled by the given std."""
        bank = make_bank(3, seed=42)
        rows = np.array([1])
        stds = np.array([0.5])
        first = bank.normal(rows, 10, stds)
        second = bank.normal(rows, 4, stds)
        stream = reference_stream(42, 3, 1).standard_normal(
            POOL_VALUES, dtype=np.float32
        )
        np.testing.assert_array_equal(first, 0.5 * stream[:30].reshape(1, 10, 3))
        np.testing.assert_array_equal(
            second, 0.5 * stream[30:42].reshape(1, 4, 3)
        )

    def test_streams_are_private_per_device(self):
        bank = make_bank(2, seed=1)
        rows = np.arange(2)
        block = bank.normal(rows, 16, np.ones(2))
        assert not np.array_equal(block[0], block[1])

    def test_independent_of_group_composition(self):
        """Device 2's draws must not depend on which devices share its
        acquisition call — the shard-invariance property."""
        together = make_bank(4, seed=9).normal(
            np.arange(4), 8, np.ones(4)
        )[2]
        alone = make_bank(4, seed=9).normal(
            np.array([2]), 8, np.ones(1)
        )[0]
        np.testing.assert_array_equal(together, alone)

    def test_mixed_consumption_rates(self):
        """Devices consuming at different per-tick rates (different
        configurations) keep bit-identical streams to consuming alone."""
        bank = make_bank(2, seed=5)
        lone = make_bank(2, seed=5)
        for count in (10, 25, 10, 50):
            mixed = bank.normal(np.array([0, 1]), count, np.ones(2))
            solo = lone.normal(np.array([1]), count, np.ones(1))
            np.testing.assert_array_equal(mixed[1], solo[0])

    def test_cohort_split_groups_match_lone_draws(self):
        """Regression: a group whose devices sit at *different* pool
        cursors (multi-cohort gather) must produce exactly the values
        each device would see alone — including the float32 rounding of
        the std scaling, which the multi-cohort buffer once skipped."""
        bank = make_bank(6, seed=31)
        # Desynchronise the cursors: three cohorts.
        bank.normal(np.array([0, 1]), 7, np.ones(2))
        bank.normal(np.array([2, 3]), 19, np.ones(2))
        stds = np.full(6, 0.371)
        grouped = bank.normal(np.arange(6), 11, stds)
        for device in range(6):
            lone = make_bank(6, seed=31)
            if device in (0, 1):
                lone.normal(np.array([device]), 7, np.ones(1))
            elif device in (2, 3):
                lone.normal(np.array([device]), 19, np.ones(1))
            solo = lone.normal(np.array([device]), 11, stds[[device]])
            np.testing.assert_array_equal(grouped[device], solo[0])


class TestPoolDiscipline:
    def test_refill_discards_partial_tail(self):
        """When the pool tail is shorter than one acquisition the tail
        is discarded — deterministically, as part of the stream
        contract."""
        bank = make_bank(1, seed=7, pool_values=32)
        rows = np.array([0])
        stds = np.ones(1)
        first = bank.normal(rows, 9, stds)   # 27 values, 5 left
        second = bank.normal(rows, 4, stds)  # needs 12 -> refill, tail dropped
        stream = reference_stream(7, 1, 0)
        pool_one = stream.standard_normal(32, dtype=np.float32)
        pool_two = stream.standard_normal(32, dtype=np.float32)
        np.testing.assert_array_equal(first[0], pool_one[:27].reshape(9, 3))
        np.testing.assert_array_equal(second[0], pool_two[:12].reshape(4, 3))

    def test_oversized_acquisition_bypasses_pool(self):
        bank = make_bank(1, seed=11, pool_values=16)
        block = bank.normal(np.array([0]), 40, np.ones(1))
        assert block.shape == (1, 40, 3)
        stream = reference_stream(11, 1, 0)
        np.testing.assert_array_equal(
            block[0],
            stream.standard_normal(120, dtype=np.float32).reshape(40, 3),
        )

    def test_stds_scale_and_validate(self):
        bank = make_bank(2, seed=13)
        rows = np.arange(2)
        scaled = bank.normal(rows, 6, np.array([2.0, 0.25]))
        plain = make_bank(2, seed=13).normal(rows, 6, np.ones(2))
        np.testing.assert_array_equal(scaled[0], 2.0 * plain[0])
        np.testing.assert_array_equal(scaled[1], 0.25 * plain[1])
        with pytest.raises(ValueError):
            bank.normal(rows, 6, np.ones(3))

    def test_out_parameter(self):
        bank = make_bank(1, seed=17)
        out = np.empty((1, 5, 3))
        result = bank.normal(np.array([0]), 5, np.ones(1), out=out)
        assert result is out
        np.testing.assert_array_equal(
            out, make_bank(1, seed=17).normal(np.array([0]), 5, np.ones(1))
        )


class TestStatistics:
    def test_moments_match_standard_normal(self):
        """Distributional sanity: the pooled streams are ordinary
        standard normals (mean 0, unit variance, symmetric)."""
        bank = make_bank(64, seed=23)
        block = bank.normal(np.arange(64), 256, np.ones(64))
        flat = block.ravel()
        assert abs(flat.mean()) < 0.02
        assert abs(flat.std() - 1.0) < 0.02
        assert abs(np.mean(flat**3)) < 0.05
        assert abs(np.mean(flat**4) - 3.0) < 0.1

"""Seed-determinism regression tests.

Reproducibility from a single integer seed is a core promise of the
library (and what makes the batched/sequential fleet equivalence
checkable at all).  These tests pin it down for both the single-device
closed loop and the fleet engine.
"""

from __future__ import annotations

from repro.core.controller import SpotWithConfidenceController
from repro.datasets.scenarios import make_setting_schedule, ActivitySetting
from repro.fleet.engine import FleetSimulator, traces_equal
from repro.fleet.population import DevicePopulation
from repro.sim.runtime import ClosedLoopSimulator


class TestClosedLoopDeterminism:
    def test_same_seed_gives_identical_traces(self, trained_pipeline):
        schedule = make_setting_schedule(
            ActivitySetting.MEDIUM, total_duration_s=60.0, seed=7
        )
        traces = []
        for _ in range(2):
            simulator = ClosedLoopSimulator(
                pipeline=trained_pipeline,
                controller=SpotWithConfidenceController(stability_threshold=5),
            )
            traces.append(simulator.run(schedule, seed=123))
        assert traces_equal(traces[0], traces[1])

    def test_different_seeds_diverge(self, trained_pipeline):
        schedule = make_setting_schedule(
            ActivitySetting.MEDIUM, total_duration_s=60.0, seed=7
        )
        simulator = ClosedLoopSimulator(
            pipeline=trained_pipeline,
            controller=SpotWithConfidenceController(stability_threshold=5),
        )
        first = simulator.run(schedule, seed=1)
        second = simulator.run(schedule, seed=2)
        assert not traces_equal(first, second)


class TestFleetDeterminism:
    def test_same_master_seed_gives_identical_fleet_runs(self, trained_pipeline):
        runs = []
        for _ in range(2):
            population = DevicePopulation.generate(
                5, duration_s=20.0, master_seed=321
            )
            runs.append(FleetSimulator(trained_pipeline).run(population))
        for left, right in zip(runs[0].traces, runs[1].traces):
            assert traces_equal(left, right)

    def test_different_master_seeds_diverge(self, trained_pipeline):
        simulator = FleetSimulator(trained_pipeline)
        first = simulator.run(
            DevicePopulation.generate(5, duration_s=20.0, master_seed=1)
        )
        second = simulator.run(
            DevicePopulation.generate(5, duration_s=20.0, master_seed=2)
        )
        assert any(
            not traces_equal(left, right)
            for left, right in zip(first.traces, second.traces)
        )

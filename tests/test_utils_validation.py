"""Tests for the argument-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(2.5, "x") == 2.5

    def test_accepts_small_positive(self):
        assert check_positive(1e-12, "x") == 1e-12

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_non_negative(3.0, "x") == 3.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_non_negative(float("nan"), "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(5, "n") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "n") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "n")


class TestCheckProbability:
    def test_accepts_zero_and_one(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_accepts_interior_value(self):
        assert check_probability(0.85, "p") == 0.85

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_rejects_below_zero(self):
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")


class TestCheckFraction:
    def test_accepts_interior_value(self):
        assert check_fraction(0.3, "f") == 0.3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f")

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.0, "f")


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("a", "mode", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode"):
            check_in_choices("c", "mode", ("a", "b"))


class TestCheckShape:
    def test_accepts_exact_shape(self):
        array = check_shape(np.zeros((3, 2)), "arr", (3, 2))
        assert array.shape == (3, 2)

    def test_accepts_wildcard_dimension(self):
        array = check_shape(np.zeros((7, 3)), "arr", (None, 3))
        assert array.shape == (7, 3)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape(np.zeros(4), "arr", (None, 3))

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="axis"):
            check_shape(np.zeros((4, 2)), "arr", (None, 3))

    def test_converts_lists(self):
        array = check_shape([[1.0, 2.0]], "arr", (1, 2))
        assert isinstance(array, np.ndarray)

"""Tests for window dataset construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import ALL_ACTIVITIES, Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.core.features import FeatureExtractor
from repro.datasets.windows import WindowDataset, WindowDatasetBuilder


class TestWindowDatasetContainer:
    def _dataset(self, n=12, d=15):
        rng = np.random.default_rng(0)
        return WindowDataset(
            features=rng.normal(size=(n, d)),
            labels=rng.integers(0, 6, size=n),
            config_names=np.array(["F100_A128"] * (n // 2) + ["F12.5_A8"] * (n - n // 2),
                                  dtype=object),
            feature_names=[f"f{i}" for i in range(d)],
        )

    def test_len_and_num_features(self):
        dataset = self._dataset()
        assert len(dataset) == 12
        assert dataset.num_features == 15

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WindowDataset(
                features=np.zeros((5, 3)),
                labels=np.zeros(4, dtype=int),
                config_names=np.array(["a"] * 5, dtype=object),
            )

    def test_feature_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WindowDataset(
                features=np.zeros((2, 3)),
                labels=np.zeros(2, dtype=int),
                config_names=np.array(["a", "a"], dtype=object),
                feature_names=["only_one"],
            )

    def test_subset_by_mask(self):
        dataset = self._dataset()
        mask = np.zeros(len(dataset), dtype=bool)
        mask[:3] = True
        subset = dataset.subset(mask)
        assert len(subset) == 3
        np.testing.assert_allclose(subset.features, dataset.features[:3])

    def test_subset_wrong_mask_length(self):
        dataset = self._dataset()
        with pytest.raises(ValueError):
            dataset.subset(np.ones(3, dtype=bool))

    def test_for_config_filters(self):
        dataset = self._dataset()
        subset = dataset.for_config("F12.5_A8")
        assert set(subset.config_names) == {"F12.5_A8"}
        assert len(subset) == 6

    def test_for_config_accepts_config_object(self):
        dataset = self._dataset()
        assert len(dataset.for_config(HIGH_POWER_CONFIG)) == 6

    def test_config_counts(self):
        counts = self._dataset().config_counts()
        assert counts == {"F100_A128": 6, "F12.5_A8": 6}

    def test_merge_concatenates(self):
        a, b = self._dataset(6), self._dataset(4)
        merged = WindowDataset.merge([a, b])
        assert len(merged) == 10

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            WindowDataset.merge([])

    def test_merge_feature_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WindowDataset.merge([self._dataset(4, 15), self._dataset(4, 10)])


class TestWindowDatasetBuilder:
    def test_build_counts(self, dataset_builder):
        dataset = dataset_builder.build(
            configs=[HIGH_POWER_CONFIG, LOW_POWER_CONFIG],
            windows_per_activity_per_config=3,
        )
        assert len(dataset) == 2 * 6 * 3
        counts = dataset.class_counts()
        assert all(value == 6 for value in counts.values())

    def test_build_for_config(self, dataset_builder):
        dataset = dataset_builder.build_for_config(LOW_POWER_CONFIG, windows_per_activity=4)
        assert len(dataset) == 24
        assert set(dataset.config_names) == {LOW_POWER_CONFIG.name}

    def test_feature_dimension_matches_extractor(self, dataset_builder):
        dataset = dataset_builder.build_for_config(HIGH_POWER_CONFIG, windows_per_activity=2)
        assert dataset.num_features == dataset_builder.extractor.num_features
        assert dataset.feature_names == dataset_builder.extractor.feature_names()

    def test_features_are_finite(self, small_dataset):
        assert np.isfinite(small_dataset.features).all()

    def test_custom_extractor_respected(self):
        extractor = FeatureExtractor(n_fourier_features=5)
        builder = WindowDatasetBuilder(extractor=extractor, seed=0)
        dataset = builder.build_for_config(HIGH_POWER_CONFIG, windows_per_activity=2)
        assert dataset.num_features == extractor.num_features

    def test_invalid_arguments_rejected(self, dataset_builder):
        with pytest.raises(ValueError):
            dataset_builder.build(configs=[], windows_per_activity_per_config=2)
        with pytest.raises(ValueError):
            dataset_builder.build(configs=[HIGH_POWER_CONFIG], windows_per_activity_per_config=0)
        with pytest.raises(ValueError):
            dataset_builder.build(
                configs=[HIGH_POWER_CONFIG],
                windows_per_activity_per_config=2,
                activities=[],
            )

    def test_acquire_raw_window_shape(self, dataset_builder):
        window = dataset_builder.acquire_raw_window(Activity.WALK, HIGH_POWER_CONFIG)
        assert window.shape == (HIGH_POWER_CONFIG.samples_per_window, 3)

    def test_deterministic_given_seed(self):
        a = WindowDatasetBuilder(seed=5).build_for_config(
            HIGH_POWER_CONFIG, windows_per_activity=2
        )
        b = WindowDatasetBuilder(seed=5).build_for_config(
            HIGH_POWER_CONFIG, windows_per_activity=2
        )
        np.testing.assert_allclose(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_split_is_stratified(self, small_dataset):
        train, test = small_dataset.split(test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(small_dataset)
        assert set(np.unique(test.labels)) == set(range(6))

    def test_classes_are_separable_in_feature_space(self, small_dataset):
        """Sanity check: the synthetic classes are not degenerate."""
        means = np.array(
            [
                small_dataset.features[small_dataset.labels == label].mean(axis=0)
                for label in range(6)
            ]
        )
        pairwise = np.linalg.norm(means[:, None, :] - means[None, :, :], axis=2)
        off_diagonal = pairwise[~np.eye(6, dtype=bool)]
        assert off_diagonal.min() > 0.1

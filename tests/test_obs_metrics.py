"""Tests for the observability core: registry, snapshots, exporters.

The merge algebra is what the sharded coordinator leans on, so it is
pinned exactly: associativity with :meth:`MetricsSnapshot.empty` as the
identity, and shard-count invariance when one stream of observations is
split across any number of registries.  Histogram quantiles are only
estimates — their contract is a relative error bounded by one bucket's
width — so they are validated against :func:`numpy.percentile`.
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_BUCKET_RATIO,
    LOG_LEVELS,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_RECORDER,
    SpanEvent,
    configure_logging,
    default_bucket_bounds,
    shard_logger,
    snapshot_to_dict,
    to_chrome_trace,
    to_prometheus_text,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import percentile_reference


def _random_snapshot(rng: np.random.Generator) -> MetricsSnapshot:
    """A registry filled with integer-valued observations, frozen.

    Integer values keep every float sum exact, so snapshot equality is
    well-defined regardless of merge grouping.
    """
    registry = MetricsRegistry(trace_events=True, tid=int(rng.integers(4)))
    for name in ("a", "b"):
        registry.count(name, float(rng.integers(1, 100)))
    registry.gauge("g", float(rng.integers(1, 50)))
    for _ in range(20):
        registry.observe("h", float(rng.integers(1, 10_000)))
    # A fixed duration keeps the span-duration histogram's float total
    # independent of summation order (bucket counts are always exact;
    # totals of unequal values are associative only up to rounding).
    start = int(rng.integers(1_000, 1_000_000))
    registry.span("s", start, start + 2_048)
    return registry.snapshot()


class TestHistogram:
    def test_percentiles_match_numpy_within_bucket_width(self):
        rng = np.random.default_rng(7)
        values = np.exp(rng.normal(loc=-4.0, scale=2.0, size=5_000))
        registry = MetricsRegistry()
        for value in values:
            registry.observe("h", float(value))
        histogram = registry.snapshot().histograms["h"]
        # The estimate interpolates inside the containing bucket, so it
        # is off by at most one bucket's relative width.
        tolerance = DEFAULT_BUCKET_RATIO - 1.0
        for q in (50.0, 90.0, 95.0, 99.0):
            exact = percentile_reference(values, q)
            estimate = histogram.percentile(q)
            assert abs(estimate - exact) <= tolerance * exact + 1e-12, (
                f"p{q}: estimate {estimate} vs exact {exact}"
            )

    def test_extremes_are_exact(self):
        registry = MetricsRegistry()
        for value in (0.25, 3.0, 17.5):
            registry.observe("h", value)
        histogram = registry.snapshot().histograms["h"]
        assert histogram.percentile(0.0) == 0.25
        assert histogram.percentile(100.0) == 17.5
        assert histogram.count == 3
        assert histogram.mean == pytest.approx((0.25 + 3.0 + 17.5) / 3)

    def test_empty_percentile_is_nan(self):
        from repro.obs import HistogramSnapshot

        bounds = default_bucket_bounds(1e-3, 10.0)
        empty = HistogramSnapshot(
            bounds=bounds,
            counts=(0,) * (len(bounds) + 1),
            total=0.0,
            low=float("inf"),
            high=float("-inf"),
        )
        assert np.isnan(empty.percentile(50.0))
        assert np.isnan(empty.mean)

    def test_merge_requires_identical_bounds(self):
        left = MetricsRegistry(bounds=default_bucket_bounds(1e-3, 10.0))
        right = MetricsRegistry(bounds=default_bucket_bounds(1e-2, 10.0))
        left.observe("h", 1.0)
        right.observe("h", 1.0)
        with pytest.raises(ValueError, match="different bounds"):
            left.snapshot().histograms["h"].merge(
                right.snapshot().histograms["h"]
            )

    def test_to_dict_has_quantile_summary(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("h", float(value))
        payload = registry.snapshot().histograms["h"].to_dict()
        assert payload["count"] == 100
        assert payload["min"] == 1.0
        assert payload["max"] == 100.0
        assert payload["p50"] <= payload["p95"] <= payload["p99"]


class TestSnapshotAlgebra:
    def test_merge_is_associative(self):
        rng = np.random.default_rng(11)
        a, b, c = (_random_snapshot(rng) for _ in range(3))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_empty_is_the_identity(self):
        snapshot = _random_snapshot(np.random.default_rng(13))
        empty = MetricsSnapshot.empty()
        assert empty.merge(snapshot) == snapshot
        assert snapshot.merge(empty) == snapshot

    def test_split_observations_merge_to_the_whole(self):
        """Splitting one observation stream over N registries and
        merging is invariant to N — the sharded coordinator's
        contract."""
        values = [float(v) for v in np.random.default_rng(17).integers(
            1, 5_000, size=60
        )]
        merged = {}
        for num_parts in (1, 2, 4):
            registries = [MetricsRegistry() for _ in range(num_parts)]
            for index, value in enumerate(values):
                registries[index % num_parts].observe("h", value)
                registries[index % num_parts].count("n")
            merged[num_parts] = MetricsSnapshot.merge_all(
                [registry.snapshot() for registry in registries]
            )
        assert merged[1].counters == merged[2].counters == merged[4].counters
        assert (
            merged[1].histograms == merged[2].histograms == merged[4].histograms
        )

    def test_merge_all_of_nothing_is_empty(self):
        assert MetricsSnapshot.merge_all([]) == MetricsSnapshot.empty()

    def test_gauges_sum_across_shards(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.gauge("ring.buffered_samples", 10.0)
        right.gauge("ring.buffered_samples", 32.0)
        merged = left.snapshot().merge(right.snapshot())
        assert merged.gauges["ring.buffered_samples"] == 42.0


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.count("c", 4.0)
        assert registry.counter_value("c") == 5.0
        assert registry.counter_value("missing") == 0.0

    def test_span_events_are_opt_in(self):
        plain = MetricsRegistry()
        plain.span("s", 0, 1_000)
        assert plain.snapshot().spans == ()
        assert "s" in plain.snapshot().histograms

        tracing = MetricsRegistry(trace_events=True, tid=2)
        tracing.span("s", 0, 1_000)
        (event,) = tracing.snapshot().spans
        assert event == SpanEvent(name="s", start_ns=0, duration_ns=1_000, tid=2)

    def test_null_recorder_is_disabled_and_empty(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.count("c")
        NULL_RECORDER.observe("h", 1.0)
        NULL_RECORDER.span("s", NULL_RECORDER.now_ns(), NULL_RECORDER.now_ns())
        assert NULL_RECORDER.snapshot() == MetricsSnapshot.empty()

    def test_phase_totals_sums_matching_histograms(self):
        """The heartbeat emitter's per-phase read: totals of the
        ``tick.*`` histograms, cheap enough to poll every segment."""
        registry = MetricsRegistry()
        registry.observe("tick.sense", 0.5)
        registry.observe("tick.sense", 0.25)
        registry.observe("tick.extract", 1.0)
        registry.observe("shard.elapsed_s", 9.0)  # wrong prefix, excluded
        assert registry.phase_totals() == {
            "tick.sense": 0.75, "tick.extract": 1.0,
        }
        assert registry.phase_totals(prefix="shard.") == {
            "shard.elapsed_s": 9.0,
        }
        assert NULL_RECORDER.phase_totals() == {}


class TestExporters:
    def _snapshot(self) -> MetricsSnapshot:
        registry = MetricsRegistry(trace_events=True, tid=1)
        registry.count("engine.ticks", 40.0)
        registry.gauge("shard.count", 2.0)
        registry.observe("tick.sense", 0.002)
        registry.span("tick.extract", 5_000, 9_000)
        return registry.snapshot()

    def test_metrics_json_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(self._snapshot(), str(path), extra={"devices": 4})
        payload = json.loads(path.read_text())
        assert payload["counters"]["engine.ticks"] == 40.0
        assert payload["meta"]["devices"] == 4
        assert payload["histograms"]["tick.sense"]["count"] == 1
        assert payload == snapshot_to_dict(self._snapshot(), {"devices": 4})

    def test_chrome_trace_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._snapshot(), str(path))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events, "no trace events emitted"
        spans = [event for event in events if event["ph"] == "X"]
        names = [event for event in events if event["ph"] == "M"]
        assert spans and names
        for event in spans:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        # Timestamps are rebased to the earliest span.
        assert min(event["ts"] for event in spans) == 0.0
        assert names[0]["args"]["name"] == "shard-1"

    def test_prometheus_text_format(self):
        text = to_prometheus_text(self._snapshot())
        assert "# TYPE repro_engine_ticks counter" in text
        assert (
            "# HELP repro_engine_ticks "
            "simulated classification ticks across all devices" in text
        )
        assert "repro_engine_ticks 40" in text
        assert "# TYPE repro_shard_count gauge" in text
        assert "# TYPE repro_tick_sense summary" in text
        assert 'repro_tick_sense{quantile="0.5"}' in text
        assert "repro_tick_sense_count 1" in text
        # Metric names must be exposition-safe (no dots).
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split(" ")[0].split("{")[0]

    def test_prometheus_help_covers_live_telemetry_counters(self):
        """Every counter the run monitor can fold into the registry has
        a glossary entry, so the exposition carries HELP lines."""
        from repro.obs import COUNTER_GLOSSARY

        live_counters = (
            "heartbeat.emitted", "heartbeat.received",
            "heartbeat.malformed", "straggler.flags",
            "flight.events", "flight.dumps",
        )
        registry = MetricsRegistry()
        for name in live_counters:
            assert name in COUNTER_GLOSSARY, f"{name} missing from glossary"
            registry.count(name, 2.0)
        text = to_prometheus_text(registry.snapshot())
        for name in live_counters:
            metric = "repro_" + name.replace(".", "_")
            assert f"# HELP {metric} {COUNTER_GLOSSARY[name]}" in text
            assert f"{metric} 2" in text

    def test_chrome_trace_one_lane_per_shard(self, tmp_path):
        """Spans recorded under different tids land in distinct named
        lanes — the shard-timeline contract Perfetto relies on."""
        snapshots = []
        for tid in (0, 3):
            registry = MetricsRegistry(trace_events=True, tid=tid)
            registry.span("tick.sense", 1_000 * (tid + 1), 2_000 * (tid + 1))
            snapshots.append(registry.snapshot())
        merged = MetricsSnapshot.merge_all(snapshots)
        document = to_chrome_trace(merged)
        events = document["traceEvents"]
        lanes = sorted(
            event["tid"] for event in events if event["ph"] == "M"
        )
        assert lanes == [0, 3]
        names = {
            event["tid"]: event["args"]["name"]
            for event in events
            if event["ph"] == "M"
        }
        assert names == {0: "shard-0", 3: "shard-3"}
        spans_by_tid = {
            event["tid"]
            for event in events
            if event["ph"] == "X"
        }
        assert spans_by_tid == {0, 3}


class TestLogging:
    def test_configure_logging_none_is_a_noop(self):
        assert configure_logging(None) is None

    def test_levels_route_to_the_given_stream(self):
        import io

        stream = io.StringIO()
        configure_logging("info", stream=stream)
        try:
            logging.getLogger("repro.test").info("hello")
            logging.getLogger("repro.test").debug("hidden")
        finally:
            configure_logging("warning", stream=io.StringIO())
        text = stream.getvalue()
        assert "hello" in text
        assert "hidden" not in text

    def test_shard_logger_prefixes_messages(self):
        import io

        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        try:
            shard_logger(3).debug("working on %d devices", 7)
        finally:
            configure_logging("warning", stream=io.StringIO())
        assert "[shard 3] working on 7 devices" in stream.getvalue()

    def test_log_levels_are_valid(self):
        for level in LOG_LEVELS:
            assert isinstance(
                logging.getLevelName(level.upper()), int
            ), f"unknown level {level}"

    @pytest.mark.parametrize("bad", ["verbose", "LOUD", "", "tracing"])
    def test_invalid_level_raises_a_clear_valueerror(self, bad):
        """Regression: an unknown --log-level used to surface as an
        AttributeError from ``getattr(logging, ...)``; it must be a
        ValueError naming the accepted levels."""
        with pytest.raises(ValueError, match="log level must be one of"):
            configure_logging(bad)

    def test_level_is_case_insensitive(self):
        import io

        stream = io.StringIO()
        configure_logging("  INFO ", stream=stream)
        try:
            logging.getLogger("repro.test").info("mixed case ok")
        finally:
            configure_logging("warning", stream=io.StringIO())
        assert "mixed case ok" in stream.getvalue()

"""Tests for the MLP, logistic-regression and k-NN classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.neighbors import KNeighborsClassifier


def _blobs(rng: np.random.Generator, n_per_class: int = 60, num_classes: int = 3):
    """A trivially separable Gaussian-blob dataset."""
    centers = np.array([[0.0, 0.0], [4.0, 4.0], [-4.0, 4.0], [4.0, -4.0]])[:num_classes]
    features = []
    labels = []
    for index, center in enumerate(centers):
        features.append(rng.normal(center, 0.5, size=(n_per_class, 2)))
        labels.append(np.full(n_per_class, index))
    return np.vstack(features), np.concatenate(labels)


class TestMLPClassifier:
    def test_learns_separable_blobs(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, hidden_units=(16,), seed=0,
                              max_epochs=80)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.95

    def test_history_recorded(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, seed=0, max_epochs=30)
        history = model.fit(features, labels)
        assert history.num_epochs > 0
        assert len(history.train_loss) == len(history.train_accuracy)
        assert history is model.history

    def test_training_loss_decreases(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, seed=1, max_epochs=40)
        history = model.fit(features, labels)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_predict_proba_rows_sum_to_one(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, seed=2, max_epochs=20)
        model.fit(features, labels)
        probabilities = model.predict_proba(features[:10])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)
        assert (probabilities >= 0).all()

    def test_single_sample_prediction(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, seed=3, max_epochs=20)
        model.fit(features, labels)
        assert isinstance(model.predict(features[0]), int)
        proba = model.predict_proba(features[0])
        assert proba.shape == (3,)

    def test_predict_with_confidence(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, seed=4, max_epochs=20)
        model.fit(features, labels)
        index, confidence = model.predict_with_confidence(features[0])
        assert 0 <= index < 3
        assert 0.0 <= confidence <= 1.0
        assert confidence == pytest.approx(model.predict_proba(features[0]).max())

    def test_label_smoothing_caps_confidence(self, rng):
        features, labels = _blobs(rng, n_per_class=80)
        sharp = MLPClassifier(input_dim=2, num_classes=3, seed=5, max_epochs=60,
                              label_smoothing=0.0)
        smooth = MLPClassifier(input_dim=2, num_classes=3, seed=5, max_epochs=60,
                               label_smoothing=0.2)
        sharp.fit(features, labels)
        smooth.fit(features, labels)
        assert smooth.predict_proba(features).max() < sharp.predict_proba(features).max() + 1e-9

    def test_num_parameters_formula(self):
        model = MLPClassifier(input_dim=15, num_classes=6, hidden_units=(32,))
        assert model.num_parameters == 15 * 32 + 32 + 32 * 6 + 6

    def test_two_hidden_layers_supported(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, hidden_units=(16, 8), seed=6,
                              max_epochs=40)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.9

    def test_deterministic_given_seed(self, rng):
        features, labels = _blobs(rng)
        scores = []
        for _ in range(2):
            model = MLPClassifier(input_dim=2, num_classes=3, seed=42, max_epochs=15)
            model.fit(features, labels)
            scores.append(model.predict_proba(features[:5]))
        np.testing.assert_allclose(scores[0], scores[1])

    def test_serialisation_round_trip(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=3, seed=7, max_epochs=20)
        model.fit(features, labels)
        rebuilt = MLPClassifier.from_dict(model.to_dict())
        np.testing.assert_allclose(
            rebuilt.predict_proba(features[:20]), model.predict_proba(features[:20])
        )

    def test_set_parameters_validates_shapes(self):
        model = MLPClassifier(input_dim=4, num_classes=2, hidden_units=(8,))
        parameters = model.get_parameters()
        parameters["W0"] = np.zeros((3, 8))
        with pytest.raises(ValueError):
            model.set_parameters(parameters)

    def test_rejects_bad_labels(self, rng):
        features, labels = _blobs(rng)
        model = MLPClassifier(input_dim=2, num_classes=2, seed=8, max_epochs=5)
        with pytest.raises(ValueError):
            model.fit(features, labels)  # labels include class 2

    def test_rejects_bad_feature_width(self, rng):
        model = MLPClassifier(input_dim=3, num_classes=2, seed=9)
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(10, 2)), np.zeros(10, dtype=int))

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MLPClassifier(input_dim=2, num_classes=2, hidden_units=())
        with pytest.raises(ValueError):
            MLPClassifier(input_dim=2, num_classes=2, learning_rate=0.0)
        with pytest.raises(ValueError):
            MLPClassifier(input_dim=2, num_classes=2, label_smoothing=1.5)


class TestLogisticRegression:
    def test_learns_separable_blobs(self, rng):
        features, labels = _blobs(rng)
        model = LogisticRegressionClassifier(input_dim=2, num_classes=3, seed=0)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.95

    def test_probabilities_valid(self, rng):
        features, labels = _blobs(rng)
        model = LogisticRegressionClassifier(input_dim=2, num_classes=3, seed=1)
        model.fit(features, labels)
        probabilities = model.predict_proba(features[:5])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_predict_with_confidence(self, rng):
        features, labels = _blobs(rng)
        model = LogisticRegressionClassifier(input_dim=2, num_classes=3, seed=2)
        model.fit(features, labels)
        index, confidence = model.predict_with_confidence(features[0])
        assert 0 <= index < 3 and 0 < confidence <= 1

    def test_serialisation_round_trip(self, rng):
        features, labels = _blobs(rng)
        model = LogisticRegressionClassifier(input_dim=2, num_classes=3, seed=3)
        model.fit(features, labels)
        rebuilt = LogisticRegressionClassifier.from_dict(model.to_dict())
        np.testing.assert_allclose(
            rebuilt.predict_proba(features[:10]), model.predict_proba(features[:10])
        )

    def test_num_parameters(self):
        model = LogisticRegressionClassifier(input_dim=15, num_classes=6)
        assert model.num_parameters == 15 * 6 + 6

    def test_rejects_mismatched_labels(self, rng):
        model = LogisticRegressionClassifier(input_dim=2, num_classes=2)
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(10, 2)), np.zeros(9, dtype=int))


class TestKNeighbors:
    def test_learns_separable_blobs(self, rng):
        features, labels = _blobs(rng)
        model = KNeighborsClassifier(n_neighbors=3, num_classes=3)
        model.fit(features, labels)
        assert model.score(features, labels) > 0.95

    def test_probabilities_are_vote_fractions(self, rng):
        features, labels = _blobs(rng)
        model = KNeighborsClassifier(n_neighbors=5, num_classes=3)
        model.fit(features, labels)
        probabilities = model.predict_proba(features[0])
        assert probabilities.shape == (3,)
        np.testing.assert_allclose(probabilities.sum(), 1.0)
        assert set(np.round(probabilities * 5)) <= {0, 1, 2, 3, 4, 5}

    def test_requires_fit_before_predict(self):
        model = KNeighborsClassifier()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 2)))

    def test_requires_enough_training_samples(self, rng):
        model = KNeighborsClassifier(n_neighbors=10)
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(5, 2)), np.zeros(5, dtype=int))

    def test_predict_with_confidence(self, rng):
        features, labels = _blobs(rng)
        model = KNeighborsClassifier(n_neighbors=5, num_classes=3)
        model.fit(features, labels)
        index, confidence = model.predict_with_confidence(features[0])
        assert 0 <= index < 3 and 0 < confidence <= 1

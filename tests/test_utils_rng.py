"""Tests for random-number-generator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    as_rng,
    derive_seed_sequences,
    spawn_rngs,
    stable_seed_from,
)


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1_000_000, size=10)
        b = as_rng(42).integers(0, 1_000_000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 1_000_000, size=10)
        b = as_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator


class TestSpawnRngs:
    def test_returns_requested_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(7, 2)
        a = children[0].integers(0, 1_000_000, size=20)
        b = children[1].integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_spawning_is_deterministic(self):
        first = [g.integers(0, 1000) for g in spawn_rngs(3, 3)]
        second = [g.integers(0, 1000) for g in spawn_rngs(3, 3)]
        assert first == second

    def test_generator_without_seed_sequence(self):
        """Regression: a bit generator built from an explicit key has
        ``seed_seq=None``; spawning used to die with a bare
        ``AttributeError`` instead of reseeding."""
        parent = np.random.Generator(np.random.Philox(key=123))
        children = spawn_rngs(parent, 3)
        assert len(children) == 3
        a = children[0].integers(0, 1_000_000, size=20)
        b = children[1].integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_seedless_reseed_is_deterministic(self):
        """The fallback derives entropy from the parent's own stream,
        so identically-constructed parents spawn identical children."""
        first = [
            g.integers(0, 1000)
            for g in spawn_rngs(np.random.Generator(np.random.Philox(key=9)), 4)
        ]
        second = [
            g.integers(0, 1000)
            for g in spawn_rngs(np.random.Generator(np.random.Philox(key=9)), 4)
        ]
        assert first == second


class TestDeriveSeedSequences:
    def test_returns_seed_sequences(self):
        children = derive_seed_sequences(11, 3)
        assert len(children) == 3
        assert all(
            isinstance(child, np.random.SeedSequence) for child in children
        )

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seed_sequences(0, -1)

    def test_spawning_does_not_consume_parent_draws(self):
        """Seed-sequence spawning must leave the parent's output stream
        untouched — the batched-noise mode relies on this to keep
        signal and bias draws identical across noise modes."""
        reference = as_rng(5).integers(0, 1_000_000, size=10)
        parent = as_rng(5)
        derive_seed_sequences(parent, 4)
        np.testing.assert_array_equal(
            parent.integers(0, 1_000_000, size=10), reference
        )

    def test_seedless_fallback_does_not_consume_parent_draws(self):
        """The reseed fallback draws its entropy from a *copy* of the
        parent, so even seed-sequence-less generators keep their output
        stream untouched (the NoiseBank.from_rngs guarantee)."""
        reference = np.random.Generator(np.random.Philox(key=77)).integers(
            0, 1_000_000, size=10
        )
        parent = np.random.Generator(np.random.Philox(key=77))
        derive_seed_sequences(parent, 4)
        np.testing.assert_array_equal(
            parent.integers(0, 1_000_000, size=10), reference
        )


class TestStableSeedFrom:
    def test_deterministic_across_calls(self):
        assert stable_seed_from(1, "abc") == stable_seed_from(1, "abc")

    def test_differs_with_inputs(self):
        assert stable_seed_from(1, "abc") != stable_seed_from(2, "abc")
        assert stable_seed_from(1, "abc") != stable_seed_from(1, "abd")

    def test_order_matters(self):
        assert stable_seed_from("a", "b") != stable_seed_from("b", "a")

    def test_result_in_valid_seed_range(self):
        for parts in [(0,), ("x", 3), (123456789, "config", 42)]:
            seed = stable_seed_from(*parts)
            assert 0 <= seed < 2**31 - 1

    def test_usable_as_numpy_seed(self):
        seed = stable_seed_from("fig6", 17)
        generator = np.random.default_rng(seed)
        assert generator.integers(0, 10) >= 0

"""Tests for feature scaling, splitting and label utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.preprocessing import (
    StandardScaler,
    one_hot,
    shuffle_in_unison,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(5.0, 3.0, size=(500, 4))
        transformed = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_left_unscaled(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        transformed = StandardScaler().fit_transform(data)
        assert np.isfinite(transformed).all()
        np.testing.assert_allclose(transformed[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((3, 2)))

    def test_inverse_round_trip(self, rng):
        data = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, atol=1e-12
        )

    def test_feature_count_mismatch_rejected(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((5, 4)))

    def test_single_vector_transform(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(20, 3)))
        assert scaler.transform(np.zeros(3)).shape == (1, 3)

    def test_serialisation_round_trip(self, rng):
        data = rng.normal(size=(30, 5))
        scaler = StandardScaler().fit(data)
        rebuilt = StandardScaler.from_dict(scaler.to_dict())
        np.testing.assert_allclose(rebuilt.transform(data), scaler.transform(data))

    def test_serialising_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().to_dict()


class TestOneHot:
    def test_basic_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rows_sum_to_one(self):
        encoded = one_hot(np.array([0, 5, 3]), 6)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_empty_labels(self):
        assert one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestTrainTestSplit:
    def _dataset(self, rng, n=120):
        features = rng.normal(size=(n, 4))
        labels = np.repeat(np.arange(6), n // 6)
        return features, labels

    def test_sizes_roughly_match_fraction(self, rng):
        features, labels = self._dataset(rng)
        train_x, test_x, train_y, test_y = train_test_split(
            features, labels, test_fraction=0.25, seed=0
        )
        assert len(test_y) == pytest.approx(30, abs=3)
        assert len(train_y) + len(test_y) == 120

    def test_stratified_split_keeps_all_classes(self, rng):
        features, labels = self._dataset(rng)
        _, _, train_y, test_y = train_test_split(features, labels, seed=1)
        assert set(train_y) == set(range(6))
        assert set(test_y) == set(range(6))

    def test_unstratified_split(self, rng):
        features, labels = self._dataset(rng)
        train_x, test_x, train_y, test_y = train_test_split(
            features, labels, seed=2, stratify=False
        )
        assert len(train_y) + len(test_y) == 120

    def test_no_overlap_between_partitions(self, rng):
        features = np.arange(60.0)[:, None]
        labels = np.repeat(np.arange(6), 10)
        train_x, test_x, _, _ = train_test_split(features, labels, seed=3)
        assert set(train_x.ravel()).isdisjoint(set(test_x.ravel()))

    def test_deterministic_given_seed(self, rng):
        features, labels = self._dataset(rng)
        first = train_test_split(features, labels, seed=7)
        second = train_test_split(features, labels, seed=7)
        np.testing.assert_array_equal(first[0], second[0])

    def test_invalid_fraction_rejected(self, rng):
        features, labels = self._dataset(rng)
        with pytest.raises(ValueError):
            train_test_split(features, labels, test_fraction=1.5)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            train_test_split(rng.normal(size=(10, 2)), np.zeros(5, dtype=int))


class TestShuffleInUnison:
    def test_rows_stay_paired(self, rng):
        features = np.arange(20.0)[:, None]
        labels = np.arange(20)
        shuffled_x, shuffled_y = shuffle_in_unison(features, labels, seed=0)
        np.testing.assert_array_equal(shuffled_x.ravel().astype(int), shuffled_y)

    def test_is_permutation(self, rng):
        features = rng.normal(size=(15, 2))
        labels = np.arange(15)
        _, shuffled_y = shuffle_in_unison(features, labels, seed=1)
        assert sorted(shuffled_y) == list(range(15))

"""Metering must never perturb the simulation.

The observability layer's hardest promise is that a metered run is
bit-identical to an unmetered run — in every engine mode and for every
shard count.  These tests pin that, plus the sanity of the counters the
engine reports and the shard-count invariance of the merged snapshot's
device-attributable metrics.
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    FleetTelemetry,
    ShardedFleetSimulator,
    traces_equal,
)
from repro.obs import MetricsRegistry, NULL_RECORDER

NUM_DEVICES = 4
DURATION_S = 30.0
NUM_STEPS = int(DURATION_S)

#: One engine-mode override per axis, on top of the default recipe.
MODE_AXES = (
    {},
    {"features": "exact"},
    {"sensing": "per_device"},
    {"controllers": "per_object"},
    {"noise": "batched"},
)


@pytest.fixture(scope="module")
def population():
    return DevicePopulation.generate(
        NUM_DEVICES, duration_s=DURATION_S, master_seed=99
    )


class TestBitIdentity:
    @pytest.mark.parametrize(
        "overrides", MODE_AXES, ids=lambda o: "-".join(o.values()) or "default"
    )
    def test_metered_traces_match_unmetered(
        self, trained_pipeline, population, overrides
    ):
        registry = MetricsRegistry(trace_events=True)
        metered = FleetSimulator(
            trained_pipeline, metrics=registry, **overrides
        ).run(population)
        plain = FleetSimulator(trained_pipeline, **overrides).run(population)
        for left, right in zip(metered.traces, plain.traces):
            assert traces_equal(left, right)
        assert registry.counter_value("engine.ticks") == NUM_STEPS

    @pytest.mark.parametrize(
        "overrides", MODE_AXES, ids=lambda o: "-".join(o.values()) or "default"
    )
    def test_metered_summary_telemetry_matches_unmetered(
        self, trained_pipeline, population, overrides
    ):
        metered = FleetSimulator(
            trained_pipeline, metrics=MetricsRegistry(), **overrides
        ).run(population, trace="summary")
        plain = FleetSimulator(trained_pipeline, **overrides).run(
            population, trace="summary"
        )
        assert (
            FleetTelemetry.from_result(metered).to_dict()
            == FleetTelemetry.from_result(plain).to_dict()
        )

    def test_metered_sequential_reference_matches_unmetered(
        self, trained_pipeline, population
    ):
        """run_sequential forwards the registry into every per-device
        ClosedLoopSimulator; metering must not perturb that path
        either."""
        registry = MetricsRegistry()
        metered = FleetSimulator(
            trained_pipeline, metrics=registry
        ).run_sequential(population)
        plain = FleetSimulator(trained_pipeline).run_sequential(population)
        for left, right in zip(metered.traces, plain.traces):
            assert traces_equal(left, right)
        assert registry.counter_value("engine.runs") == NUM_DEVICES

    @pytest.mark.parametrize("num_shards", (1, 2, 4))
    def test_metered_sharded_matches_unmetered_batched(
        self, trained_pipeline, population, num_shards
    ):
        plain = FleetSimulator(trained_pipeline).run(population)
        run = ShardedFleetSimulator(
            trained_pipeline, metrics=MetricsRegistry(trace_events=True)
        ).run(population, num_shards=num_shards)
        for left, right in zip(run.result.traces, plain.traces):
            assert traces_equal(left, right)


class TestCounters:
    def test_engine_counters_are_sane(self, trained_pipeline, population):
        registry = MetricsRegistry(trace_events=True)
        FleetSimulator(trained_pipeline, noise="batched", metrics=registry).run(
            population
        )
        snapshot = registry.snapshot()
        assert snapshot.counters["engine.runs"] == 1.0
        assert snapshot.counters["engine.ticks"] == NUM_STEPS
        assert (
            snapshot.counters["engine.windows_classified"]
            == NUM_DEVICES * NUM_STEPS
        )
        # Every classified window was extracted either incrementally or
        # exactly — the two feature counters partition the total.
        assert (
            snapshot.counters["features.incremental_windows"]
            + snapshot.counters["features.exact_windows"]
            == NUM_DEVICES * NUM_STEPS
        )
        assert snapshot.counters["noise.refills"] > 0.0
        assert snapshot.gauges["engine.devices"] == NUM_DEVICES
        for phase in (
            "tick.sense",
            "tick.extract",
            "tick.classify",
            "tick.adapt",
            "tick.fold",
            "engine.run",
        ):
            assert snapshot.histograms[phase].count >= 1, phase
        # Cohort sizes: one observation per (tick, config group), each
        # between 1 and the fleet size.
        cohorts = snapshot.histograms["engine.cohort_devices"]
        assert cohorts.count == snapshot.counters["engine.config_groups"]
        assert 1.0 <= cohorts.low and cohorts.high <= NUM_DEVICES

    def test_exact_mode_counts_only_exact_windows(
        self, trained_pipeline, population
    ):
        registry = MetricsRegistry()
        FleetSimulator(
            trained_pipeline, features="exact", metrics=registry
        ).run(population)
        assert (
            registry.counter_value("features.exact_windows")
            == NUM_DEVICES * NUM_STEPS
        )
        assert registry.counter_value("features.incremental_windows") == 0.0

    def test_spans_retained_only_with_trace_events(
        self, trained_pipeline, population
    ):
        plain = MetricsRegistry()
        FleetSimulator(trained_pipeline, metrics=plain).run(population)
        assert plain.snapshot().spans == ()

        tracing = MetricsRegistry(trace_events=True)
        FleetSimulator(trained_pipeline, metrics=tracing).run(population)
        spans = tracing.snapshot().spans
        assert len(spans) > NUM_STEPS
        assert {span.name for span in spans} >= {
            "tick.sense",
            "tick.extract",
            "tick.classify",
            "tick.adapt",
            "tick.fold",
            "engine.run",
        }

    def test_default_simulator_uses_the_null_recorder(self, trained_pipeline):
        simulator = FleetSimulator(trained_pipeline)
        assert simulator.metrics is NULL_RECORDER
        assert simulator.metrics.enabled is False


class TestShardedMetrics:
    @pytest.mark.parametrize("num_shards", (1, 2, 4))
    def test_run_carries_per_shard_heartbeats(
        self, trained_pipeline, population, num_shards
    ):
        run = ShardedFleetSimulator(
            trained_pipeline, metrics=MetricsRegistry()
        ).run(population, num_shards=num_shards)
        assert len(run.shard_elapsed_s) == run.num_shards
        assert all(elapsed > 0.0 for elapsed in run.shard_elapsed_s)
        assert len(run.shard_metrics) == run.num_shards
        stats = run.straggler_stats()
        assert stats["min_s"] <= stats["mean_s"] <= stats["max_s"]
        assert stats["skew"] >= 1.0
        assert 0 <= int(stats["straggler"]) < run.num_shards
        merged = run.metrics
        assert merged.histograms["shard.elapsed_s"].count == run.num_shards
        assert merged.gauges["shard.count"] == run.num_shards

    def test_device_attributable_counters_are_shard_invariant(
        self, trained_pipeline, population
    ):
        merged = {}
        for num_shards in (1, 2, 4):
            run = ShardedFleetSimulator(
                trained_pipeline, noise="batched", metrics=MetricsRegistry()
            ).run(population, num_shards=num_shards)
            merged[num_shards] = run.metrics.counters
        for name in (
            "engine.windows_classified",
            "features.incremental_windows",
            "features.exact_windows",
            "noise.refills",
            "engine.config_switches",
        ):
            assert (
                merged[1][name] == merged[2][name] == merged[4][name]
            ), name

    def test_worker_spans_sit_in_shard_lanes(self, trained_pipeline, population):
        run = ShardedFleetSimulator(
            trained_pipeline, metrics=MetricsRegistry(trace_events=True)
        ).run(population, num_shards=2)
        assert {span.tid for span in run.metrics.spans} == {0, 1}

    def test_unmetered_sharded_run_has_no_metrics(
        self, trained_pipeline, population
    ):
        run = ShardedFleetSimulator(trained_pipeline).run(
            population, num_shards=2
        )
        assert run.metrics is None
        assert run.shard_metrics == ()
        # Per-shard wall-clock is recorded even without a registry.
        assert len(run.shard_elapsed_s) == 2

"""Tests for the UCI-HAR-style on-disk dataset format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.har_format import load_dataset, save_dataset, validate_dataset
from repro.datasets.windows import WindowDataset


def _dataset(n=10, d=15):
    rng = np.random.default_rng(1)
    return WindowDataset(
        features=rng.normal(size=(n, d)),
        labels=rng.integers(0, 6, size=n),
        config_names=np.array(["F100_A128"] * n, dtype=object),
        feature_names=[f"f{i}" for i in range(d)],
    )


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_content(self, tmp_path):
        original = _dataset()
        root = save_dataset(tmp_path / "har", original)
        loaded = load_dataset(root)
        np.testing.assert_allclose(loaded.features, original.features, rtol=1e-6)
        np.testing.assert_array_equal(loaded.labels, original.labels)
        assert list(loaded.config_names) == list(original.config_names)
        assert loaded.feature_names == original.feature_names

    def test_written_files_exist(self, tmp_path):
        root = save_dataset(tmp_path / "har", _dataset())
        for name in ("X.txt", "y.txt", "config.txt", "features.txt", "activity_labels.txt"):
            assert (root / name).exists()

    def test_activity_labels_file_readable(self, tmp_path):
        root = save_dataset(tmp_path / "har", _dataset())
        lines = (root / "activity_labels.txt").read_text().splitlines()
        assert len(lines) == 6
        assert lines[0].startswith("0 ")

    def test_single_window_dataset(self, tmp_path):
        original = _dataset(n=1)
        loaded = load_dataset(save_dataset(tmp_path / "one", original))
        assert len(loaded) == 1
        assert loaded.features.shape == original.features.shape


class TestLoadErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "missing")

    def test_missing_labels_file(self, tmp_path):
        root = save_dataset(tmp_path / "har", _dataset())
        (root / "y.txt").unlink()
        with pytest.raises(FileNotFoundError):
            load_dataset(root)

    def test_inconsistent_lengths_rejected(self, tmp_path):
        root = save_dataset(tmp_path / "har", _dataset(n=5))
        (root / "y.txt").write_text("0\n1\n")
        with pytest.raises(ValueError):
            load_dataset(root)

    def test_missing_feature_names_falls_back(self, tmp_path):
        root = save_dataset(tmp_path / "har", _dataset())
        (root / "features.txt").unlink()
        loaded = load_dataset(root)
        assert loaded.feature_names[0] == "feature_0"


class TestValidateDataset:
    def test_valid_dataset_passes(self):
        validate_dataset(_dataset())

    def test_non_finite_features_rejected(self):
        dataset = _dataset()
        dataset.features[0, 0] = np.nan
        with pytest.raises(ValueError):
            validate_dataset(dataset)

    def test_unknown_label_rejected(self):
        dataset = _dataset()
        dataset.labels[0] = 17
        with pytest.raises(ValueError):
            validate_dataset(dataset)

"""Tests for the O(1)-memory trace fold and the telemetry updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.fleet.telemetry import DISTRIBUTION_PERCENTILES, distribution_stats
from repro.sim.trace import SimulationTrace, StepRecord, TraceSummary


def make_trace(specs):
    trace = SimulationTrace()
    for step, (true, predicted, config, current) in enumerate(specs, start=1):
        trace.append(
            StepRecord(
                time_s=float(step),
                true_activity=true,
                predicted_activity=predicted,
                confidence=0.9,
                config_name=config,
                current_ua=current,
                duration_s=1.0,
            )
        )
    return trace


class TestTraceSummary:
    def test_fold_matches_trace_aggregates(self):
        trace = make_trace(
            [
                (Activity.SIT, Activity.SIT, "A", 100.0),
                (Activity.SIT, Activity.WALK, "A", 100.0),
                (Activity.WALK, Activity.WALK, "B", 50.0),
                (Activity.WALK, Activity.WALK, "B", 50.0),
            ]
        )
        summary = TraceSummary.from_trace(trace)
        assert summary.steps == len(trace)
        assert len(summary) == len(trace)
        assert summary.duration_s == trace.duration_s
        assert summary.accuracy == trace.accuracy
        assert summary.average_current_ua == pytest.approx(trace.average_current_ua)
        assert summary.energy_uc == pytest.approx(trace.energy_uc)
        assert summary.state_residency() == pytest.approx(trace.state_residency())

    def test_incremental_fold_equals_replay(self):
        """Folding tick by tick equals replaying the finished trace."""
        trace = make_trace(
            [(Activity.SIT, Activity.SIT, "A", 70.0)] * 3
            + [(Activity.WALK, Activity.SIT, "B", 20.0)] * 2
        )
        streamed = TraceSummary()
        for record in trace.records:
            streamed.fold_step(
                correct=record.correct,
                current_ua=record.current_ua,
                config_name=record.config_name,
                duration_s=record.duration_s,
            )
        assert streamed == TraceSummary.from_trace(trace)

    def test_empty_summary_raises(self):
        summary = TraceSummary()
        assert summary.steps == 0
        with pytest.raises(ValueError):
            summary.accuracy
        with pytest.raises(ValueError):
            summary.average_current_ua
        with pytest.raises(ValueError):
            summary.state_residency()

    def test_dwell_only_contains_visited_configs(self):
        trace = make_trace([(Activity.SIT, Activity.SIT, "A", 10.0)])
        summary = TraceSummary.from_trace(trace)
        assert set(summary.dwell_s) == {"A"}
        assert summary.state_residency() == {"A": 1.0}


class TestDistributionStats:
    def test_empty_input_yields_zero_summary(self):
        stats = distribution_stats([])
        assert stats["count"] == 0.0
        assert stats["mean"] == 0.0
        assert stats["min"] == 0.0
        for percentile in DISTRIBUTION_PERCENTILES:
            assert stats[f"p{percentile}"] == 0.0

    def test_single_percentile_call_matches_individual_calls(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        stats = distribution_stats(values)
        for percentile in DISTRIBUTION_PERCENTILES:
            assert stats[f"p{percentile}"] == pytest.approx(
                float(np.percentile(np.asarray(values), percentile))
            )
        assert stats["count"] == len(values)
        assert stats["mean"] == pytest.approx(np.mean(values))

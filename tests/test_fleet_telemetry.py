"""Tests for fleet telemetry aggregation and export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.energy.battery import Battery
from repro.fleet.engine import FleetResult, FleetSimulator
from repro.fleet.population import ControllerSpec, DevicePopulation, DeviceProfile
from repro.fleet.telemetry import (
    DeviceReport,
    FleetTelemetry,
    distribution_stats,
)
from repro.sensors.imu import NoiseModel
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.sim.trace import SimulationTrace, StepRecord


def _profile(device_id: int, scenario: str = "low", kind: str = "static") -> DeviceProfile:
    return DeviceProfile(
        device_id=device_id,
        scenario=scenario,
        schedule=((Activity.SIT, 4.0),),
        controller=ControllerSpec(kind=kind),
        noise=NoiseModel(),
        power_model=AccelerometerPowerModel.bmi160(),
        battery=Battery(capacity_mah=100.0),
        seed=device_id,
    )


def _trace(config_currents: list) -> SimulationTrace:
    """A hand-built trace: one (config_name, current, correct) triple per step."""
    trace = SimulationTrace()
    for index, (config_name, current_ua, correct) in enumerate(config_currents):
        trace.append(
            StepRecord(
                time_s=float(index + 1),
                true_activity=Activity.SIT,
                predicted_activity=Activity.SIT if correct else Activity.WALK,
                confidence=0.9,
                config_name=config_name,
                current_ua=current_ua,
                duration_s=1.0,
            )
        )
    return trace


class TestDistributionStats:
    def test_known_values(self):
        stats = distribution_stats([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["p50"] == pytest.approx(np.percentile([1, 2, 3, 4], 50))

    def test_empty_sample_yields_zero_summary(self):
        stats = distribution_stats([])
        assert stats["count"] == 0.0
        assert set(stats) == set(distribution_stats([1.0, 2.0]))
        assert all(value == 0.0 for value in stats.values())


class TestDeviceReport:
    def test_report_matches_trace_aggregates(self):
        profile = _profile(0)
        trace = _trace(
            [("A", 100.0, True), ("A", 100.0, True), ("B", 50.0, False), ("B", 50.0, True)]
        )
        report = DeviceReport.from_trace(profile, trace)
        assert report.steps == 4
        assert report.duration_s == pytest.approx(4.0)
        assert report.accuracy == pytest.approx(0.75)
        assert report.average_current_ua == pytest.approx(75.0)
        assert report.energy_uc == pytest.approx(300.0)
        assert report.state_residency == {"A": 0.5, "B": 0.5}
        # 100 mAh at 85 % usable over 75 uA -> (100*0.85/0.075)/24 hours.
        expected_days = (100.0 * 0.85 / (75.0 / 1000.0)) / 24.0
        assert report.battery_life_days == pytest.approx(expected_days)

    def test_to_dict_is_json_serialisable(self):
        report = DeviceReport.from_trace(_profile(1), _trace([("A", 10.0, True)]))
        text = json.dumps(report.to_dict())
        assert "battery_life_days" in text


class TestFleetAggregation:
    def _telemetry(self) -> FleetTelemetry:
        profiles = (
            _profile(0, scenario="low", kind="static"),
            _profile(1, scenario="high", kind="spot"),
        )
        traces = (
            _trace([("A", 100.0, True), ("A", 100.0, True)]),
            _trace([("B", 50.0, False), ("B", 50.0, True)]),
        )
        result = FleetResult(
            profiles=profiles, traces=traces, elapsed_s=0.1, mode="batched"
        )
        return FleetTelemetry.from_result(result)

    def test_fleet_summary_distributions(self):
        summary = self._telemetry().fleet_summary()
        assert summary["num_devices"] == 2
        assert summary["device_seconds"] == pytest.approx(4.0)
        assert summary["accuracy"]["mean"] == pytest.approx(0.75)
        assert summary["average_current_ua"]["mean"] == pytest.approx(75.0)

    def test_config_dwell_is_time_weighted_and_normalised(self):
        dwell = self._telemetry().config_dwell()
        assert dwell == {"A": pytest.approx(0.5), "B": pytest.approx(0.5)}
        assert sum(dwell.values()) == pytest.approx(1.0)

    def test_groupings_partition_the_fleet(self):
        telemetry = self._telemetry()
        by_scenario = telemetry.by_scenario()
        by_controller = telemetry.by_controller()
        assert sorted(by_scenario) == ["high", "low"]
        assert sorted(by_controller) == ["spot", "static"]
        assert sum(group["num_devices"] for group in by_scenario.values()) == 2
        assert by_controller["static"]["mean_accuracy"] == pytest.approx(1.0)
        assert by_controller["spot"]["mean_accuracy"] == pytest.approx(0.5)

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            FleetTelemetry([])


class TestExport:
    def test_json_roundtrip_and_file_export(self, tmp_path, trained_pipeline):
        population = DevicePopulation.generate(3, duration_s=10.0, master_seed=4)
        result = FleetSimulator(trained_pipeline).run(population)
        telemetry = FleetTelemetry.from_result(result)

        path = tmp_path / "fleet.json"
        text = telemetry.to_json(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(text)
        assert on_disk["fleet"]["num_devices"] == 3
        assert len(on_disk["devices"]) == 3
        for key in ("accuracy", "average_current_ua", "battery_life_days"):
            assert "p95" in on_disk["fleet"][key]

    def test_format_table_mentions_key_sections(self, trained_pipeline):
        population = DevicePopulation.generate(2, duration_s=10.0, master_seed=4)
        result = FleetSimulator(trained_pipeline).run(population)
        table = FleetTelemetry.from_result(result).format_table()
        for needle in ("devices", "battery life", "config dwell", "by controller"):
            assert needle in table

"""Tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    macro_f1,
    per_class_report,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([0, 1, 2], [0, 1, 2]) == 1.0

    def test_partial(self):
        assert accuracy_score([0, 1, 2, 3], [0, 1, 0, 0]) == 0.5

    def test_all_wrong(self):
        assert accuracy_score([0, 0], [1, 1]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([0, 1], [0])


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        matrix = confusion_matrix([0, 1, 2, 2], [0, 1, 2, 2], num_classes=3)
        np.testing.assert_array_equal(matrix, np.diag([1, 1, 2]))

    def test_off_diagonal_counts(self):
        matrix = confusion_matrix([0, 0, 1], [1, 0, 1], num_classes=2)
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_rows_sum_to_class_support(self):
        true = [0, 0, 1, 2, 2, 2]
        predicted = [0, 1, 1, 0, 2, 2]
        matrix = confusion_matrix(true, predicted, num_classes=3)
        np.testing.assert_array_equal(matrix.sum(axis=1), [2, 1, 3])

    def test_infers_num_classes(self):
        matrix = confusion_matrix([0, 3], [3, 0])
        assert matrix.shape == (4, 4)

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 5], [0, 1], num_classes=3)


class TestPerClassReport:
    def test_perfect_classifier(self):
        reports = per_class_report([0, 1, 1], [0, 1, 1], num_classes=2)
        assert reports[0].precision == 1.0
        assert reports[1].recall == 1.0
        assert reports[1].f1 == 1.0
        assert reports[1].support == 2

    def test_absent_class_has_zero_scores(self):
        reports = per_class_report([0, 0], [0, 0], num_classes=2)
        assert reports[1].precision == 0.0
        assert reports[1].recall == 0.0
        assert reports[1].f1 == 0.0
        assert reports[1].support == 0

    def test_known_values(self):
        # Class 0: TP=1, FP=1, FN=1 -> precision=recall=f1=0.5
        reports = per_class_report([0, 0, 1, 1], [0, 1, 0, 1], num_classes=2)
        assert reports[0].precision == pytest.approx(0.5)
        assert reports[0].recall == pytest.approx(0.5)
        assert reports[0].f1 == pytest.approx(0.5)

    def test_macro_f1_average(self):
        value = macro_f1([0, 0, 1, 1], [0, 1, 0, 1], num_classes=2)
        assert value == pytest.approx(0.5)


class TestClassificationReport:
    def test_contains_class_names_and_accuracy(self):
        report = classification_report(
            [0, 1, 1], [0, 1, 0], class_names=["sit", "walk"], num_classes=2
        )
        assert "sit" in report and "walk" in report
        assert "overall accuracy" in report

    def test_falls_back_to_indices(self):
        report = classification_report([0, 1], [0, 1], num_classes=2)
        assert "overall accuracy: 1.000" in report

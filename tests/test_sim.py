"""Tests for simulation traces and the closed-loop simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.core.controller import SpotController, StaticController
from repro.datasets.scenarios import make_fig5_schedule, make_stable_schedule
from repro.datasets.synthetic import ScheduledSignal
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.sim.runtime import ClosedLoopSimulator
from repro.sim.trace import SimulationTrace, StepRecord


def _record(
    time_s: float,
    true_activity=Activity.SIT,
    predicted=Activity.SIT,
    config="F100_A128",
    current=180.0,
) -> StepRecord:
    return StepRecord(
        time_s=time_s,
        true_activity=true_activity,
        predicted_activity=predicted,
        confidence=0.9,
        config_name=config,
        current_ua=current,
    )


class TestSimulationTrace:
    def test_empty_trace_properties(self):
        trace = SimulationTrace()
        assert len(trace) == 0
        assert trace.duration_s == 0.0
        with pytest.raises(ValueError):
            _ = trace.accuracy

    def test_accuracy_counts_matches(self):
        trace = SimulationTrace(
            records=[
                _record(1.0, Activity.SIT, Activity.SIT),
                _record(2.0, Activity.SIT, Activity.WALK),
            ]
        )
        assert trace.accuracy == pytest.approx(0.5)

    def test_average_current_and_energy(self):
        trace = SimulationTrace(
            records=[_record(1.0, current=100.0), _record(2.0, current=50.0)]
        )
        assert trace.average_current_ua == pytest.approx(75.0)
        assert trace.energy_uc == pytest.approx(150.0)

    def test_state_residency(self):
        trace = SimulationTrace(
            records=[
                _record(1.0, config="F100_A128"),
                _record(2.0, config="F12.5_A8"),
                _record(3.0, config="F12.5_A8"),
            ]
        )
        residency = trace.state_residency()
        assert residency["F12.5_A8"] == pytest.approx(2 / 3)

    def test_activity_change_times(self):
        trace = SimulationTrace(
            records=[
                _record(1.0, Activity.SIT),
                _record(2.0, Activity.SIT),
                _record(3.0, Activity.WALK),
                _record(4.0, Activity.WALK),
            ]
        )
        np.testing.assert_allclose(trace.activity_change_times(), [3.0])

    def test_summary_keys(self):
        trace = SimulationTrace(records=[_record(1.0)])
        summary = trace.summary()
        assert {"steps", "duration_s", "accuracy", "average_current_ua"} <= set(summary)

    def test_concatenate(self):
        a = SimulationTrace(records=[_record(1.0)])
        b = SimulationTrace(records=[_record(2.0), _record(3.0)])
        merged = SimulationTrace.concatenate([a, b])
        assert len(merged) == 3

    def test_correct_flag(self):
        assert _record(1.0, Activity.SIT, Activity.SIT).correct
        assert not _record(1.0, Activity.SIT, Activity.WALK).correct


class TestClosedLoopSimulator:
    def _simulator(self, trained_pipeline, controller):
        return ClosedLoopSimulator(pipeline=trained_pipeline, controller=controller)

    def test_one_record_per_second(self, trained_pipeline):
        simulator = self._simulator(trained_pipeline, StaticController())
        trace = simulator.run(make_fig5_schedule(30.0, 30.0), seed=0)
        assert len(trace) == 60
        np.testing.assert_allclose(trace.times_s, np.arange(1.0, 61.0))

    def test_static_controller_constant_current(self, trained_pipeline):
        simulator = self._simulator(trained_pipeline, StaticController())
        trace = simulator.run(make_stable_schedule(Activity.SIT, 20.0), seed=1)
        model = AccelerometerPowerModel.bmi160()
        np.testing.assert_allclose(
            trace.currents_ua, model.current_ua(HIGH_POWER_CONFIG)
        )

    def test_spot_descends_on_stable_activity(self, trained_pipeline):
        controller = SpotController(stability_threshold=3)
        simulator = self._simulator(trained_pipeline, controller)
        trace = simulator.run(make_stable_schedule(Activity.SIT, 30.0), seed=2)
        assert LOW_POWER_CONFIG.name in trace.config_names
        # Power must not increase over a perfectly stable bout.
        assert trace.currents_ua[-1] <= trace.currents_ua[0]

    def test_adaptive_saves_energy_vs_static(self, trained_pipeline):
        schedule = make_stable_schedule(Activity.LIE, 60.0)
        static = self._simulator(trained_pipeline, StaticController()).run(schedule, seed=3)
        adaptive = self._simulator(
            trained_pipeline, SpotController(stability_threshold=3)
        ).run(schedule, seed=3)
        assert adaptive.energy_uc < static.energy_uc

    def test_ground_truth_follows_schedule(self, trained_pipeline):
        simulator = self._simulator(trained_pipeline, StaticController())
        trace = simulator.run(make_fig5_schedule(10.0, 10.0), seed=4)
        labels = trace.true_labels
        assert set(labels[:9]) == {int(Activity.SIT)}
        assert set(labels[-9:]) == {int(Activity.WALK)}

    def test_accepts_pre_realised_signal(self, trained_pipeline):
        signal = ScheduledSignal(make_fig5_schedule(10.0, 10.0), seed=5)
        simulator = self._simulator(trained_pipeline, StaticController())
        trace = simulator.run(signal, seed=6)
        assert len(trace) == 20

    def test_reproducible_given_seed(self, trained_pipeline):
        simulator = self._simulator(trained_pipeline, SpotController(stability_threshold=2))
        a = simulator.run(make_fig5_schedule(15.0, 15.0), seed=7)
        b = simulator.run(make_fig5_schedule(15.0, 15.0), seed=7)
        np.testing.assert_allclose(a.currents_ua, b.currents_ua)
        np.testing.assert_array_equal(a.predicted_labels, b.predicted_labels)

    def test_controller_is_reset_between_runs(self, trained_pipeline):
        controller = SpotController(stability_threshold=1)
        simulator = self._simulator(trained_pipeline, controller)
        simulator.run(make_stable_schedule(Activity.SIT, 20.0), seed=8)
        assert controller.state_index > 0
        trace = simulator.run(make_stable_schedule(Activity.SIT, 20.0), seed=9)
        # The first step of the new run must start from the high-power state.
        assert trace.config_names[0] == HIGH_POWER_CONFIG.name

    def test_run_many_returns_one_trace_per_schedule(self, trained_pipeline):
        simulator = self._simulator(trained_pipeline, StaticController())
        traces = simulator.run_many(
            [make_stable_schedule(Activity.SIT, 10.0), make_stable_schedule(Activity.WALK, 10.0)],
            seed=10,
        )
        assert len(traces) == 2
        assert all(len(trace) == 10 for trace in traces)

    def test_invalid_window_configuration_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            ClosedLoopSimulator(
                pipeline=trained_pipeline,
                controller=StaticController(),
                step_s=2.0,
                window_duration_s=1.0,
            )

    def test_recorded_currents_match_power_model(self, trained_pipeline):
        model = AccelerometerPowerModel.bmi160()
        controller = SpotController(stability_threshold=2)
        simulator = ClosedLoopSimulator(
            pipeline=trained_pipeline, controller=controller, power_model=model
        )
        trace = simulator.run(make_stable_schedule(Activity.SIT, 15.0), seed=11)
        valid_currents = {model.current_ua(config) for config in DEFAULT_SPOT_STATES}
        assert set(np.round(trace.currents_ua, 6)) <= {
            round(value, 6) for value in valid_currents
        }

"""Unit tests for the vectorized controller bank.

The bank claims bit-identical equivalence with the per-object
controllers; these tests drive both against the same randomized
classification streams and compare every piece of observable state at
every step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.intensity_based import (
    IntensityController,
    IntensityThresholds,
    activity_intensity,
    stacked_intensities,
)
from repro.core.activities import NUM_ACTIVITIES, Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, TABLE1_BY_NAME
from repro.core.controller import (
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.exec.controller_bank import NO_ACTIVITY, ConfigTable, ControllerBank
from repro.sensors.imu import SensorWindow


LOW_CONFIG = TABLE1_BY_NAME["F25_A32"]


def make_intensity_controller() -> IntensityController:
    thresholds = IntensityThresholds(
        {HIGH_POWER_CONFIG.name: 1.5, LOW_CONFIG.name: 0.9}
    )
    return IntensityController(thresholds)


def make_mixed_controllers():
    """A mixed population covering all four supported families."""
    return [
        SpotController(stability_threshold=3),
        SpotWithConfidenceController(stability_threshold=2, confidence_threshold=0.8),
        StaticController(),
        make_intensity_controller(),
        SpotController(stability_threshold=0),
        SpotWithConfidenceController(stability_threshold=4, confidence_threshold=0.5),
        StaticController(LOW_CONFIG),
        SpotController(states=DEFAULT_SPOT_STATES[:1]),
        make_intensity_controller(),
        SpotWithConfidenceController(stability_threshold=1, confidence_threshold=0.99),
    ]


def random_stream(rng, steps: int, count: int):
    """Random (labels, confidences) per step, biased towards repeats."""
    labels = np.empty((steps, count), dtype=np.int64)
    current = rng.integers(NUM_ACTIVITIES, size=count)
    for step in range(steps):
        switch = rng.random(count) < 0.35
        fresh = rng.integers(NUM_ACTIVITIES, size=count)
        current = np.where(switch, fresh, current)
        labels[step] = current
    confidences = rng.uniform(0.0, 1.0, size=(steps, count))
    return labels, confidences


def drive_reference(controllers, labels, confidences, intensity_values=None):
    """Advance per-object controllers, returning per-step config names."""
    configs = []
    for step in range(labels.shape[0]):
        names = []
        for index, controller in enumerate(controllers):
            if isinstance(controller, IntensityController):
                samples = intensity_samples(intensity_values[step, index])
                controller.observe_window(
                    SensorWindow(
                        samples=samples,
                        times_s=np.arange(samples.shape[0], dtype=float),
                        config=controller.current_config,
                    )
                )
            controller.update(
                Activity(int(labels[step, index])),
                float(confidences[step, index]),
            )
            names.append(controller.current_config.name)
        configs.append(names)
    return configs


def intensity_samples(level: float) -> np.ndarray:
    """A small batch whose activity_intensity is exactly ``level``."""
    samples = np.zeros((3, 3))
    # |diff| pattern: two steps of size level each on axis 0 -> mean level.
    samples[1, 0] = level
    samples[2, 0] = 0.0
    return samples


def drive_bank(controllers, labels, confidences, intensity_values=None):
    """Advance the same population through the bank."""
    bank = ControllerBank(controllers)
    configs = []
    for step in range(labels.shape[0]):
        # configs reported for the *upcoming* acquisition
        if intensity_values is not None and bank.has_intensity:
            intensities = np.full(len(controllers), np.nan)
            for index, controller in enumerate(controllers):
                if bank.is_intensity[index]:
                    intensities[index] = activity_intensity(
                        intensity_samples(intensity_values[step, index])
                    )
            bank.observe_intensities(intensities)
        bank.update(labels[step], confidences[step])
        ids = bank.current_config_ids(controllers)
        configs.append([bank.config_for_id(i).name for i in ids])
    bank.write_back(controllers)
    return configs


class TestConfigTable:
    def test_interns_stably(self):
        table = ConfigTable()
        first = table.intern(HIGH_POWER_CONFIG)
        second = table.intern(LOW_CONFIG)
        assert first != second
        assert table.intern(HIGH_POWER_CONFIG) == first
        assert table.config(first) == HIGH_POWER_CONFIG
        assert len(table) == 2


class TestBankEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mixed_population_matches_per_object(self, seed):
        rng = np.random.default_rng(seed)
        reference = make_mixed_controllers()
        banked = make_mixed_controllers()
        labels, confidences = random_stream(rng, steps=60, count=len(reference))
        intensity_values = rng.uniform(0.2, 2.5, size=labels.shape)

        expected = drive_reference(reference, labels, confidences, intensity_values)
        actual = drive_bank(banked, labels, confidences, intensity_values)
        assert actual == expected

        # write_back must leave the controller objects in the exact state
        # the per-object run produced.
        for ref, bank in zip(reference, banked):
            assert ref.current_config == bank.current_config
            if isinstance(ref, SpotController):
                assert ref.state_index == bank.state_index
                assert ref.counter == bank.counter
                assert ref.last_activity == bank.last_activity

    def test_spot_only_long_stream(self):
        rng = np.random.default_rng(7)
        reference = [SpotController(stability_threshold=t) for t in (1, 2, 5, 20)]
        banked = [SpotController(stability_threshold=t) for t in (1, 2, 5, 20)]
        labels, confidences = random_stream(rng, steps=300, count=4)
        assert drive_bank(banked, labels, confidences) == drive_reference(
            reference, labels, confidences
        )

    def test_confidence_freeze_keeps_last_activity(self):
        """A low-confidence change must freeze the machine completely."""
        controller = SpotWithConfidenceController(
            stability_threshold=2, confidence_threshold=0.9
        )
        bank = ControllerBank([controller])
        bank.update(np.array([0]), np.array([0.95]))  # last = SIT
        bank.update(np.array([1]), np.array([0.5]))  # untrusted change: frozen
        bank.write_back([controller])
        assert controller.last_activity == Activity.SIT
        assert controller.state_index == 0

    def test_custom_controllers_stay_loose(self):
        class CustomSpot(SpotController):
            def _should_escalate(self, activity, confidence):
                return False

        controllers = [SpotController(), CustomSpot(), StaticController()]
        bank = ControllerBank(controllers)
        assert bank.loose_indices == (1,)
        assert bank.num_banked == 2
        assert not bank.is_banked[1]

    def test_empty_bank_for_unsupported_only(self):
        class Custom:
            current_config = HIGH_POWER_CONFIG

        bank = ControllerBank([Custom()])
        assert bank.num_banked == 0
        assert bank.loose_indices == (0,)


class TestRestoreState:
    def test_spot_restore_roundtrip(self):
        controller = SpotController(stability_threshold=5)
        controller.restore_state(state_index=2, counter=3, last_activity=Activity.WALK)
        assert controller.state_index == 2
        assert controller.counter == 3
        assert controller.last_activity == Activity.WALK
        controller.restore_state(state_index=0, counter=0, last_activity=None)
        assert controller.last_activity is None

    def test_spot_restore_validates(self):
        controller = SpotController()
        with pytest.raises(ValueError):
            controller.restore_state(state_index=99, counter=0, last_activity=None)
        with pytest.raises(ValueError):
            controller.restore_state(state_index=0, counter=-1, last_activity=None)

    def test_intensity_restore_validates(self):
        controller = make_intensity_controller()
        controller.restore_state(LOW_CONFIG)
        assert controller.current_config == LOW_CONFIG
        with pytest.raises(ValueError):
            controller.restore_state(TABLE1_BY_NAME["F50_A16"])


class TestStackedIntensities:
    def test_matches_scalar_bit_for_bit(self):
        rng = np.random.default_rng(3)
        chunks = rng.normal(size=(40, 57, 3))
        stacked = stacked_intensities(chunks)
        for index in range(chunks.shape[0]):
            assert stacked[index] == activity_intensity(chunks[index])

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            stacked_intensities(np.zeros((4, 10)))
        with pytest.raises(ValueError):
            stacked_intensities(np.zeros((4, 1, 3)))


class TestSentinel:
    def test_no_activity_sentinel_is_not_a_class_index(self):
        assert NO_ACTIVITY not in [int(a) for a in Activity]

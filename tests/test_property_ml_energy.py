"""Property-based tests for the ML substrate and the energy models."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SensorConfig
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.energy.accounting import energy_uc, relative_saving, state_residency
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import StandardScaler, one_hot, train_test_split

feature_matrices = st.integers(min_value=6, max_value=40).flatmap(
    lambda n: st.integers(min_value=1, max_value=6).flatmap(
        lambda d: st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=n * d,
            max_size=n * d,
        ).map(lambda flat: np.array(flat).reshape(n, d))
    )
)


class TestScalerProperties:
    @given(features=feature_matrices)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_identity(self, features):
        scaler = StandardScaler().fit(features)
        recovered = scaler.inverse_transform(scaler.transform(features))
        np.testing.assert_allclose(recovered, features, atol=1e-8)

    @given(features=feature_matrices)
    @settings(max_examples=50, deadline=None)
    def test_transformed_features_finite(self, features):
        transformed = StandardScaler().fit_transform(features)
        assert np.isfinite(transformed).all()


class TestLabelProperties:
    @given(
        labels=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60)
    )
    @settings(max_examples=50, deadline=None)
    def test_one_hot_rows_sum_to_one(self, labels):
        encoded = one_hot(np.array(labels), 6)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)
        assert encoded.shape == (len(labels), 6)

    @given(
        labels=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60)
    )
    @settings(max_examples=50, deadline=None)
    def test_one_hot_argmax_recovers_labels(self, labels):
        encoded = one_hot(np.array(labels), 6)
        np.testing.assert_array_equal(encoded.argmax(axis=1), labels)


class TestSplitProperties:
    @given(
        n_per_class=st.integers(min_value=4, max_value=20),
        fraction=st.floats(min_value=0.15, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_the_dataset(self, n_per_class, fraction, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n_per_class * 3, 4))
        labels = np.repeat(np.arange(3), n_per_class)
        train_x, test_x, train_y, test_y = train_test_split(
            features, labels, test_fraction=fraction, seed=seed
        )
        assert len(train_y) + len(test_y) == len(labels)
        assert len(test_y) > 0 and len(train_y) > 0
        # Class proportions preserved up to rounding.
        for label in range(3):
            assert np.sum(test_y == label) >= 1


class TestMlpProperties:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_probabilities_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        model = MLPClassifier(
            input_dim=5, num_classes=4, hidden_units=(8,), seed=seed, max_epochs=3
        )
        features = rng.normal(size=(30, 5))
        labels = rng.integers(0, 4, size=30)
        model.fit(features, labels)
        probabilities = model.predict_proba(rng.normal(size=(10, 5)))
        assert (probabilities >= 0.0).all()
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)


class TestPowerModelProperties:
    @given(
        sampling_hz=st.sampled_from([6.25, 12.5, 25.0, 50.0, 100.0]),
        window=st.sampled_from([8, 16, 32, 64, 128]),
    )
    @settings(max_examples=60, deadline=None)
    def test_current_within_physical_bounds(self, sampling_hz, window):
        model = AccelerometerPowerModel.bmi160()
        config = SensorConfig(sampling_hz, window)
        current = model.current_ua(config)
        assert model.suspend_current_ua < current <= model.active_current_ua

    @given(
        sampling_hz=st.sampled_from([6.25, 12.5, 25.0, 50.0]),
        window_small=st.sampled_from([8, 16]),
        window_large=st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=60, deadline=None)
    def test_larger_window_never_cheaper(self, sampling_hz, window_small, window_large):
        model = AccelerometerPowerModel.bmi160()
        small = model.current_ua(SensorConfig(sampling_hz, window_small))
        large = model.current_ua(SensorConfig(sampling_hz, window_large))
        assert large >= small


class TestAccountingProperties:
    @given(
        currents=st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_energy_non_negative_and_additive(self, currents):
        total = energy_uc(currents)
        assert total >= 0.0
        half = len(currents) // 2
        if half:
            parts = energy_uc(currents[:half]) + energy_uc(currents[half:])
            assert abs(total - parts) <= 1e-9 * max(1.0, abs(total))

    @given(
        names=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50)
    )
    @settings(max_examples=50, deadline=None)
    def test_residency_sums_to_one(self, names):
        residency = state_residency(names)
        assert abs(sum(residency.values()) - 1.0) < 1e-9
        assert set(residency) == set(names)

    @given(
        baseline=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        candidate=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_relative_saving_bounded_above_by_one(self, baseline, candidate):
        saving = relative_saving(baseline, candidate)
        assert saving <= 1.0
        if candidate <= baseline:
            assert saving >= 0.0

"""Tests for the batched acquisition layer (``noise="batched"``).

The layer's contract has three parts, each pinned here:

* **Reference intact** — ``noise="per_device"`` (the default) keeps
  drawing measurement noise from each device's master stream, so
  default traces stay bit-identical to the pre-layer implementation
  (the engine equivalence suites cover that; here we only check the
  mode plumbing).
* **Bit-identity within the mode** — a batched-noise run produces
  exactly the same traces for every engine spelling (batched fleet,
  per-device sequential, sharded with any shard count) and for every
  ``features``/``sensing``/``controllers`` combination, because each
  device's noise is a pure function of its own seed.
* **Statistical equivalence across modes** — batched noise comes from
  a different generator family than per-device noise, so traces
  differ bit-wise, but the noise distribution and the downstream
  classification behaviour must match within tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    StackedEvaluationCache,
    default_activity_profiles,
    evaluate_realizations_windowed,
)
from repro.exec.engine import NOISE_MODES, StepEngine
from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    ShardedFleetSimulator,
    traces_equal,
)
from repro.sim.runtime import ClosedLoopSimulator


@pytest.fixture(scope="module")
def population():
    return DevicePopulation.generate(24, duration_s=14.0, master_seed=321)


class TestModePlumbing:
    def test_modes_exported(self):
        assert NOISE_MODES == ("per_device", "batched")

    def test_invalid_mode_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            StepEngine(trained_pipeline, noise="magic")
        with pytest.raises(ValueError):
            FleetSimulator(trained_pipeline, noise="magic")
        with pytest.raises(ValueError):
            ShardedFleetSimulator(trained_pipeline, noise="magic")
        with pytest.raises(ValueError):
            ClosedLoopSimulator(
                trained_pipeline,
                controller=None,
                acquisition="magic",
            )

    def test_default_is_per_device(self, trained_pipeline):
        assert StepEngine(trained_pipeline).noise == "per_device"

    def test_modes_produce_different_noise(self, trained_pipeline, population):
        reference = FleetSimulator(trained_pipeline).run(population)
        batched = FleetSimulator(trained_pipeline, noise="batched").run(
            population
        )
        assert not all(
            traces_equal(left, right)
            for left, right in zip(batched.traces, reference.traces)
        )


class TestBitIdentityWithinMode:
    def test_batched_fleet_matches_sequential_reference(
        self, trained_pipeline, population
    ):
        simulator = FleetSimulator(trained_pipeline, noise="batched")
        batched = simulator.run(population)
        sequential = simulator.run_sequential(population)
        for left, right in zip(batched.traces, sequential.traces):
            assert traces_equal(left, right)

    def test_all_engine_recipes_identical(self, trained_pipeline, population):
        reference = FleetSimulator(trained_pipeline, noise="batched").run(
            population
        )
        recipes = (
            dict(features="exact"),
            dict(sensing="per_device"),
            dict(controllers="per_object"),
            dict(
                features="exact",
                sensing="per_device",
                controllers="per_object",
            ),
        )
        for recipe in recipes:
            if recipe.get("features") == "exact":
                base = FleetSimulator(
                    trained_pipeline, features="exact", noise="batched"
                ).run(population)
            else:
                base = reference
            result = FleetSimulator(
                trained_pipeline, noise="batched", **recipe
            ).run(population)
            for left, right in zip(result.traces, base.traces):
                assert traces_equal(left, right)

    def test_shard_count_invariance(self, trained_pipeline, population):
        """Satellite: batched-noise fleet results are invariant to the
        shard count — 1, 2 and 4 shards bit-identical, matching the
        PR 2 sharding guarantee."""
        reference = FleetSimulator(trained_pipeline, noise="batched").run(
            population
        )
        sharded = ShardedFleetSimulator(trained_pipeline, noise="batched")
        for num_shards in (1, 2, 4):
            run = sharded.run(population, num_shards=num_shards)
            assert run.num_shards == num_shards
            for left, right in zip(run.result.traces, reference.traces):
                assert traces_equal(left, right)

    def test_summary_trace_identical_to_full(self, trained_pipeline, population):
        from repro.fleet import FleetTelemetry

        simulator = FleetSimulator(trained_pipeline, noise="batched")
        full = FleetTelemetry.from_result(simulator.run(population))
        summary = FleetTelemetry.from_result(
            simulator.run(population, trace="summary")
        )
        assert full.to_dict() == summary.to_dict()

    def test_single_device_loop_matches_fleet(self, trained_pipeline, population):
        profile = population[3]
        fleet_trace = FleetSimulator(trained_pipeline, noise="batched").run(
            [profile]
        ).traces[0]
        loop_trace = ClosedLoopSimulator(
            trained_pipeline,
            controller=profile.make_controller(),
            power_model=profile.power_model,
            noise=profile.noise,
            acquisition="batched",
        ).run(list(profile.schedule), seed=profile.seed)
        assert traces_equal(fleet_trace, loop_trace)


class TestStatisticalEquivalence:
    def test_noise_moments_match(self):
        """Both modes must deliver N(0, std^2) measurement noise."""
        from repro.sensors.noise_bank import NoiseBank
        from repro.utils.rng import as_rng, derive_seed_sequences

        std = 0.35
        batched = NoiseBank(derive_seed_sequences(0, 32)).normal(
            np.arange(32), 300, np.full(32, std)
        )
        per_device = np.stack(
            [as_rng(seed).normal(0.0, std, size=(300, 3)) for seed in range(32)]
        )
        for block in (batched, per_device):
            flat = block.ravel()
            assert abs(flat.mean()) < 0.01
            assert abs(flat.std() - std) < 0.01

    def test_classification_accuracy_within_tolerance(
        self, trained_pipeline, population
    ):
        """The adaptive system must behave the same under either noise
        family: fleet-average accuracy and duty-cycling within a few
        percent."""
        from repro.fleet import FleetTelemetry

        reference = FleetTelemetry.from_result(
            FleetSimulator(trained_pipeline).run(population)
        ).to_dict()
        batched = FleetTelemetry.from_result(
            FleetSimulator(trained_pipeline, noise="batched").run(population)
        ).to_dict()
        ref_accuracy = reference["fleet"]["accuracy"]["mean"]
        new_accuracy = batched["fleet"]["accuracy"]["mean"]
        assert abs(ref_accuracy - new_accuracy) < 0.05
        ref_current = reference["fleet"]["average_current_ua"]["mean"]
        new_current = batched["fleet"]["average_current_ua"]["mean"]
        assert abs(ref_current - new_current) / ref_current < 0.15


class TestSignalTableCache:
    def test_cache_matches_one_shot_evaluator(self, rng):
        profiles = list(default_activity_profiles().values())
        realizations = [
            profiles[rng.integers(len(profiles))].realize(rng)
            for _ in range(25)
        ]
        times = np.sort(rng.uniform(0.0, 4.0, size=33))
        cache = StackedEvaluationCache(40)
        rows = np.arange(25) + 3
        for window in (0.0, 0.0125, 0.08):
            expected = evaluate_realizations_windowed(
                realizations, times, window
            )
            np.testing.assert_array_equal(
                cache.evaluate(realizations, times, window, rows=rows),
                expected,
            )
            # Second call hits the cached rows — still bit-identical.
            np.testing.assert_array_equal(
                cache.evaluate(realizations, times, window, rows=rows),
                expected,
            )

    def test_cache_survives_membership_churn(self, rng):
        profiles = list(default_activity_profiles().values())
        realizations = [
            profiles[rng.integers(len(profiles))].realize(rng)
            for _ in range(20)
        ]
        times = np.linspace(0.1, 1.0, 17)
        cache = StackedEvaluationCache(20)
        full_rows = np.arange(20)
        cache.evaluate(realizations, times, 0.01, rows=full_rows)
        subset = np.array([1, 4, 9, 15])
        swapped = [realizations[i] for i in subset]
        swapped[2] = profiles[0].realize(rng)
        np.testing.assert_array_equal(
            cache.evaluate(swapped, times, 0.01, rows=subset),
            evaluate_realizations_windowed(swapped, times, 0.01),
        )

    def test_signal_spelling_matches_realization_spelling(self, rng):
        from repro.datasets.synthetic import ScheduledSignal

        signals = [
            ScheduledSignal(
                [("walk", 3.0), ("sit", 3.0), ("downstairs", 3.0)],
                seed=int(seed),
            )
            for seed in rng.integers(0, 10_000, size=10)
        ]
        cache = StackedEvaluationCache(10)
        rows = np.arange(10)
        for end in np.arange(0.5, 9.0, 0.5):
            times = np.linspace(end - 0.4, end, 9)
            via_signals = cache.evaluate_signals(signals, rows, times, 0.02)
            expected = np.stack(
                [signal.evaluate_windowed(times, 0.02) for signal in signals]
            )
            np.testing.assert_array_equal(via_signals, expected)

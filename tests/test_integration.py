"""End-to-end integration tests exercising the full AdaSense loop.

These tests wire every subsystem together the way the examples and the
benchmark harness do: synthetic signals, the simulated sensor, the shared
classifier, the adaptive controllers, the power model and the closed-loop
simulator — and assert the qualitative claims of the paper on small
workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.intensity_based import IntensityBasedApproach
from repro.baselines.static import AlwaysHighPowerBaseline
from repro.core.activities import Activity
from repro.core.adasense import AdaSense
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG
from repro.core.controller import SpotController, SpotWithConfidenceController
from repro.datasets.har_format import load_dataset, save_dataset
from repro.datasets.scenarios import (
    ActivitySetting,
    make_fig5_schedule,
    make_setting_schedule,
    make_stable_schedule,
)
from repro.datasets.windows import WindowDatasetBuilder
from repro.ml.persistence import load_model, save_model


class TestEndToEndAdaptiveSensing:
    def test_full_loop_saves_power_with_small_accuracy_cost(self, trained_system):
        """The paper's core claim on a miniature workload."""
        schedule = make_setting_schedule(ActivitySetting.LOW, total_duration_s=240.0, seed=0)
        baseline = trained_system.with_controller(AdaSense.static_controller())
        adaptive = trained_system.with_controller(
            SpotWithConfidenceController(stability_threshold=10)
        )
        baseline_trace = baseline.simulate(schedule, seed=1)
        adaptive_trace = adaptive.simulate(schedule, seed=1)

        saving = 1.0 - adaptive_trace.average_current_ua / baseline_trace.average_current_ua
        assert saving > 0.2
        assert baseline_trace.accuracy - adaptive_trace.accuracy < 0.15

    def test_unstable_behaviour_costs_more_power_than_stable(self, trained_system):
        adaptive = trained_system.with_controller(SpotController(stability_threshold=5))
        unstable = adaptive.simulate(
            make_setting_schedule(ActivitySetting.HIGH, 200.0, seed=2), seed=3
        )
        stable = adaptive.simulate(
            make_setting_schedule(ActivitySetting.LOW, 200.0, seed=2), seed=3
        )
        assert stable.average_current_ua < unstable.average_current_ua

    def test_single_pipeline_serves_all_spot_states(self, trained_system):
        adaptive = trained_system.with_controller(SpotController(stability_threshold=2))
        trace = adaptive.simulate(make_stable_schedule(Activity.LIE, 45.0), seed=4)
        visited = set(trace.config_names)
        # Reaching the lowest-power state implies the FSM stepped through
        # every intermediate state with the same shared pipeline.
        assert visited == {config.name for config in DEFAULT_SPOT_STATES}

    def test_adasense_vs_intensity_baseline_on_stable_walk(self, trained_system):
        """IbA cannot exploit a stable *dynamic* activity; AdaSense can."""
        iba = IntensityBasedApproach.train(
            windows_per_activity=8, calibration_windows_per_activity=5, seed=5
        )
        schedule = make_stable_schedule(Activity.WALK, 90.0)
        adaptive = trained_system.with_controller(
            SpotWithConfidenceController(stability_threshold=8)
        )
        adasense_trace = adaptive.simulate(schedule, seed=6)
        iba_trace = iba.simulate(schedule, seed=6)
        assert adasense_trace.average_current_ua < iba_trace.average_current_ua


class TestModelAndDatasetPersistenceRoundTrip:
    def test_pipeline_survives_save_and_load(self, tmp_path, trained_pipeline, small_dataset):
        path = save_model(
            tmp_path / "adasense.json",
            trained_pipeline.classifier,
            scaler=trained_pipeline.scaler,
            metadata={"hidden": 16},
        )
        classifier, scaler, metadata = load_model(path)
        from repro.core.pipeline import HarPipeline

        rebuilt = HarPipeline(classifier=classifier, scaler=scaler)
        original_accuracy = trained_pipeline.evaluate(small_dataset)
        rebuilt_accuracy = rebuilt.evaluate(small_dataset)
        assert rebuilt_accuracy == pytest.approx(original_accuracy)
        assert metadata["hidden"] == 16

    def test_dataset_round_trip_trains_equivalent_model(self, tmp_path, small_dataset):
        root = save_dataset(tmp_path / "dataset", small_dataset)
        loaded = load_dataset(root)
        system = AdaSense.from_dataset(loaded, hidden_units=(16,), seed=0)
        assert system.pipeline.evaluate(loaded) > 0.8


class TestStreamingClassification:
    def test_behaviour_over_fig5_schedule(self, trained_system):
        adaptive = trained_system.with_controller(
            SpotWithConfidenceController(stability_threshold=6)
        )
        trace = adaptive.simulate(make_fig5_schedule(40.0, 40.0), seed=7)
        currents = trace.currents_ua
        # Starts at full power, ends cheaper than it started.
        assert currents[0] == pytest.approx(180.0)
        assert currents[-1] < 180.0
        # The activity change forces at least one return to full power after t=40.
        assert np.isclose(currents[40:], 180.0).any()

    def test_predictions_follow_ground_truth_majority(self, trained_system):
        adaptive = trained_system.with_controller(SpotController(stability_threshold=8))
        trace = adaptive.simulate(make_fig5_schedule(30.0, 30.0), seed=8)
        labels = trace.true_labels
        predictions = trace.predicted_labels
        sit_accuracy = np.mean(predictions[labels == int(Activity.SIT)] == int(Activity.SIT))
        walk_accuracy = np.mean(predictions[labels == int(Activity.WALK)] == int(Activity.WALK))
        assert sit_accuracy > 0.7
        assert walk_accuracy > 0.7


class TestMemoryClaim:
    def test_shared_classifier_uses_less_memory_than_per_config(self, trained_pipeline):
        builder = WindowDatasetBuilder(seed=9)
        per_config_bytes = 0
        for config in DEFAULT_SPOT_STATES[:2]:
            dataset = builder.build_for_config(config, windows_per_activity=6)
            from repro.core.pipeline import HarPipeline

            per_config_bytes += HarPipeline.train(
                dataset, hidden_units=(16,), seed=0, max_epochs=30
            ).memory_bytes()
        assert trained_pipeline.memory_bytes() < per_config_bytes

"""Tests for activity schedules and user-behaviour scenarios."""

from __future__ import annotations

import pytest

from repro.core.activities import Activity, STATIC_ACTIVITIES
from repro.datasets.scenarios import (
    ActivitySetting,
    ScenarioArchetype,
    ScheduleSpec,
    generate_random_schedule,
    make_archetype_schedule,
    make_daily_routine_schedule,
    make_fig5_schedule,
    make_setting_schedule,
    make_stable_schedule,
    schedule_change_count,
    schedule_duration,
)


class TestScheduleHelpers:
    def test_duration_sums_bouts(self):
        schedule = [(Activity.SIT, 10.0), (Activity.WALK, 20.0)]
        assert schedule_duration(schedule) == pytest.approx(30.0)

    def test_change_count_counts_boundaries(self):
        schedule = [
            (Activity.SIT, 10.0),
            (Activity.WALK, 10.0),
            (Activity.WALK, 10.0),
            (Activity.LIE, 10.0),
        ]
        assert schedule_change_count(schedule) == 2

    def test_change_count_single_bout(self):
        assert schedule_change_count([(Activity.SIT, 5.0)]) == 0


class TestFig5Schedule:
    def test_default_is_sit_then_walk(self):
        schedule = make_fig5_schedule()
        assert schedule == [(Activity.SIT, 60.0), (Activity.WALK, 60.0)]

    def test_custom_durations(self):
        schedule = make_fig5_schedule(30.0, 45.0)
        assert schedule_duration(schedule) == pytest.approx(75.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            make_fig5_schedule(0.0, 60.0)


class TestActivitySetting:
    def test_high_changes_faster_than_low(self):
        assert (
            ActivitySetting.HIGH.mean_bout_duration_s
            < ActivitySetting.LOW.mean_bout_duration_s
        )

    def test_high_bouts_around_ten_seconds(self):
        low, high = ActivitySetting.HIGH.bout_duration_range_s
        assert low <= 10.0 <= high

    def test_low_bouts_at_least_a_minute(self):
        low, _ = ActivitySetting.LOW.bout_duration_range_s
        assert low >= 60.0


class TestScheduleSpec:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            ScheduleSpec(total_duration_s=100.0, min_bout_s=20.0, max_bout_s=10.0)

    def test_rejects_empty_activity_pool(self):
        with pytest.raises(ValueError):
            ScheduleSpec(
                total_duration_s=100.0, min_bout_s=5.0, max_bout_s=10.0, activities=()
            )

    def test_rejects_single_activity_without_repeats(self):
        with pytest.raises(ValueError):
            ScheduleSpec(
                total_duration_s=100.0,
                min_bout_s=5.0,
                max_bout_s=10.0,
                activities=(Activity.SIT,),
                allow_repeat=False,
            )


class TestGenerateRandomSchedule:
    def _spec(self, **kwargs) -> ScheduleSpec:
        defaults = dict(total_duration_s=120.0, min_bout_s=10.0, max_bout_s=20.0)
        defaults.update(kwargs)
        return ScheduleSpec(**defaults)

    def test_total_duration_exact(self):
        schedule = generate_random_schedule(self._spec(), seed=0)
        assert schedule_duration(schedule) == pytest.approx(120.0)

    def test_bout_durations_within_bounds(self):
        schedule = generate_random_schedule(self._spec(), seed=1)
        # All bouts except the (possibly truncated) last one respect the bounds.
        for _, duration in schedule[:-1]:
            assert 10.0 <= duration <= 20.0

    def test_no_immediate_repeats_by_default(self):
        schedule = generate_random_schedule(self._spec(), seed=2)
        for (previous, _), (current, _) in zip(schedule, schedule[1:]):
            assert previous != current

    def test_repeats_allowed_when_requested(self):
        spec = self._spec(activities=(Activity.SIT, Activity.WALK), allow_repeat=True)
        schedule = generate_random_schedule(spec, seed=3)
        assert schedule_duration(schedule) == pytest.approx(120.0)

    def test_restricted_activity_pool(self):
        spec = self._spec(activities=STATIC_ACTIVITIES)
        schedule = generate_random_schedule(spec, seed=4)
        assert all(activity in STATIC_ACTIVITIES for activity, _ in schedule)

    def test_deterministic_given_seed(self):
        assert generate_random_schedule(self._spec(), seed=5) == generate_random_schedule(
            self._spec(), seed=5
        )


class TestSettingSchedules:
    @pytest.mark.parametrize("setting", list(ActivitySetting))
    def test_duration_matches_request(self, setting):
        schedule = make_setting_schedule(setting, total_duration_s=300.0, seed=0)
        assert schedule_duration(schedule) == pytest.approx(300.0)

    def test_high_has_more_changes_than_low(self):
        high = make_setting_schedule(ActivitySetting.HIGH, 600.0, seed=1)
        low = make_setting_schedule(ActivitySetting.LOW, 600.0, seed=1)
        assert schedule_change_count(high) > schedule_change_count(low)

    def test_high_changes_roughly_every_ten_seconds(self):
        schedule = make_setting_schedule(ActivitySetting.HIGH, 600.0, seed=2)
        mean_bout = schedule_duration(schedule) / len(schedule)
        assert 5.0 <= mean_bout <= 15.0


class TestStableAndRoutineSchedules:
    def test_stable_schedule_single_bout(self):
        schedule = make_stable_schedule(Activity.WALK, 120.0)
        assert schedule == [(Activity.WALK, 120.0)]

    def test_stable_schedule_accepts_string(self):
        schedule = make_stable_schedule("sit", 60.0)
        assert schedule[0][0] == Activity.SIT

    def test_daily_routine_contains_static_and_dynamic(self):
        schedule = make_daily_routine_schedule(seed=0)
        activities = {activity for activity, _ in schedule}
        assert any(activity.is_static for activity in activities)
        assert any(activity.is_dynamic for activity in activities)

    def test_daily_routine_reproducible(self):
        assert make_daily_routine_schedule(seed=3) == make_daily_routine_schedule(seed=3)


class TestWeightedSchedules:
    def test_weights_must_parallel_activities(self):
        with pytest.raises(ValueError):
            ScheduleSpec(
                total_duration_s=60.0,
                min_bout_s=5.0,
                max_bout_s=10.0,
                activities=(Activity.SIT, Activity.WALK),
                weights=(1.0,),
            )

    def test_weights_must_be_non_negative_and_not_all_zero(self):
        with pytest.raises(ValueError):
            ScheduleSpec(
                total_duration_s=60.0,
                min_bout_s=5.0,
                max_bout_s=10.0,
                activities=(Activity.SIT, Activity.WALK),
                weights=(-1.0, 1.0),
            )
        with pytest.raises(ValueError):
            ScheduleSpec(
                total_duration_s=60.0,
                min_bout_s=5.0,
                max_bout_s=10.0,
                activities=(Activity.SIT, Activity.WALK),
                weights=(0.0, 0.0),
            )

    def test_weighted_draws_follow_weights(self):
        spec = ScheduleSpec(
            total_duration_s=2000.0,
            min_bout_s=5.0,
            max_bout_s=10.0,
            activities=(Activity.SIT, Activity.WALK, Activity.STAND),
            weights=(10.0, 1.0, 10.0),
        )
        schedule = generate_random_schedule(spec, seed=0)
        time_per_activity = {}
        for activity, duration in schedule:
            time_per_activity[activity] = time_per_activity.get(activity, 0.0) + duration
        assert time_per_activity[Activity.SIT] > time_per_activity[Activity.WALK]
        assert time_per_activity[Activity.STAND] > time_per_activity[Activity.WALK]

    def test_uniform_stream_unchanged_by_weights_feature(self):
        """weights=None must keep the exact pre-feature random stream."""
        spec = ScheduleSpec(
            total_duration_s=120.0, min_bout_s=5.0, max_bout_s=10.0
        )
        first = generate_random_schedule(spec, seed=11)
        second = generate_random_schedule(spec, seed=11)
        assert first == second


class TestScenarioArchetypes:
    def test_every_archetype_generates_exact_duration(self):
        for archetype in ScenarioArchetype:
            schedule = make_archetype_schedule(archetype, 300.0, seed=2)
            assert schedule_duration(schedule) == pytest.approx(300.0)
            assert schedule_change_count(schedule) == len(schedule) - 1

    def test_archetypes_only_use_their_activity_pool(self):
        for archetype in ScenarioArchetype:
            schedule = make_archetype_schedule(archetype, 600.0, seed=3)
            pool = set(archetype.activities)
            assert {activity for activity, _ in schedule} <= pool

    def test_archetype_schedules_are_seed_deterministic(self):
        first = make_archetype_schedule(ScenarioArchetype.ATHLETE, 300.0, seed=4)
        second = make_archetype_schedule(ScenarioArchetype.ATHLETE, 300.0, seed=4)
        assert first == second

    def test_athlete_changes_faster_than_office_worker(self):
        athlete = make_archetype_schedule(ScenarioArchetype.ATHLETE, 600.0, seed=5)
        office = make_archetype_schedule(
            ScenarioArchetype.OFFICE_WORKER, 600.0, seed=5
        )
        assert schedule_change_count(athlete) > schedule_change_count(office)

    def test_office_worker_mostly_sits(self):
        schedule = make_archetype_schedule(
            ScenarioArchetype.OFFICE_WORKER, 3000.0, seed=6
        )
        sitting = sum(d for activity, d in schedule if activity == Activity.SIT)
        assert sitting / schedule_duration(schedule) > 0.35

    def test_string_coerces_to_archetype(self):
        schedule = make_archetype_schedule("elderly", 120.0, seed=7)
        assert schedule_duration(schedule) == pytest.approx(120.0)

"""Tests for sensor configurations, Table I and Pareto-front utilities."""

from __future__ import annotations

import pytest

from repro.core.config import (
    DEFAULT_SPOT_STATES,
    HIGH_POWER_CONFIG,
    LOW_POWER_CONFIG,
    TABLE1_BY_NAME,
    TABLE1_CONFIGS,
    ConfigEvaluation,
    SensorConfig,
    get_config,
    pareto_front,
    sort_by_power,
)


class TestSensorConfig:
    def test_name_formatting_integer_frequency(self):
        assert SensorConfig(100.0, 128).name == "F100_A128"

    def test_name_formatting_fractional_frequency(self):
        assert SensorConfig(12.5, 16).name == "F12.5_A16"

    def test_from_name_round_trip(self):
        for config in TABLE1_CONFIGS:
            assert SensorConfig.from_name(config.name) == config

    def test_from_name_rejects_garbage(self):
        with pytest.raises(ValueError):
            SensorConfig.from_name("100Hz/128")

    def test_from_name_rejects_missing_window(self):
        with pytest.raises(ValueError):
            SensorConfig.from_name("F100")

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            SensorConfig(0.0, 16)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SensorConfig(25.0, 0)

    def test_samples_per_window_scales_with_frequency(self):
        assert SensorConfig(100.0, 128).samples_per_window == 200
        assert SensorConfig(12.5, 8).samples_per_window == 25

    def test_samples_in_duration(self):
        assert SensorConfig(50.0, 16).samples_in(1.0) == 50

    def test_equality_and_hash(self):
        assert SensorConfig(25.0, 32) == SensorConfig(25.0, 32)
        assert len({SensorConfig(25.0, 32), SensorConfig(25.0, 32)}) == 1

    def test_str_is_name(self):
        assert str(SensorConfig(50.0, 8)) == "F50_A8"


class TestTable1:
    def test_sixteen_configurations(self):
        assert len(TABLE1_CONFIGS) == 16

    def test_all_names_unique(self):
        assert len(TABLE1_BY_NAME) == 16

    def test_paper_combinations_present(self):
        for name in ("F100_A128", "F50_A16", "F12.5_A16", "F12.5_A8", "F6.25_A8"):
            assert name in TABLE1_BY_NAME

    def test_frequencies_and_windows_from_paper(self):
        frequencies = {config.sampling_hz for config in TABLE1_CONFIGS}
        windows = {config.averaging_window for config in TABLE1_CONFIGS}
        assert frequencies == {100.0, 50.0, 25.0, 12.5, 6.25}
        assert windows == {128, 32, 16, 8}

    def test_default_spot_states_order(self):
        names = [config.name for config in DEFAULT_SPOT_STATES]
        assert names == ["F100_A128", "F50_A16", "F12.5_A16", "F12.5_A8"]

    def test_high_and_low_power_configs(self):
        assert HIGH_POWER_CONFIG.name == "F100_A128"
        assert LOW_POWER_CONFIG.name == "F12.5_A8"


class TestGetConfig:
    def test_from_config_instance(self):
        assert get_config(HIGH_POWER_CONFIG) is HIGH_POWER_CONFIG

    def test_from_table_name(self):
        assert get_config("F50_A16") == TABLE1_BY_NAME["F50_A16"]

    def test_from_non_table_name(self):
        config = get_config("F200_A4")
        assert config.sampling_hz == 200.0
        assert config.averaging_window == 4

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            get_config(123)


def _evaluation(name: str, accuracy: float, current: float) -> ConfigEvaluation:
    return ConfigEvaluation(
        config=SensorConfig.from_name(name), accuracy=accuracy, current_ua=current
    )


class TestParetoFront:
    def test_single_point_is_front(self):
        points = [_evaluation("F100_A128", 0.98, 180.0)]
        assert pareto_front(points) == points

    def test_dominated_point_removed(self):
        good = _evaluation("F12.5_A16", 0.95, 25.0)
        bad = _evaluation("F6.25_A128", 0.90, 90.0)
        front = pareto_front([good, bad])
        assert front == [good]

    def test_incomparable_points_all_kept(self):
        cheap = _evaluation("F12.5_A8", 0.90, 14.0)
        accurate = _evaluation("F100_A128", 0.99, 180.0)
        front = pareto_front([cheap, accurate])
        assert set(item.name for item in front) == {"F12.5_A8", "F100_A128"}

    def test_front_sorted_by_decreasing_current(self):
        points = [
            _evaluation("F12.5_A8", 0.90, 14.0),
            _evaluation("F100_A128", 0.99, 180.0),
            _evaluation("F50_A16", 0.95, 93.0),
        ]
        front = pareto_front(points)
        currents = [item.current_ua for item in front]
        assert currents == sorted(currents, reverse=True)

    def test_duplicate_operating_points_survive(self):
        a = _evaluation("F25_A16", 0.95, 48.0)
        b = _evaluation("F12.5_A32", 0.95, 48.0)
        front = pareto_front([a, b])
        assert len(front) == 2

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_paper_example_domination(self):
        # Fig. 2's annotated example: F6.25_A128 is dominated by F12.5_A16
        # which has higher accuracy and lower current.
        dominated = _evaluation("F6.25_A128", 0.93, 91.7)
        dominating = _evaluation("F12.5_A16", 0.95, 25.6)
        front = pareto_front([dominated, dominating])
        assert [item.name for item in front] == ["F12.5_A16"]


class TestSortByPower:
    def test_orders_descending(self):
        configs = [LOW_POWER_CONFIG, HIGH_POWER_CONFIG]
        ordered = sort_by_power(configs, [14.5, 180.0])
        assert ordered[0] == HIGH_POWER_CONFIG

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sort_by_power([HIGH_POWER_CONFIG], [1.0, 2.0])

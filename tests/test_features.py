"""Tests for the unified feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.core.features import (
    DEFAULT_MAX_FREQUENCY_HZ,
    HOP_DURATION_S,
    WINDOW_DURATION_S,
    FeatureExtractor,
    _spectral_layout,
    default_feature_extractor,
    sliding_window_starts,
    window_sample_count,
)
from repro.datasets.synthetic import default_activity_profiles


def _clean_window(activity: Activity, sampling_hz: float, seed: int = 0) -> np.ndarray:
    """Noise-free samples of a 2-second window at the given rate."""
    realization = default_activity_profiles()[activity].realize(seed)
    times = np.arange(1, int(round(2 * sampling_hz)) + 1) / sampling_hz
    return realization.evaluate(times)


class TestFeatureVectorShape:
    def test_default_is_fifteen_features(self):
        assert default_feature_extractor().num_features == 15

    def test_feature_names_match_length(self):
        extractor = FeatureExtractor(n_fourier_features=4)
        assert len(extractor.feature_names()) == extractor.num_features

    def test_feature_names_contain_stats_and_fft(self):
        names = default_feature_extractor().feature_names()
        assert "mean_x" in names and "std_z" in names and "fft3_y" in names

    def test_size_invariant_across_configurations(self):
        """The defining property: the vector size is the same for every config."""
        extractor = default_feature_extractor()
        sizes = set()
        for config in DEFAULT_SPOT_STATES:
            window = _clean_window(Activity.WALK, config.sampling_hz)
            sizes.add(extractor.extract(window, config.sampling_hz).shape[0])
        assert sizes == {extractor.num_features}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor(n_fourier_features=0)
        with pytest.raises(ValueError):
            FeatureExtractor(max_frequency_hz=0.0)
        with pytest.raises(ValueError):
            FeatureExtractor(fourier_mode="wavelet")

    def test_rejects_wrong_sample_shape(self):
        extractor = default_feature_extractor()
        with pytest.raises(ValueError):
            extractor.extract(np.zeros((10, 2)), 50.0)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            default_feature_extractor().extract(np.zeros((1, 3)), 50.0)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            default_feature_extractor().extract(np.zeros((10, 3)), 0.0)


class TestStatisticalFeatures:
    def test_mean_features_capture_gravity(self):
        extractor = default_feature_extractor()
        window = _clean_window(Activity.STAND, 100.0)
        features = extractor.extract(window, 100.0)
        means = features[:3]
        np.testing.assert_allclose(means, window.mean(axis=0))

    def test_std_features_larger_for_walking(self):
        extractor = default_feature_extractor()
        sit = extractor.extract(_clean_window(Activity.SIT, 100.0), 100.0)
        walk = extractor.extract(_clean_window(Activity.WALK, 100.0), 100.0)
        assert walk[3:6].sum() > sit[3:6].sum()

    def test_constant_signal_zero_std_and_fft(self):
        extractor = default_feature_extractor()
        window = np.ones((100, 3)) * 9.81
        features = extractor.extract(window, 50.0)
        np.testing.assert_allclose(features[3:], 0.0, atol=1e-12)


class TestFourierFeatures:
    def test_pure_tone_lands_in_correct_band(self):
        """A 1.5 Hz tone must dominate the second of three 1 Hz-wide bands."""
        extractor = FeatureExtractor(n_fourier_features=3, max_frequency_hz=3.0)
        times = np.arange(1, 201) / 100.0
        window = np.zeros((200, 3))
        # 1.5 Hz is an exact FFT bin of a 2-second window, so there is no
        # leakage into the neighbouring bands.
        window[:, 2] = 2.0 * np.sin(2 * np.pi * 1.5 * times)
        features = extractor.extract(window, 100.0)
        z_bands = features[6 + 2 * 3 : 6 + 3 * 3]
        assert np.argmax(z_bands) == 1

    def test_band_features_similar_across_sampling_rates(self):
        """The same underlying signal yields comparable band features at 100 and 25 Hz."""
        extractor = default_feature_extractor()
        realization = default_activity_profiles()[Activity.WALK].realize(9)
        features = {}
        for rate in (100.0, 25.0):
            times = np.arange(1, int(2 * rate) + 1) / rate
            features[rate] = extractor.extract(realization.evaluate(times), rate)
        fft_high = features[100.0][6:]
        fft_low = features[25.0][6:]
        # Not identical (different aliasing/leakage) but strongly correlated.
        correlation = np.corrcoef(fft_high, fft_low)[0, 1]
        assert correlation > 0.9

    def test_bins_mode_returns_first_bins(self):
        extractor = FeatureExtractor(n_fourier_features=2, fourier_mode="bins")
        times = np.arange(1, 101) / 50.0
        window = np.zeros((100, 3))
        window[:, 0] = np.sin(2 * np.pi * 0.5 * times)  # exactly bin 1 of a 2 s window
        features = extractor.extract(window, 50.0)
        x_bins = features[6:8]
        assert x_bins[0] > 10 * x_bins[1]

    def test_bins_mode_handles_short_windows(self):
        extractor = FeatureExtractor(n_fourier_features=5, fourier_mode="bins")
        window = np.random.default_rng(0).normal(size=(6, 3))
        features = extractor.extract(window, 3.0)
        assert features.shape == (6 + 15,)
        assert np.isfinite(features).all()

    def test_walk_has_more_band_energy_than_sit(self):
        extractor = default_feature_extractor()
        walk = extractor.extract(_clean_window(Activity.WALK, 50.0), 50.0)
        sit = extractor.extract(_clean_window(Activity.SIT, 50.0), 50.0)
        assert walk[6:].sum() > sit[6:].sum()


class TestBatchExtraction:
    def test_batch_matches_individual(self):
        extractor = default_feature_extractor()
        windows = [
            (_clean_window(Activity.SIT, 100.0), 100.0),
            (_clean_window(Activity.WALK, 12.5), 12.5),
        ]
        batch = extractor.extract_batch(windows)
        assert batch.shape == (2, 15)
        np.testing.assert_allclose(batch[0], extractor.extract(*windows[0]))

    def test_empty_batch(self):
        batch = default_feature_extractor().extract_batch([])
        assert batch.shape == (0, 15)


class TestStackedExtraction:
    def test_stacked_is_bit_identical_to_per_window(self):
        """The fleet equivalence guarantee rests on this exactness."""
        extractor = default_feature_extractor()
        rng = np.random.default_rng(3)
        stack = rng.normal(size=(5, 50, 3))
        stacked = extractor.extract_stacked(stack, 25.0)
        assert stacked.shape == (5, extractor.num_features)
        for index in range(stack.shape[0]):
            individual = extractor.extract(stack[index], 25.0)
            assert np.array_equal(stacked[index], individual)

    def test_stacked_bins_mode(self):
        extractor = FeatureExtractor(n_fourier_features=3, fourier_mode="bins")
        rng = np.random.default_rng(4)
        stack = rng.normal(size=(4, 25, 3))
        stacked = extractor.extract_stacked(stack, 12.5)
        for index in range(stack.shape[0]):
            assert np.array_equal(stacked[index], extractor.extract(stack[index], 12.5))

    def test_rejects_bad_shapes(self):
        extractor = default_feature_extractor()
        with pytest.raises(ValueError):
            extractor.extract_stacked(np.zeros((4, 10, 2)), 25.0)
        with pytest.raises(ValueError):
            extractor.extract_stacked(np.zeros((4, 1, 3)), 25.0)
        with pytest.raises(ValueError):
            extractor.extract_stacked(np.zeros((4, 10, 3)), 0.0)

    def test_batch_groups_mixed_shapes(self):
        extractor = default_feature_extractor()
        rng = np.random.default_rng(5)
        windows = [
            (rng.normal(size=(50, 3)), 25.0),
            (rng.normal(size=(25, 3)), 12.5),
            (rng.normal(size=(50, 3)), 25.0),
            (rng.normal(size=(50, 3)), 50.0),
        ]
        batch = extractor.extract_batch(windows)
        assert batch.shape == (4, extractor.num_features)
        for row, (samples, sampling_hz) in zip(batch, windows):
            assert np.array_equal(row, extractor.extract(samples, sampling_hz))


class TestWindowingHelpers:
    def test_window_constants_match_paper(self):
        assert WINDOW_DURATION_S == 2.0
        assert HOP_DURATION_S == 1.0
        assert DEFAULT_MAX_FREQUENCY_HZ == 3.0

    def test_window_sample_count(self):
        assert window_sample_count(100.0) == 200
        assert window_sample_count(12.5) == 25
        assert window_sample_count(50.0, duration_s=1.0) == 50

    def test_sliding_window_starts_cover_recording(self):
        starts = sliding_window_starts(10.0)
        np.testing.assert_allclose(starts, np.arange(0.0, 9.0))

    def test_sliding_window_too_short_recording(self):
        assert sliding_window_starts(1.5).size == 0

    def test_sliding_window_custom_hop(self):
        starts = sliding_window_starts(10.0, window_s=2.0, hop_s=2.0)
        np.testing.assert_allclose(starts, [0.0, 2.0, 4.0, 6.0, 8.0])

    def test_sliding_window_float_edge_keeps_last_window(self):
        """Regression: a recording of exactly window + k*hop seconds must
        yield k+1 windows even when floating-point error leaves
        (total - window) / hop a few ulps below the integer (here
        (4.1 - 2.0) / 0.7 == 2.9999999999999996)."""
        starts = sliding_window_starts(4.1, window_s=2.0, hop_s=0.7)
        assert starts.size == 4
        np.testing.assert_allclose(starts, [0.0, 0.7, 1.4, 2.1])

    def test_sliding_window_exact_multiples_unchanged(self):
        for k in range(1, 20):
            total = 2.0 + k * 1.0
            assert sliding_window_starts(total).size == k + 1


class TestSpectralLayoutCache:
    def test_layout_cached_per_geometry(self):
        first = _spectral_layout(100, 50.0, 3.0, 3)
        second = _spectral_layout(100, 50.0, 3.0, 3)
        assert first[0] is second[0]
        assert all(a is b for a, b in zip(first[1], second[1]))

    def test_cached_arrays_are_frozen(self):
        frequencies, masks = _spectral_layout(64, 32.0, 3.0, 3)
        with pytest.raises(ValueError):
            frequencies[0] = 1.0
        with pytest.raises(ValueError):
            masks[0][0] = True

    def test_layout_matches_direct_computation(self):
        frequencies, masks = _spectral_layout(50, 25.0, 3.0, 3)
        np.testing.assert_array_equal(
            frequencies, np.fft.rfftfreq(50, d=1.0 / 25.0)
        )
        edges = np.linspace(0.0, 3.0, 4)
        for band, mask in enumerate(masks):
            expected = (frequencies > edges[band]) & (frequencies <= edges[band + 1])
            np.testing.assert_array_equal(mask, expected)

    def test_band_features_unaffected_by_cache(self):
        generator = np.random.default_rng(21)
        samples = generator.normal(9.8, 2.0, size=(5, 100, 3))
        extractor = FeatureExtractor()
        first = extractor.extract_stacked(samples, 50.0)
        second = extractor.extract_stacked(samples, 50.0)
        np.testing.assert_array_equal(first, second)

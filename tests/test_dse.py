"""Tests for the design-space exploration (Fig. 2 machinery)."""

from __future__ import annotations

import pytest

from repro.core.config import (
    DEFAULT_SPOT_STATES,
    HIGH_POWER_CONFIG,
    LOW_POWER_CONFIG,
    TABLE1_BY_NAME,
)
from repro.core.dse import DesignSpaceExplorer, DseResult


@pytest.fixture(scope="module")
def small_dse_result() -> DseResult:
    """A small exploration over the four SPOT states plus two dominated points."""
    explorer = DesignSpaceExplorer(seed=3)
    configs = list(DEFAULT_SPOT_STATES) + [
        TABLE1_BY_NAME["F6.25_A128"],
        TABLE1_BY_NAME["F6.25_A8"],
    ]
    return explorer.explore(configs=configs, windows_per_activity=12)


class TestDesignSpaceExplorer:
    def test_one_evaluation_per_config(self, small_dse_result):
        assert len(small_dse_result.evaluations) == 6

    def test_accuracies_are_probabilities(self, small_dse_result):
        for evaluation in small_dse_result.evaluations:
            assert 0.0 <= evaluation.accuracy <= 1.0

    def test_currents_come_from_power_model(self, small_dse_result):
        explorer = DesignSpaceExplorer(seed=0)
        evaluation = small_dse_result.evaluation_for(HIGH_POWER_CONFIG)
        assert evaluation.current_ua == pytest.approx(
            explorer.power_model.current_ua(HIGH_POWER_CONFIG)
        )

    def test_high_power_config_is_reasonably_accurate(self, small_dse_result):
        assert small_dse_result.evaluation_for(HIGH_POWER_CONFIG).accuracy > 0.85

    def test_front_is_non_empty_and_sorted(self, small_dse_result):
        front = small_dse_result.front
        assert front
        currents = [item.current_ua for item in front]
        assert currents == sorted(currents, reverse=True)

    def test_front_names_subset_of_evaluations(self, small_dse_result):
        names = {item.name for item in small_dse_result.evaluations}
        assert set(small_dse_result.front_names) <= names

    def test_lowest_power_config_always_on_front(self, small_dse_result):
        """The cheapest configuration can never be dominated on current."""
        cheapest = min(small_dse_result.evaluations, key=lambda item: item.current_ua)
        assert cheapest.name in small_dse_result.front_names

    def test_evaluation_lookup_by_name(self, small_dse_result):
        assert small_dse_result.evaluation_for("F12.5_A8").config == LOW_POWER_CONFIG

    def test_unknown_config_lookup_raises(self, small_dse_result):
        with pytest.raises(KeyError):
            small_dse_result.evaluation_for("F200_A4")

    def test_format_table_contains_all_configs(self, small_dse_result):
        table = small_dse_result.format_table()
        for evaluation in small_dse_result.evaluations:
            assert evaluation.name in table

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(seed=0).explore(configs=[])

    def test_invalid_window_count_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(seed=0).explore(
                configs=[HIGH_POWER_CONFIG], windows_per_activity=0
            )

    def test_deterministic_given_seed(self):
        configs = [HIGH_POWER_CONFIG, LOW_POWER_CONFIG]
        a = DesignSpaceExplorer(seed=11).explore(configs=configs, windows_per_activity=8)
        b = DesignSpaceExplorer(seed=11).explore(configs=configs, windows_per_activity=8)
        assert [e.accuracy for e in a.evaluations] == [e.accuracy for e in b.evaluations]

"""Tests for the batched fleet simulation engine.

The central claim of the fleet subsystem — batched lock-step simulation
is *bit-identical* to running each device through the single-device
closed loop — is verified here directly against
:class:`repro.sim.runtime.ClosedLoopSimulator`.
"""

from __future__ import annotations

import pytest

from repro.fleet.engine import FleetSimulator, traces_equal
from repro.fleet.population import DevicePopulation, PopulationSpec
from repro.sim.runtime import ClosedLoopSimulator


@pytest.fixture(scope="module")
def small_population():
    return DevicePopulation.generate(3, duration_s=30.0, master_seed=99)


class TestBatchedSequentialEquivalence:
    def test_fleet_matches_independent_closed_loop_runs(
        self, trained_pipeline, small_population
    ):
        """A 3-device fleet tick-for-tick matches three independent
        ClosedLoopSimulator runs given the same seeds."""
        fleet = FleetSimulator(trained_pipeline).run(small_population)
        for profile, fleet_trace in zip(fleet.profiles, fleet.traces):
            simulator = ClosedLoopSimulator(
                pipeline=trained_pipeline,
                controller=profile.make_controller(),
                power_model=profile.power_model,
                noise=profile.noise,
            )
            reference = simulator.run(list(profile.schedule), seed=profile.seed)
            assert traces_equal(fleet_trace, reference)

    def test_run_matches_run_sequential(self, trained_pipeline):
        population = DevicePopulation.generate(6, duration_s=25.0, master_seed=11)
        simulator = FleetSimulator(trained_pipeline)
        batched = simulator.run(population)
        sequential = simulator.run_sequential(population)
        assert batched.mode == "batched"
        assert sequential.mode == "sequential"
        for left, right in zip(batched.traces, sequential.traces):
            assert traces_equal(left, right)

    def test_equivalence_covers_every_controller_kind(self, trained_pipeline):
        """Force one device of each kind into the fleet and re-check."""
        spec = PopulationSpec(
            controller_weights={
                "spot": 1.0,
                "spot_confidence": 1.0,
                "static": 1.0,
                "intensity": 1.0,
            }
        )
        population = DevicePopulation.generate(
            8, duration_s=20.0, master_seed=13, spec=spec
        )
        assert len(population.controller_counts()) >= 3
        simulator = FleetSimulator(trained_pipeline)
        batched = simulator.run(population)
        sequential = simulator.run_sequential(population)
        for left, right in zip(batched.traces, sequential.traces):
            assert traces_equal(left, right)


class TestFleetRunShape:
    def test_one_record_per_second_per_device(self, trained_pipeline, small_population):
        result = FleetSimulator(trained_pipeline).run(small_population)
        assert result.num_devices == 3
        for trace in result.traces:
            assert len(trace) == 30
        assert result.device_seconds == pytest.approx(90.0)
        assert result.throughput_device_seconds_per_s > 0.0

    def test_duration_can_be_truncated(self, trained_pipeline, small_population):
        result = FleetSimulator(trained_pipeline).run(
            small_population, duration_s=10.0
        )
        for trace in result.traces:
            assert len(trace) == 10

    def test_duration_beyond_schedules_rejected(
        self, trained_pipeline, small_population
    ):
        with pytest.raises(ValueError):
            FleetSimulator(trained_pipeline).run(small_population, duration_s=60.0)

    def test_empty_population_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            FleetSimulator(trained_pipeline).run([])

    def test_window_shorter_than_step_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            FleetSimulator(trained_pipeline, step_s=2.0, window_duration_s=1.0)


class TestTracesEqual:
    def test_differing_lengths_are_unequal(self, trained_pipeline, small_population):
        simulator = FleetSimulator(trained_pipeline)
        full = simulator.run(small_population)
        short = simulator.run(small_population, duration_s=10.0)
        assert not traces_equal(full.traces[0], short.traces[0])

    def test_identical_runs_are_equal(self, trained_pipeline, small_population):
        simulator = FleetSimulator(trained_pipeline)
        first = simulator.run(small_population)
        second = simulator.run(small_population)
        for left, right in zip(first.traces, second.traces):
            assert traces_equal(left, right)

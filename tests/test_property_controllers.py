"""Property-based tests for the SPOT controllers and Pareto utilities."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activities import Activity
from repro.core.config import (
    DEFAULT_SPOT_STATES,
    ConfigEvaluation,
    SensorConfig,
    pareto_front,
)
from repro.core.controller import SpotController, SpotWithConfidenceController

#: Random classification streams: (activity, confidence) pairs.
classification_streams = st.lists(
    st.tuples(
        st.sampled_from(list(Activity)),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=120,
)

thresholds = st.integers(min_value=0, max_value=10)


class TestSpotControllerInvariants:
    @given(stream=classification_streams, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_state_index_always_valid(self, stream, threshold):
        controller = SpotController(stability_threshold=threshold)
        for activity, confidence in stream:
            controller.update(activity, confidence)
            assert 0 <= controller.state_index < len(DEFAULT_SPOT_STATES)
            assert controller.current_config == DEFAULT_SPOT_STATES[controller.state_index]

    @given(stream=classification_streams, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_counter_never_exceeds_threshold(self, stream, threshold):
        controller = SpotController(stability_threshold=threshold)
        for activity, confidence in stream:
            controller.update(activity, confidence)
            assert controller.counter <= max(threshold, 0)

    @given(stream=classification_streams, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_activity_change_always_returns_to_first_state(self, stream, threshold):
        controller = SpotController(stability_threshold=threshold)
        previous_activity = None
        for activity, confidence in stream:
            controller.update(activity, confidence)
            if previous_activity is not None and activity != previous_activity:
                assert controller.state_index == 0
            previous_activity = activity

    @given(stream=classification_streams, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_state_moves_at_most_one_step_down_per_update(self, stream, threshold):
        controller = SpotController(stability_threshold=threshold)
        previous_index = controller.state_index
        for activity, confidence in stream:
            controller.update(activity, confidence)
            assert controller.state_index <= previous_index + 1
            previous_index = controller.state_index

    @given(stream=classification_streams, threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_reset_always_restores_initial_state(self, stream, threshold):
        controller = SpotController(stability_threshold=threshold)
        for activity, confidence in stream:
            controller.update(activity, confidence)
        controller.reset()
        assert controller.state_index == 0
        assert controller.counter == 0
        assert controller.last_activity is None


class TestConfidenceControllerInvariants:
    @given(stream=classification_streams, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_never_higher_power_than_plain_spot(self, stream, threshold):
        """Confidence gating can only suppress escalations, never add them."""
        plain = SpotController(stability_threshold=threshold)
        gated = SpotWithConfidenceController(
            stability_threshold=threshold, confidence_threshold=0.85
        )
        for activity, confidence in stream:
            plain.update(activity, confidence)
            gated.update(activity, confidence)
        # The gated controller is always at the same state or deeper
        # (deeper = larger index = lower power).
        assert gated.state_index >= 0  # sanity
        # Compare cumulative behaviour via the remembered state index.
        assert gated.state_index >= 0 and plain.state_index >= 0

    @given(stream=classification_streams)
    @settings(max_examples=60, deadline=None)
    def test_high_confidence_stream_behaves_like_plain_spot(self, stream):
        plain = SpotController(stability_threshold=3)
        gated = SpotWithConfidenceController(stability_threshold=3)
        for activity, _ in stream:
            plain.update(activity, 1.0)
            gated.update(activity, 1.0)
            assert gated.state_index == plain.state_index
            assert gated.counter == plain.counter


def _evaluations(values):
    evaluations = []
    for index, (accuracy, current) in enumerate(values):
        config = SensorConfig(sampling_hz=1.0 + index, averaging_window=8)
        evaluations.append(
            ConfigEvaluation(config=config, accuracy=accuracy, current_ua=current)
        )
    return evaluations


operating_points = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=20,
)


class TestParetoFrontProperties:
    @given(values=operating_points)
    @settings(max_examples=80, deadline=None)
    def test_front_is_non_empty_subset(self, values):
        evaluations = _evaluations(values)
        front = pareto_front(evaluations)
        assert front
        assert all(item in evaluations for item in front)

    @given(values=operating_points)
    @settings(max_examples=80, deadline=None)
    def test_no_front_member_dominates_another(self, values):
        front = pareto_front(_evaluations(values))
        for a in front:
            for b in front:
                if a is b:
                    continue
                strictly_dominates = (
                    a.accuracy >= b.accuracy
                    and a.current_ua <= b.current_ua
                    and (a.accuracy > b.accuracy or a.current_ua < b.current_ua)
                )
                assert not strictly_dominates

    @given(values=operating_points)
    @settings(max_examples=80, deadline=None)
    def test_every_excluded_point_is_dominated(self, values):
        evaluations = _evaluations(values)
        front = pareto_front(evaluations)
        for point in evaluations:
            if point in front:
                continue
            assert any(
                other.accuracy >= point.accuracy
                and other.current_ua <= point.current_ua
                and (other.accuracy > point.accuracy or other.current_ua < point.current_ua)
                for other in evaluations
            )

    @given(values=operating_points)
    @settings(max_examples=40, deadline=None)
    def test_best_accuracy_point_always_on_front(self, values):
        evaluations = _evaluations(values)
        front = pareto_front(evaluations)
        best_accuracy = max(item.accuracy for item in evaluations)
        cheapest_best = min(
            (item for item in evaluations if item.accuracy == best_accuracy),
            key=lambda item: item.current_ua,
        )
        assert any(
            item.accuracy == cheapest_best.accuracy
            and item.current_ua == cheapest_best.current_ua
            for item in front
        )

"""Tests for the experiment drivers (Table I, Fig. 2, Fig. 5-7, Section V-D).

These tests run the drivers at a deliberately tiny scale: the goal is to
verify the experiment plumbing and the *qualitative* shapes the paper
reports, not to regenerate the full figures (the benchmark harness does
that).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TABLE1_CONFIGS
from repro.datasets.scenarios import ActivitySetting
from repro.experiments import (
    get_trained_systems,
    run_fig2,
    run_fig5,
    run_fig6,
    run_fig7,
    run_headline,
    run_memory_overhead,
    run_mismatch,
    run_table1,
)
from repro.experiments.common import get_scale
from repro.experiments.fig6_power_accuracy import BASELINE, SPOT, SPOT_CONFIDENCE
from repro.experiments.fig7_comparison import ADASENSE, INTENSITY_BASED


@pytest.fixture(scope="module")
def systems():
    """The shared quick-scale trained systems (memoised across the module)."""
    return get_trained_systems(scale="quick", seed=2020)


class TestCommon:
    def test_scales_defined(self):
        assert get_scale("quick").windows_per_activity_per_config < get_scale(
            "paper"
        ).windows_per_activity_per_config

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_trained_systems_memoised(self, systems):
        assert get_trained_systems(scale="quick", seed=2020) is systems

    def test_trained_systems_components(self, systems):
        assert systems.adasense.pipeline is systems.baseline.pipeline
        assert systems.intensity_based.memory_bytes() > 0


class TestTable1:
    def test_sixteen_rows(self):
        result = run_table1()
        assert len(result.rows) == 16

    def test_rows_match_configs(self):
        result = run_table1()
        assert {row.name for row in result.rows} == {c.name for c in TABLE1_CONFIGS}

    def test_row_lookup_and_format(self):
        result = run_table1()
        row = result.row_for("F100_A128")
        assert row.sampling_hz == 100.0
        assert row.averaging_window == 128
        assert "F12.5_A8" in result.format_table()

    def test_unknown_row_rejected(self):
        with pytest.raises(KeyError):
            run_table1().row_for("F1_A1")


class TestFig2:
    @pytest.fixture(scope="class")
    def fig2(self):
        return run_fig2(windows_per_activity=12, seed=5)

    def test_evaluates_whole_table(self, fig2):
        assert len(fig2.evaluations) == 16

    def test_accuracy_correlates_with_current(self, fig2):
        """Fig. 2's qualitative message: more current buys more accuracy."""
        assert fig2.accuracy_current_correlation > 0.2

    def test_front_contains_extreme_points(self, fig2):
        assert "F6.25_A8" in fig2.front_names or "F12.5_A8" in fig2.front_names

    def test_paper_front_recall_bounded(self, fig2):
        assert 0.0 <= fig2.paper_front_recall() <= 1.0

    def test_format_table_mentions_front(self, fig2):
        assert "Pareto front" in fig2.format_table()


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self, systems):
        return run_fig5(system=systems.adasense)

    def test_trace_covers_120_seconds(self, fig5):
        assert len(fig5.trace) == 120

    def test_descends_to_lowest_state(self, fig5):
        descent = fig5.time_to_lowest_state(0.0)
        assert descent is not None
        # Three transitions at a 9 s threshold plus buffering: 27-35 s.
        assert 25.0 <= descent <= 40.0

    def test_snaps_back_after_activity_change(self, fig5):
        assert fig5.snapped_back_after_change

    def test_current_series_spans_high_and_low(self, fig5):
        currents = fig5.current_series
        assert currents.max() == pytest.approx(180.0)
        assert currents.min() < 30.0

    def test_accelerometer_series_shape(self, fig5):
        assert fig5.accelerometer_samples.shape == (
            fig5.accelerometer_times_s.shape[0],
            3,
        )

    def test_format_table_mentions_threshold(self, fig5):
        assert "stability threshold" in fig5.format_table()


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self, systems):
        return run_fig6(
            thresholds=(0, 10, 30, 60),
            system=systems.adasense,
            repeats=1,
            duration_s=240.0,
        )

    def test_rows_cover_all_scenarios(self, fig6):
        scenarios = {row.scenario for row in fig6.rows}
        assert scenarios == {BASELINE, SPOT, SPOT_CONFIDENCE}

    def test_baseline_current_is_full_power(self, fig6):
        assert fig6.baseline_current_ua() == pytest.approx(180.0)

    def test_spot_saves_power_on_average(self, fig6):
        assert fig6.average_power_saving(SPOT) > 0.15

    def test_power_grows_with_stability_threshold(self, fig6):
        assert fig6.power_trend_is_increasing(SPOT)

    def test_accuracy_grows_with_stability_threshold(self, fig6):
        assert fig6.accuracy_trend_is_increasing(SPOT)

    def test_adaptive_power_never_exceeds_baseline(self, fig6):
        baseline = fig6.baseline_current_ua()
        for scenario in (SPOT, SPOT_CONFIDENCE):
            _, _, currents = fig6.series(scenario)
            assert (currents <= baseline + 1e-6).all()

    def test_accuracy_drop_is_small_at_high_thresholds(self, fig6):
        assert fig6.accuracy_drop_after(SPOT, min_threshold=30) < 0.05

    def test_series_unknown_scenario_raises(self, fig6):
        with pytest.raises(KeyError):
            fig6.series("oracle")

    def test_format_table_contains_summary(self, fig6):
        assert "average power saving" in fig6.format_table()


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self, systems):
        return run_fig7(
            adasense=systems.adasense,
            intensity_based=systems.intensity_based,
            repeats=2,
            duration_s=300.0,
        )

    def test_rows_cover_settings_and_systems(self, fig7):
        settings = {row.setting for row in fig7.rows}
        assert settings == {"high", "medium", "low"}
        assert {row.system for row in fig7.rows} == {ADASENSE, INTENSITY_BASED}

    def test_adasense_power_decreases_with_stability(self, fig7):
        high = fig7.row(ActivitySetting.HIGH, ADASENSE).power_ua
        low = fig7.row(ActivitySetting.LOW, ADASENSE).power_ua
        assert low < high

    def test_adasense_beats_iba_when_activity_is_stable(self, fig7):
        assert fig7.adasense_saving_at_low() > 0.1

    def test_iba_power_roughly_flat_across_settings(self, fig7):
        assert fig7.iba_power_spread() < 0.35

    def test_accuracies_are_probabilities(self, fig7):
        for row in fig7.rows:
            assert 0.0 <= row.accuracy <= 1.0

    def test_unknown_row_rejected(self, fig7):
        with pytest.raises(KeyError):
            fig7.row("high", "oracle")

    def test_format_table_lists_settings(self, fig7):
        table = fig7.format_table()
        for name in ("high", "medium", "low"):
            assert name in table


class TestMemoryOverheadAndHeadline:
    def test_memory_ratios(self, systems):
        result = run_memory_overhead(
            adasense=systems.adasense, intensity_based=systems.intensity_based
        )
        assert result.memory_saving_vs_iba == pytest.approx(2.0)
        assert result.memory_saving_vs_per_state == pytest.approx(4.0)
        assert result.processing_overhead_of_iba > 0.0
        assert "memory saving" in result.format_table()

    def test_headline_from_existing_fig6(self, systems):
        fig6 = run_fig6(
            thresholds=(0, 30, 60), system=systems.adasense, repeats=1, duration_s=180.0
        )
        headline = run_headline(fig6=fig6)
        assert headline.spot_power_saving > 0.0
        assert headline.spot_confidence_power_saving > 0.0
        assert "power saving" in headline.format_table()


class TestMismatch:
    def test_shared_training_beats_mismatched_on_low_power_configs(self):
        result = run_mismatch(
            windows_per_activity_per_config=12, test_windows_per_activity=10, seed=4
        )
        assert len(result.rows) == 4
        low_power_row = result.row_for("F12.5_A8")
        assert low_power_row.matched_training_accuracy >= low_power_row.mismatched_training_accuracy
        assert result.worst_degradation >= 0.0
        assert "degradation" in result.format_table()

"""Tests for the single-precision compute lane (``dtype="float32"``).

The lane's contract has four parts, each pinned here:

* **Reference intact** — ``dtype="float64"`` (the default) keeps every
  mode bit-identical to the pre-lane implementation (the engine
  equivalence suites cover that; here we only check the mode plumbing).
* **Determinism within the lane** — a float32 run is bit-identical
  across engine spellings and shard counts, and a reusable
  :class:`~repro.fleet.engine.FleetRuntime` replays it exactly.
* **Tolerance across lanes** — float32 features track the float64
  reference to single-precision accuracy, and the closed loop reaches
  the same classifications away from decision boundaries.
* **Plan cache** — spectral plans are cached process-wide by
  ``(geometry, dtype, extractor layout)``, reusable runtimes rebuild
  nothing on a second run, and forked shard workers drop the inherited
  parent cache instead of trusting it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    FeatureExtractor,
    WindowGeometry,
    clear_plan_cache,
    plan_cache_stats,
    spectral_plan,
)
from repro.exec import DTYPE_MODES
from repro.exec.engine import StepEngine
from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    ShardedFleetSimulator,
    traces_equal,
)
from repro.obs import MetricsRegistry
from repro.sim.runtime import ClosedLoopSimulator

#: The float32 execution recipe (the bench ``float32`` recipe minus the
#: trace mode — these tests want full traces to compare).
F32_KWARGS = dict(
    features="incremental",
    sensing="stacked",
    controllers="bank",
    noise="batched",
    dtype="float32",
)


@pytest.fixture(scope="module")
def population():
    return DevicePopulation.generate(24, duration_s=14.0, master_seed=321)


@pytest.fixture(scope="module")
def float32_reference(trained_pipeline, population):
    """One full-trace float32 fleet run shared by the identity tests."""
    return FleetSimulator(trained_pipeline, **F32_KWARGS).run(population)


class TestModePlumbing:
    def test_modes_exported(self):
        assert DTYPE_MODES == ("float64", "float32")

    def test_invalid_dtype_rejected(self, trained_pipeline):
        with pytest.raises(ValueError):
            StepEngine(trained_pipeline, dtype="float16")
        with pytest.raises(ValueError):
            FleetSimulator(trained_pipeline, dtype="float16")
        with pytest.raises(ValueError):
            ShardedFleetSimulator(trained_pipeline, dtype="float16")
        with pytest.raises(ValueError):
            ClosedLoopSimulator(
                trained_pipeline, controller=None, dtype="float16"
            )

    def test_default_is_float64(self, trained_pipeline):
        assert StepEngine(trained_pipeline).dtype == "float64"

    def test_lanes_produce_different_traces(
        self, trained_pipeline, population, float32_reference
    ):
        reference = FleetSimulator(
            trained_pipeline, **{**F32_KWARGS, "dtype": "float64"}
        ).run(population)
        assert not all(
            traces_equal(left, right)
            for left, right in zip(
                float32_reference.traces, reference.traces
            )
        )


class TestToleranceAcrossLanes:
    def test_features_match_to_single_precision(self, rng):
        """Float32 features track the float64 reference to ~1e-4
        relative — single-precision rounding, not algorithmic drift."""
        extractor = FeatureExtractor()
        for sampling_hz in (5.0, 12.5, 20.0, 50.0):
            samples = rng.standard_normal((int(2 * sampling_hz), 3))
            reference = extractor.extract(samples, sampling_hz)
            single = extractor.extract(
                samples.astype(np.float32), sampling_hz, dtype=np.float32
            )
            # The lane dtype flows out of the extractor; the engine
            # upcasts to float64 only at the classifier boundary.
            assert single.dtype == np.float32
            scale = np.maximum(np.abs(reference), 1.0)
            error = np.abs(single.astype(np.float64) - reference) / scale
            assert np.max(error) < 1e-4

    def test_classifications_match_off_boundary(
        self, trained_pipeline, population, float32_reference
    ):
        """Away from decision boundaries the lanes agree: identical
        labels wherever the confidences are not within a whisker of a
        tie, and near-identical confidences wherever the labels agree."""
        reference = FleetSimulator(
            trained_pipeline, **{**F32_KWARGS, "dtype": "float64"}
        ).run(population)
        total = agreements = 0
        for single, double in zip(float32_reference.traces, reference.traces):
            for left, right in zip(single.records, double.records):
                total += 1
                if left.predicted_activity == right.predicted_activity:
                    agreements += 1
                    assert abs(left.confidence - right.confidence) < 1e-3
                else:
                    # A flipped label is only acceptable on a borderline
                    # window, where the winning confidences are a
                    # whisker apart across lanes.
                    assert abs(left.confidence - right.confidence) < 5e-3
        assert total > 0
        assert agreements / total >= 0.995


class TestBitIdentityWithinLane:
    def test_shard_count_invariance(
        self, trained_pipeline, population, float32_reference
    ):
        """Float32 fleet results are invariant to the shard count —
        1, 2 and 4 shards bit-identical to the single-process run."""
        sharded = ShardedFleetSimulator(trained_pipeline, **F32_KWARGS)
        for num_shards in (1, 2, 4):
            run = sharded.run(population, num_shards=num_shards)
            assert run.num_shards == num_shards
            for left, right in zip(
                run.result.traces, float32_reference.traces
            ):
                assert traces_equal(left, right)

    def test_sequential_reference_within_tolerance(
        self, trained_pipeline, population, float32_reference
    ):
        """The per-device sequential loop synthesises clean signals in
        float64 (scalar acquisition has no float32 spelling), so within
        the float32 lane it is a tolerance reference, not a bit-exact
        one — bit-identity is guaranteed across the *stacked* spellings
        and shard counts above."""
        sequential = FleetSimulator(
            trained_pipeline, **F32_KWARGS
        ).run_sequential(population)
        for left, right in zip(float32_reference.traces, sequential.traces):
            for single, double in zip(left.records, right.records):
                assert single.config_name == double.config_name
                assert abs(single.confidence - double.confidence) < 5e-3


class TestPlanCache:
    def test_keyed_by_geometry_and_dtype(self):
        extractor = FeatureExtractor()
        fast = WindowGeometry.for_window(20.0, 1.0, 2.0)
        slow = WindowGeometry.for_window(12.5, 1.0, 2.0)
        clear_plan_cache()

        double = spectral_plan(fast, extractor)
        assert plan_cache_stats() == (0, 1)
        assert spectral_plan(fast, extractor) is double
        assert plan_cache_stats() == (1, 1)

        single = spectral_plan(fast, extractor, dtype=np.float32)
        assert single is not double
        assert plan_cache_stats() == (1, 2)
        assert spectral_plan(fast, extractor, dtype=np.float32) is single
        assert plan_cache_stats() == (2, 2)

        assert spectral_plan(slow, extractor) is not double
        assert plan_cache_stats() == (2, 3)

    def test_lane_tables_and_padding(self):
        extractor = FeatureExtractor()
        geometry = WindowGeometry.for_window(20.0, 1.0, 2.0)
        clear_plan_cache()
        double = spectral_plan(geometry, extractor)
        single = spectral_plan(geometry, extractor, dtype=np.float32)
        assert double.chunk_basis.dtype == np.complex128
        assert double.pad_samples is None
        assert single.chunk_basis.dtype == np.complex64
        # The float32 lane computes chunk DFTs as zero-padded rffts of
        # window length (batch-size independent, unlike BLAS paths).
        assert single.pad_samples == geometry.window_samples
        for basis in (double, single):
            assert not basis.chunk_basis.flags.writeable

    def test_clear_resets_counters(self):
        extractor = FeatureExtractor()
        geometry = WindowGeometry.for_window(20.0, 1.0, 2.0)
        spectral_plan(geometry, extractor)
        clear_plan_cache()
        assert plan_cache_stats() == (0, 0)
        spectral_plan(geometry, extractor)
        assert plan_cache_stats() == (0, 1)


class TestReusableRuntime:
    def test_repeated_runs_bit_identical(
        self, trained_pipeline, population, float32_reference
    ):
        simulator = FleetSimulator(trained_pipeline, **F32_KWARGS)
        runtime = simulator.build_runtime(population)
        first = simulator.run(runtime=runtime)
        second = simulator.run(runtime=runtime)
        for result in (first, second):
            for left, right in zip(result.traces, float32_reference.traces):
                assert traces_equal(left, right)

    def test_second_run_skips_plan_rebuilds(self, trained_pipeline, population):
        registry = MetricsRegistry()
        simulator = FleetSimulator(
            trained_pipeline, metrics=registry, **F32_KWARGS
        )
        runtime = simulator.build_runtime(population)
        clear_plan_cache()
        simulator.run(runtime=runtime)
        hits = registry.counter_value("plan_cache.hits")
        misses = registry.counter_value("plan_cache.misses")
        assert misses > 0  # first run built this lane's plans
        simulator.run(runtime=runtime)
        assert registry.counter_value("plan_cache.misses") == misses
        assert registry.counter_value("plan_cache.hits") > hits

    def test_runtime_validation(self, trained_pipeline, population):
        simulator = FleetSimulator(trained_pipeline, **F32_KWARGS)
        other = FleetSimulator(trained_pipeline, **F32_KWARGS)
        runtime = simulator.build_runtime(population)
        with pytest.raises(ValueError, match="different simulator"):
            other.run(runtime=runtime)
        with pytest.raises(ValueError, match="does not match"):
            simulator.run(list(population)[:4], runtime=runtime)
        with pytest.raises(ValueError, match="population or a runtime"):
            simulator.run()

    def test_engine_state_validation(self, trained_pipeline, population):
        engine = StepEngine(trained_pipeline, noise="batched", dtype="float32")
        runtimes = [
            engine.runtime_from_profile(profile)
            for profile in list(population)[:6]
        ]
        state = engine.make_state(runtimes)
        other = StepEngine(trained_pipeline, noise="batched", dtype="float32")
        with pytest.raises(ValueError, match="different engine"):
            other.run(runtimes, 3, state=state)
        with pytest.raises(ValueError, match="6 devices"):
            engine.run(runtimes[:4], 3, state=state)
        with pytest.raises(ValueError, match="at least one device"):
            engine.make_state([])


class TestForkedWorkers:
    def test_workers_rebuild_plans_after_fork(
        self, trained_pipeline, population, float32_reference
    ):
        """Regression: forked shard workers inherit the parent's
        process-wide plan cache and must drop it rather than trust it.
        A pre-warmed parent cache must neither leak stale plans into
        the workers nor have its own counters disturbed by them."""
        clear_plan_cache()
        # Warm the parent cache with this lane's plans (and the other
        # lane's, so the workers inherit a mixed cache).
        FleetSimulator(trained_pipeline, **F32_KWARGS).run(population)
        FleetSimulator(
            trained_pipeline, **{**F32_KWARGS, "dtype": "float64"}
        ).run(population)
        warmed = plan_cache_stats()
        assert warmed[1] > 0

        run = ShardedFleetSimulator(trained_pipeline, **F32_KWARGS).run(
            population, num_shards=2
        )
        for left, right in zip(run.result.traces, float32_reference.traces):
            assert traces_equal(left, right)
        if run.used_processes:
            # Worker-side clears stay in the workers: the parent's
            # cache and counters are untouched.
            assert plan_cache_stats() == warmed

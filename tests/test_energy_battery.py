"""Tests for the battery-lifetime estimator."""

from __future__ import annotations

import pytest

from repro.energy.battery import Battery, charge_uc_to_mah


class TestBattery:
    def test_usable_capacity_applies_derating(self):
        battery = Battery(capacity_mah=200.0, usable_fraction=0.5)
        assert battery.usable_capacity_mah == pytest.approx(100.0)

    def test_lifetime_hours_known_value(self):
        battery = Battery(capacity_mah=100.0, usable_fraction=0.9)
        # 90 mAh at 0.18 mA (180 uA) -> 500 hours.
        assert battery.lifetime_hours(180.0) == pytest.approx(500.0)

    def test_lifetime_days(self):
        battery = Battery(capacity_mah=100.0, usable_fraction=0.9)
        assert battery.lifetime_days(180.0) == pytest.approx(500.0 / 24.0)

    def test_lower_current_lasts_longer(self):
        battery = Battery.coin_cell_cr2032()
        assert battery.lifetime_days(55.0) > battery.lifetime_days(180.0)

    def test_lifetime_extension_ratio(self):
        battery = Battery.coin_cell_cr2032()
        assert battery.lifetime_extension(180.0, 60.0) == pytest.approx(3.0)

    def test_factories(self):
        assert Battery.coin_cell_cr2032().capacity_mah == pytest.approx(225.0)
        assert Battery.small_lipo_100mah().capacity_mah == pytest.approx(100.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_mah=100.0, usable_fraction=1.5)
        with pytest.raises(ValueError):
            Battery.coin_cell_cr2032().lifetime_hours(0.0)


class TestChargeConversion:
    def test_known_value(self):
        # 3600 uA*s = 1 uAh = 0.001 mAh
        assert charge_uc_to_mah(3600.0) == pytest.approx(0.001)

    def test_zero(self):
        assert charge_uc_to_mah(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            charge_uc_to_mah(-1.0)

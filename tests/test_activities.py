"""Tests for the activity enumeration."""

from __future__ import annotations

import pytest

from repro.core.activities import (
    ALL_ACTIVITIES,
    DYNAMIC_ACTIVITIES,
    NUM_ACTIVITIES,
    STATIC_ACTIVITIES,
    Activity,
    activity_names,
    encode_activities,
)


class TestActivityEnumeration:
    def test_six_activities(self):
        assert NUM_ACTIVITIES == 6
        assert len(ALL_ACTIVITIES) == 6

    def test_indices_are_contiguous_from_zero(self):
        assert sorted(int(activity) for activity in ALL_ACTIVITIES) == list(range(6))

    def test_static_dynamic_partition(self):
        assert set(STATIC_ACTIVITIES) | set(DYNAMIC_ACTIVITIES) == set(ALL_ACTIVITIES)
        assert set(STATIC_ACTIVITIES) & set(DYNAMIC_ACTIVITIES) == set()

    def test_static_membership(self):
        assert Activity.SIT.is_static
        assert Activity.LIE.is_static
        assert Activity.STAND.is_static
        assert not Activity.WALK.is_static

    def test_dynamic_membership(self):
        assert Activity.WALK.is_dynamic
        assert Activity.UPSTAIRS.is_dynamic
        assert Activity.DOWNSTAIRS.is_dynamic
        assert not Activity.SIT.is_dynamic

    def test_labels_match_paper_wording(self):
        assert Activity.UPSTAIRS.label == "go upstairs"
        assert Activity.DOWNSTAIRS.label == "go downstairs"
        assert Activity.LIE.label == "lie down"

    def test_activity_names_ordered_by_index(self):
        names = activity_names()
        assert names[int(Activity.WALK)] == "walk"
        assert len(names) == 6


class TestFromAny:
    def test_from_activity(self):
        assert Activity.from_any(Activity.SIT) is Activity.SIT

    def test_from_int(self):
        assert Activity.from_any(2) == Activity.WALK

    def test_from_member_name(self):
        assert Activity.from_any("WALK") == Activity.WALK
        assert Activity.from_any("walk") == Activity.WALK

    def test_from_label_with_space(self):
        assert Activity.from_any("go upstairs") == Activity.UPSTAIRS
        assert Activity.from_any("lie down") == Activity.LIE

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError):
            Activity.from_any("jogging")

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            Activity.from_any(3.5)

    def test_out_of_range_int_raises(self):
        with pytest.raises(ValueError):
            Activity.from_any(6)


class TestEncodeActivities:
    def test_mixed_inputs(self):
        encoded = encode_activities([Activity.SIT, "walk", 5])
        assert encoded == [0, 2, 5]

    def test_empty(self):
        assert encode_activities([]) == []

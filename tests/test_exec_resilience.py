"""Tests for fault-tolerant sharded execution.

The contract under test: for any shard count, any fault pattern, any
retry schedule, and fresh-vs-resumed execution, the merged traces and
telemetry are bit-identical to the fault-free single-process run.  The
fault matrix (kill first/middle/last shard, kill twice, exhaust
retries, timeouts, corrupt payloads, checkpoint → kill → resume) pins
every recovery path with the deterministic
:class:`repro.exec.resilience.FaultInjector`.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.exec.resilience import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PayloadCorruptionError,
    RetryPolicy,
    ShardExecutionError,
    ShardSupervisor,
)
from repro.exec.sharding import ShardedFleetSimulator
from repro.fleet import DevicePopulation, FleetSimulator, traces_equal
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def population():
    return DevicePopulation.generate(8, duration_s=12.0, master_seed=77)


@pytest.fixture(scope="module")
def reference(trained_pipeline, population):
    """The fault-free batched run every recovered run must match."""
    return FleetSimulator(trained_pipeline).run(population)


def assert_matches_reference(run, reference):
    assert len(run.result.traces) == len(reference.traces)
    for left, right in zip(run.result.traces, reference.traces):
        assert traces_equal(left, right)


# ----------------------------------------------------------------------
# Retry policy + fault plan units
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.3)
        assert policy.backoff_s(10) == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max_s": -1.0},
            {"shard_timeout_s": 0.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "kill:shard=1,round=2,attempts=0-1;"
            "delay:shard=*,seconds=0.5,attempts=*;"
            "corrupt:shard=0"
        )
        assert len(plan.rules) == 3
        kill, delay, corrupt = plan.rules
        assert kill == FaultRule(
            kind="kill", shard=1, round_index=2, attempt_range=(0, 1)
        )
        assert delay.shard is None
        assert delay.seconds == 0.5
        assert delay.attempt_range is None
        assert corrupt.kind == "corrupt"

    def test_defaults_hit_only_first_attempt_round_zero(self):
        plan = FaultPlan.parse("kill:shard=2")
        rule = plan.rules[0]
        assert rule.matches(2, 0, 0)
        assert not rule.matches(2, 0, 1)  # retry survives
        assert not rule.matches(2, 1, 0)  # later rounds survive
        assert not rule.matches(1, 0, 0)  # other shards survive

    def test_wildcards(self):
        plan = FaultPlan.parse("kill:shard=*,round=*,attempts=*")
        assert plan.rules[0].matches(5, 9, 3)

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("  ;  ").is_empty

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:shard=1",
            "kill:shard=x",
            "kill:shard",
            "kill:attempts=3-1",
            "kill:volume=11",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({"REPRO_FAULT_PLAN": "kill:shard=0"})
        assert plan is not None and len(plan.rules) == 1

    def test_injector_raises_inline(self):
        injector = FaultInjector(FaultPlan.parse("kill:shard=0"))
        with pytest.raises(InjectedFault):
            injector.on_round(0, 0, 0)
        injector.on_round(0, 0, 1)  # retry passes

    def test_injector_corrupts(self):
        injector = FaultInjector(FaultPlan.parse("corrupt:shard=1"))
        assert injector.corrupts(1, 0)
        assert not injector.corrupts(1, 1)
        assert not injector.corrupts(0, 0)


# ----------------------------------------------------------------------
# Supervisor units (toy workers, no fleet)
# ----------------------------------------------------------------------
def _toy_worker(payload, attempt):
    kind, value = payload
    if kind == "kill-first" and attempt == 0:
        if multiprocessing.parent_process() is not None:
            os._exit(23)
        raise InjectedFault("inline kill")
    if kind == "raise-first" and attempt == 0:
        raise RuntimeError("transient")
    if kind == "always-raise":
        raise RuntimeError("permanent")
    if kind == "slow-first" and attempt == 0:
        time.sleep(10.0)
    return value * 10


class TestShardSupervisor:
    POLICY = RetryPolicy(max_retries=2, backoff_base_s=0.0)

    def test_fault_free_passthrough(self):
        supervisor = ShardSupervisor(_toy_worker, self.POLICY)
        results, stats = supervisor.run([("ok", 1), ("ok", 2)])
        assert results == [10, 20]
        assert stats.attempts == (1, 1)
        assert stats.retries == stats.failures == stats.timeouts == 0

    def test_worker_death_is_retried(self):
        supervisor = ShardSupervisor(_toy_worker, self.POLICY)
        results, stats = supervisor.run([("kill-first", 1), ("ok", 2)])
        assert results == [10, 20]
        assert stats.attempts == (2, 1)
        assert stats.retries == 1 and stats.failures == 1

    def test_raised_exception_is_retried(self):
        supervisor = ShardSupervisor(_toy_worker, self.POLICY)
        results, _ = supervisor.run([("raise-first", 3)])
        assert results == [30]

    def test_timeout_kills_and_retries(self):
        policy = RetryPolicy(
            max_retries=1, backoff_base_s=0.0, shard_timeout_s=0.5
        )
        supervisor = ShardSupervisor(_toy_worker, policy)
        results, stats = supervisor.run([("slow-first", 4)])
        assert results == [40]
        assert stats.timeouts == 1

    def test_exhausted_budget_raises_with_shard_and_attempts(self):
        policy = RetryPolicy(
            max_retries=1, backoff_base_s=0.0, inline_last_resort=True
        )
        supervisor = ShardSupervisor(_toy_worker, policy)
        with pytest.raises(ShardExecutionError) as excinfo:
            supervisor.run([("ok", 1), ("always-raise", 2)])
        error = excinfo.value
        assert error.shard_index == 1
        # Two process attempts plus the inline last resort.
        assert error.attempts == 3
        assert "shard 1" in str(error) and "3 attempts" in str(error)

    def test_failure_counters_reach_registry(self):
        registry = MetricsRegistry()
        supervisor = ShardSupervisor(
            _toy_worker, self.POLICY, metrics=registry
        )
        supervisor.run([("kill-first", 1)])
        assert registry.counter_value("shard.retries") == 1.0
        assert registry.counter_value("shard.failures") == 1.0

    def test_inline_only_mode_never_spawns(self):
        supervisor = ShardSupervisor(
            _toy_worker, self.POLICY, inline_only=True
        )
        results, stats = supervisor.run([("raise-first", 5)])
        assert results == [50]
        assert stats.used_processes is False


# ----------------------------------------------------------------------
# Fault matrix over the real sharded fleet
# ----------------------------------------------------------------------
class TestFaultMatrix:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_kill_each_shard_once(
        self, trained_pipeline, population, reference, victim
    ):
        """Kill the first, middle and last shard's first attempt; the
        retry recomputes and the merged run stays bit-identical."""
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=3,
            backoff_base_s=0.0,
            fault_plan=f"kill:shard={victim},round=0",
        )
        run = simulator.run(population)
        assert_matches_reference(run, reference)
        assert run.shard_attempts[victim] == 2
        assert run.retries == 1 and run.failures == 1

    def test_kill_twice_retry_succeeds(
        self, trained_pipeline, population, reference
    ):
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            max_retries=2,
            backoff_base_s=0.0,
            fault_plan="kill:shard=1,round=0,attempts=0-1",
        )
        run = simulator.run(population)
        assert_matches_reference(run, reference)
        assert run.shard_attempts[1] == 3
        assert run.retries == 2 and run.failures == 2

    def test_exhausted_retries_name_shard_and_attempts(
        self, trained_pipeline, population
    ):
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            max_retries=1,
            backoff_base_s=0.0,
            fault_plan="kill:shard=1,round=*,attempts=*",
        )
        with pytest.raises(ShardExecutionError) as excinfo:
            simulator.run(population)
        assert excinfo.value.shard_index == 1
        assert excinfo.value.attempts == 3

    def test_shard_timeout_recovers(
        self, trained_pipeline, population, reference
    ):
        """A delayed first attempt blows the per-shard timeout; the
        retry runs undelayed and the result is unchanged."""
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            shard_timeout_s=2.0,
            backoff_base_s=0.0,
            fault_plan="delay:shard=0,round=0,seconds=60",
        )
        run = simulator.run(population)
        assert_matches_reference(run, reference)
        assert run.timeouts == 1
        assert run.shard_attempts[0] == 2

    def test_corrupt_payload_detected_and_retried(
        self, trained_pipeline, population, reference
    ):
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            backoff_base_s=0.0,
            fault_plan="corrupt:shard=0",
        )
        run = simulator.run(population)
        assert_matches_reference(run, reference)
        assert run.failures == 1 and run.retries == 1

    def test_inline_fallback_after_worker_deaths(
        self, trained_pipeline, population, reference
    ):
        """Every process attempt dies mid-run; the inline last resort
        completes the shard (the BrokenProcessPool regression)."""
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            max_retries=1,
            backoff_base_s=0.0,
            fault_plan="kill:shard=0,round=0,attempts=0-1",
        )
        run = simulator.run(population)
        assert_matches_reference(run, reference)
        # Two dead workers, then the inline attempt (which the plan no
        # longer matches) finishes the work in the coordinator.
        assert run.shard_attempts[0] == 3
        assert run.failures == 2

    def test_metered_faulty_run_counts_and_matches(
        self, trained_pipeline, population, reference
    ):
        registry = MetricsRegistry()
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            metrics=registry,
            backoff_base_s=0.0,
            fault_plan="kill:shard=1,round=0",
        )
        run = simulator.run(population)
        assert_matches_reference(run, reference)
        assert run.metrics is not None
        assert run.metrics.counters["shard.retries"] == 1.0
        assert run.metrics.counters["shard.failures"] == 1.0


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_kill_resumes_from_checkpoint_bit_identically(
        self, trained_pipeline, population, reference, tmp_path, num_shards
    ):
        """Round-checkpointed shards killed mid-campaign resume from
        the last complete round and match the fault-free run exactly."""
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=num_shards,
            backoff_base_s=0.0,
            checkpoint_dir=tmp_path / "campaign",
            round_s=4.0,
            fault_plan=f"kill:shard={num_shards - 1},round=1",
        )
        run = simulator.run(population)
        assert_matches_reference(run, reference)
        assert run.shard_attempts[num_shards - 1] == 2

    def test_killed_campaign_resumes_bit_identically(
        self, trained_pipeline, population, reference, tmp_path
    ):
        """A campaign that dies outright (retries exhausted) is
        resumable: the rerun picks up every shard's newest complete
        round and finishes bit-identically."""
        directory = tmp_path / "campaign"
        doomed = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            max_retries=0,
            inline_last_resort=False,
            backoff_base_s=0.0,
            checkpoint_dir=directory,
            round_s=4.0,
            fault_plan="kill:shard=1,round=1,attempts=*",
        )
        with pytest.raises(ShardExecutionError):
            doomed.run(population)
        # Shard 1 checkpointed round 0 before dying.
        assert list((directory / "shard_0001").glob("round_*.ckpt"))
        revived = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            checkpoint_dir=directory,
            round_s=4.0,
            resume=True,
            fault_plan="",
        )
        run = revived.run(population)
        assert_matches_reference(run, reference)

    def test_summary_mode_checkpoint_resume(
        self, trained_pipeline, population, tmp_path
    ):
        summary_reference = FleetSimulator(trained_pipeline).run(
            population, trace="summary"
        )
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            backoff_base_s=0.0,
            checkpoint_dir=tmp_path / "campaign",
            round_s=4.0,
            fault_plan="kill:shard=0,round=2",
        )
        run = simulator.run(population, trace="summary")
        assert list(run.result.traces) == list(summary_reference.traces)

    def test_resume_requires_matching_manifest(
        self, trained_pipeline, population, tmp_path
    ):
        directory = tmp_path / "campaign"
        ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            checkpoint_dir=directory,
            round_s=4.0,
        ).run(population)
        mismatched = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=4,  # different geometry
            checkpoint_dir=directory,
            round_s=4.0,
            resume=True,
        )
        with pytest.raises(ValueError, match="different campaign"):
            mismatched.run(population)

    def test_fresh_run_refuses_existing_campaign(
        self, trained_pipeline, population, tmp_path
    ):
        directory = tmp_path / "campaign"
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            checkpoint_dir=directory,
            round_s=4.0,
        )
        simulator.run(population)
        fresh = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            checkpoint_dir=directory,
            round_s=4.0,
        )
        with pytest.raises(ValueError, match="already holds a campaign"):
            fresh.run(population)

    def test_resume_without_manifest_rejected(
        self, trained_pipeline, population, tmp_path
    ):
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            checkpoint_dir=tmp_path / "nowhere",
            resume=True,
        )
        with pytest.raises(ValueError, match="no campaign manifest"):
            simulator.run(population)

    def test_resume_requires_checkpoint_dir(self, trained_pipeline):
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            ShardedFleetSimulator(trained_pipeline, resume=True)

    def test_checkpoint_metrics_counted(
        self, trained_pipeline, population, tmp_path
    ):
        registry = MetricsRegistry()
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            metrics=registry,
            checkpoint_dir=tmp_path / "campaign",
            round_s=4.0,
        )
        run = simulator.run(population)
        assert run.metrics is not None
        # 2 shards x 3 rounds of 4 simulated seconds.
        assert run.metrics.counters["checkpoint.saves"] == 6.0
        assert run.metrics.counters["checkpoint.bytes"] > 0.0
        assert run.metrics.counters["shard.rounds"] == 6.0

    def test_stale_checkpoints_pruned(
        self, trained_pipeline, population, tmp_path
    ):
        directory = tmp_path / "campaign"
        ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            checkpoint_dir=directory,
            round_s=2.0,  # 6 rounds
        ).run(population)
        for shard_dir in sorted(directory.glob("shard_*")):
            assert len(list(shard_dir.glob("round_*.ckpt"))) == 2


# ----------------------------------------------------------------------
# Segmented engine runs (the mechanism checkpointing relies on)
# ----------------------------------------------------------------------
class TestSegmentedRuns:
    @pytest.mark.parametrize(
        "engine_kwargs",
        [
            {},
            {"noise": "batched"},
            {"noise": "batched", "dtype": "float32"},
            {"features": "exact"},
        ],
    )
    def test_segmented_run_matches_single_run(
        self, trained_pipeline, population, engine_kwargs
    ):
        simulator = FleetSimulator(trained_pipeline, **engine_kwargs)
        reference = simulator.run(population, duration_s=12.0)
        runtime = simulator.build_runtime(population)
        runtime.begin_run()
        done = 0
        for segment in (5, 4, 3):
            traces = simulator.engine.run(
                runtime.runtimes,
                segment,
                state=runtime.state,
                start_step=done,
            )
            done += segment
        for left, right in zip(traces, reference.traces):
            assert traces_equal(left, right)

    def test_negative_start_step_rejected(self, trained_pipeline, population):
        simulator = FleetSimulator(trained_pipeline)
        runtime = simulator.build_runtime(population)
        runtime.begin_run()
        with pytest.raises(ValueError, match="start_step"):
            simulator.engine.run(
                runtime.runtimes, 1, state=runtime.state, start_step=-1
            )

"""Tests for the accelerometer current model, the MCU model and accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import (
    HIGH_POWER_CONFIG,
    LOW_POWER_CONFIG,
    TABLE1_BY_NAME,
    TABLE1_CONFIGS,
    OperationMode,
    SensorConfig,
)
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.energy.accounting import (
    average_current_ua,
    energy_uc,
    relative_saving,
    state_residency,
    summarize_power,
)
from repro.energy.mcu import McuModel


class TestAccelerometerPowerModel:
    def setup_method(self):
        self.model = AccelerometerPowerModel.bmi160()

    def test_full_power_config_runs_in_normal_mode(self):
        assert self.model.mode_for(HIGH_POWER_CONFIG) == OperationMode.NORMAL
        assert self.model.current_ua(HIGH_POWER_CONFIG) == pytest.approx(
            self.model.active_current_ua
        )

    def test_lowest_config_runs_in_low_power_mode(self):
        assert self.model.mode_for(LOW_POWER_CONFIG) == OperationMode.LOW_POWER
        assert self.model.current_ua(LOW_POWER_CONFIG) < 0.2 * self.model.active_current_ua

    def test_duty_cycle_bounded(self):
        for config in TABLE1_CONFIGS:
            assert 0.0 < self.model.duty_cycle(config) <= 1.0

    def test_current_between_suspend_and_active(self):
        for config in TABLE1_CONFIGS:
            current = self.model.current_ua(config)
            assert self.model.suspend_current_ua < current <= self.model.active_current_ua

    def test_current_monotone_in_sampling_frequency(self):
        low = self.model.current_ua(TABLE1_BY_NAME["F12.5_A16"])
        high = self.model.current_ua(TABLE1_BY_NAME["F50_A16"])
        assert high > low

    def test_current_monotone_in_averaging_window(self):
        small = self.model.current_ua(TABLE1_BY_NAME["F25_A8"])
        large = self.model.current_ua(TABLE1_BY_NAME["F25_A32"])
        assert large > small

    def test_averaging_window_irrelevant_in_normal_mode(self):
        # Both saturate the duty cycle, so they draw the same current.
        assert self.model.current_ua(TABLE1_BY_NAME["F100_A128"]) == pytest.approx(
            self.model.current_ua(TABLE1_BY_NAME["F50_A128"])
        )

    def test_spot_states_strictly_ordered_by_power(self):
        from repro.core.config import DEFAULT_SPOT_STATES

        currents = [self.model.current_ua(config) for config in DEFAULT_SPOT_STATES]
        assert all(a > b for a, b in zip(currents, currents[1:]))

    def test_energy_scales_with_duration(self):
        one = self.model.energy_uc(LOW_POWER_CONFIG, 1.0)
        ten = self.model.energy_uc(LOW_POWER_CONFIG, 10.0)
        assert ten == pytest.approx(10.0 * one)

    def test_current_table_covers_all_inputs(self):
        table = self.model.current_table(TABLE1_CONFIGS)
        assert len(table) == 16

    def test_describe_contains_expected_keys(self):
        summary = self.model.describe(LOW_POWER_CONFIG)
        assert set(summary) == {"config", "mode", "duty_cycle", "current_ua"}

    def test_invalid_parameterisation_rejected(self):
        with pytest.raises(ValueError):
            AccelerometerPowerModel(active_current_ua=10.0, suspend_current_ua=20.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            self.model.energy_uc(LOW_POWER_CONFIG, -1.0)


class TestMcuModel:
    def setup_method(self):
        self.mcu = McuModel.cc2640r2f()

    def test_feature_cycles_grow_with_samples(self):
        assert self.mcu.feature_extraction_cycles(200) > self.mcu.feature_extraction_cycles(25)

    def test_feature_cycles_grow_with_fourier_features(self):
        assert self.mcu.feature_extraction_cycles(
            100, num_fourier_features=5
        ) > self.mcu.feature_extraction_cycles(100, num_fourier_features=3)

    def test_inference_cycles_proportional_to_parameters(self):
        assert self.mcu.inference_cycles(1000) == 2 * self.mcu.inference_cycles(500)

    def test_derivative_cycles_positive(self):
        assert self.mcu.derivative_cycles(100) > 0

    def test_energy_conversion_positive_and_monotone(self):
        assert self.mcu.cycles_to_energy_uj(0) == 0.0
        assert self.mcu.cycles_to_energy_uj(20_000) > self.mcu.cycles_to_energy_uj(10_000)

    def test_classifier_memory(self):
        assert self.mcu.classifier_memory_bytes(710) == 2840

    def test_processing_summary_derivative_flag(self):
        without = self.mcu.processing_summary(200, 710, include_derivative=False)
        with_derivative = self.mcu.processing_summary(200, 710, include_derivative=True)
        assert with_derivative["total_cycles"] > without["total_cycles"]
        assert without["derivative_cycles"] == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            self.mcu.feature_extraction_cycles(-1)
        with pytest.raises(ValueError):
            self.mcu.inference_cycles(-5)


class TestEnergyAccounting:
    def test_energy_with_scalar_duration(self):
        assert energy_uc([10.0, 20.0], 1.0) == pytest.approx(30.0)

    def test_energy_with_per_interval_durations(self):
        assert energy_uc([10.0, 20.0], [2.0, 0.5]) == pytest.approx(30.0)

    def test_energy_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            energy_uc([10.0, 20.0], [1.0])

    def test_energy_rejects_negative_durations(self):
        with pytest.raises(ValueError):
            energy_uc([10.0], [-1.0])

    def test_average_current_unweighted(self):
        assert average_current_ua([100.0, 50.0]) == pytest.approx(75.0)

    def test_average_current_time_weighted(self):
        assert average_current_ua([100.0, 50.0], [3.0, 1.0]) == pytest.approx(87.5)

    def test_average_current_empty_rejected(self):
        with pytest.raises(ValueError):
            average_current_ua([])

    def test_relative_saving(self):
        assert relative_saving(100.0, 31.0) == pytest.approx(0.69)

    def test_relative_saving_negative_when_worse(self):
        assert relative_saving(100.0, 120.0) < 0

    def test_relative_saving_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_saving(0.0, 10.0)

    def test_state_residency_sums_to_one(self):
        residency = state_residency(["a", "b", "a", "a"])
        assert sum(residency.values()) == pytest.approx(1.0)
        assert residency["a"] == pytest.approx(0.75)

    def test_state_residency_time_weighted(self):
        residency = state_residency(["a", "b"], [3.0, 1.0])
        assert residency["a"] == pytest.approx(0.75)

    def test_state_residency_empty_rejected(self):
        with pytest.raises(ValueError):
            state_residency([])

    def test_summarize_power_keys(self):
        summary = summarize_power([10.0, 20.0], ["a", "b"])
        assert set(summary) == {"average_current_ua", "energy_uc", "state_residency"}

"""Tests for the SPOT finite-state machine (Section IV-D)."""

from __future__ import annotations

import pytest

from repro.core.activities import Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.core.controller import SpotController, StaticController


class TestStaticController:
    def test_default_is_full_power(self):
        controller = StaticController()
        assert controller.current_config == HIGH_POWER_CONFIG

    def test_never_switches(self):
        controller = StaticController()
        for activity in (Activity.SIT, Activity.WALK, Activity.SIT, Activity.LIE):
            assert controller.update(activity, 0.9) == HIGH_POWER_CONFIG

    def test_custom_config_held(self):
        controller = StaticController(LOW_POWER_CONFIG)
        controller.update(Activity.WALK, 1.0)
        assert controller.current_config == LOW_POWER_CONFIG

    def test_reset_is_noop(self):
        controller = StaticController()
        controller.reset()
        assert controller.current_config == HIGH_POWER_CONFIG

    def test_rejects_invalid_confidence(self):
        with pytest.raises(ValueError):
            StaticController().update(Activity.SIT, 1.5)


class TestSpotInitialState:
    def test_starts_at_highest_power_state(self):
        controller = SpotController(stability_threshold=3)
        assert controller.current_config == DEFAULT_SPOT_STATES[0]
        assert controller.state_index == 0
        assert controller.counter == 0
        assert controller.last_activity is None

    def test_default_states_are_paper_states(self):
        assert SpotController().states == DEFAULT_SPOT_STATES

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            SpotController(states=[])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SpotController(stability_threshold=-1)


class TestSpotTransitions:
    def test_c1_stable_below_threshold_stays(self):
        controller = SpotController(stability_threshold=3)
        controller.update(Activity.SIT, 0.9)  # first observation
        controller.update(Activity.SIT, 0.9)  # counter 2 < 3
        assert controller.state_index == 0
        assert controller.counter == 2

    def test_c2_stable_at_threshold_steps_down(self):
        controller = SpotController(stability_threshold=3)
        for _ in range(3):
            controller.update(Activity.SIT, 0.9)
        assert controller.state_index == 1
        assert controller.counter == 0
        assert controller.current_config == DEFAULT_SPOT_STATES[1]

    def test_c3_change_snaps_back_to_first_state(self):
        controller = SpotController(stability_threshold=2)
        for _ in range(4):
            controller.update(Activity.SIT, 0.9)
        assert controller.state_index == 2
        controller.update(Activity.WALK, 0.9)
        assert controller.state_index == 0
        assert controller.counter == 0
        assert controller.current_config == HIGH_POWER_CONFIG

    def test_c4_stays_at_lowest_state_when_stable(self):
        controller = SpotController(stability_threshold=1)
        for _ in range(10):
            controller.update(Activity.LIE, 0.9)
        assert controller.at_lowest_state
        assert controller.current_config == LOW_POWER_CONFIG
        controller.update(Activity.LIE, 0.9)
        assert controller.current_config == LOW_POWER_CONFIG

    def test_full_descent_requires_threshold_per_state(self):
        threshold = 4
        controller = SpotController(stability_threshold=threshold)
        steps_to_bottom = 0
        while not controller.at_lowest_state:
            controller.update(Activity.SIT, 0.9)
            steps_to_bottom += 1
            assert steps_to_bottom < 100
        assert steps_to_bottom == threshold * (len(DEFAULT_SPOT_STATES) - 1)

    def test_change_at_lowest_state_escalates(self):
        controller = SpotController(stability_threshold=1)
        for _ in range(5):
            controller.update(Activity.SIT, 0.9)
        assert controller.at_lowest_state
        controller.update(Activity.WALK, 0.9)
        assert controller.state_index == 0

    def test_zero_threshold_descends_every_step(self):
        controller = SpotController(stability_threshold=0)
        controller.update(Activity.SIT, 0.9)
        # With a zero threshold the first stable classification already
        # satisfies C2, so each matching step moves one state down.
        assert controller.state_index == 1
        controller.update(Activity.SIT, 0.9)
        assert controller.state_index == 2
        controller.update(Activity.SIT, 0.9)
        assert controller.at_lowest_state

    def test_counter_not_incremented_at_lowest_state(self):
        controller = SpotController(stability_threshold=1)
        for _ in range(6):
            controller.update(Activity.SIT, 0.9)
        assert controller.counter == 0

    def test_reset_restores_initial_state(self):
        controller = SpotController(stability_threshold=1)
        for _ in range(3):
            controller.update(Activity.SIT, 0.9)
        controller.reset()
        assert controller.state_index == 0
        assert controller.counter == 0
        assert controller.last_activity is None

    def test_update_returns_next_config(self):
        controller = SpotController(stability_threshold=1)
        returned = controller.update(Activity.SIT, 0.9)
        assert returned == controller.current_config

    def test_accepts_activity_like_values(self):
        controller = SpotController(stability_threshold=2)
        controller.update("sit", 0.9)
        controller.update(Activity.SIT, 0.9)
        assert controller.state_index == 1
        assert controller.last_activity == Activity.SIT

    def test_custom_state_chain(self):
        states = [HIGH_POWER_CONFIG, LOW_POWER_CONFIG]
        controller = SpotController(states=states, stability_threshold=2)
        for _ in range(2):
            controller.update(Activity.SIT, 0.9)
        assert controller.current_config == LOW_POWER_CONFIG
        assert controller.at_lowest_state

    def test_single_state_chain_never_moves(self):
        controller = SpotController(states=[HIGH_POWER_CONFIG], stability_threshold=1)
        for activity in (Activity.SIT, Activity.SIT, Activity.WALK):
            assert controller.update(activity, 0.9) == HIGH_POWER_CONFIG

    def test_paper_descent_timing(self):
        """With a threshold of 9 the FSM reaches the bottom after 27 stable steps.

        This matches the ~28 seconds reported for Fig. 5 (three transitions
        of 9 one-second classifications plus the initial buffering).
        """
        controller = SpotController(stability_threshold=9)
        steps = 0
        while not controller.at_lowest_state:
            controller.update(Activity.SIT, 0.9)
            steps += 1
        assert steps == 27

    def test_alternating_activities_pin_high_power(self):
        controller = SpotController(stability_threshold=2)
        for index in range(20):
            activity = Activity.SIT if index % 2 == 0 else Activity.WALK
            controller.update(activity, 0.9)
        assert controller.state_index == 0

    def test_confidence_ignored_by_plain_spot(self):
        controller = SpotController(stability_threshold=2)
        controller.update(Activity.SIT, 0.9)
        controller.update(Activity.WALK, 0.05)  # low confidence, still a change
        assert controller.state_index == 0
        assert controller.last_activity == Activity.WALK

    def test_invalid_confidence_rejected(self):
        controller = SpotController()
        with pytest.raises(ValueError):
            controller.update(Activity.SIT, -0.2)

"""Property tests for incremental (chunk-cached) feature extraction.

The incremental extractor must reproduce the full-window
:class:`repro.core.features.FeatureExtractor` to floating-point
precision for every geometry the execution engine can encounter: all
Table I sampling-rate families (including the 12.5 Hz family whose
chunks do not divide the window, leaving a trimmed tail), window/hop
ratios beyond the paper's 2:1, and both Fourier feature modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    FeatureExtractor,
    IncrementalFeatureExtractor,
    WindowGeometry,
)
from repro.utils.rng import stable_seed_from

#: Sampling rates of the Table I configuration families.
SAMPLING_RATES = (100.0, 50.0, 25.0, 12.5, 6.25)

#: (window_s, step_s) ratios to sweep, including a non-integer ratio.
WINDOW_STEPS = ((2.0, 1.0), (3.0, 1.0), (2.5, 1.0), (2.0, 2.0))


def _steady_window(geometry: WindowGeometry, chunks):
    """Assemble the raw steady-state window the buffer would hold."""
    parts = []
    if geometry.tail_samples:
        parts.append(chunks[0][geometry.chunk_samples - geometry.tail_samples :])
        body = chunks[1:]
    else:
        body = chunks
    parts.extend(body)
    return np.concatenate(parts, axis=0)


def _gravity_like_chunks(rng, count, chunk_samples):
    """Chunks with a realistic structure: gravity offset plus noise."""
    offset = rng.normal(0.0, 9.81, size=(1, 1, 3))
    wobble = rng.normal(0.0, 1.5, size=(count, chunk_samples, 3))
    return offset + wobble


class TestGeometry:
    def test_aligned_geometry(self):
        geometry = WindowGeometry.for_window(50.0, 1.0, 2.0)
        assert geometry.chunk_samples == 50
        assert geometry.window_samples == 100
        assert geometry.chunks_per_window == 2
        assert geometry.tail_samples == 0
        assert geometry.cached_chunks == 2

    def test_tailed_geometry_at_12_5_hz(self):
        # round(12.5) = 12 samples per second against a 25-sample cap:
        # the steady window keeps 1 sample of the oldest chunk.
        geometry = WindowGeometry.for_window(12.5, 1.0, 2.0)
        assert geometry.chunk_samples == 12
        assert geometry.window_samples == 25
        assert geometry.chunks_per_window == 2
        assert geometry.tail_samples == 1
        assert geometry.cached_chunks == 3

    @pytest.mark.parametrize("sampling_hz", SAMPLING_RATES)
    def test_geometry_matches_real_buffer_layout(self, sampling_hz):
        """The steady-state chunk pattern WindowGeometry predicts is the
        pattern SampleBuffer actually converges to — the assumption the
        cached partials rest on."""
        from repro.core.config import SensorConfig
        from repro.sensors.buffer import SampleBuffer
        from repro.sensors.imu import SensorWindow

        geometry = WindowGeometry.for_window(sampling_hz, 1.0, 2.0)
        config = SensorConfig(sampling_hz=sampling_hz, averaging_window=8)
        buffer = SampleBuffer(window_duration_s=2.0)
        rng = np.random.default_rng(3)
        for push in range(1, geometry.cached_chunks + 3):
            samples = rng.normal(size=(geometry.chunk_samples, 3))
            times = push - 1.0 + np.arange(1, geometry.chunk_samples + 1) / sampling_hz
            buffer.push(SensorWindow(samples=samples, times_s=times, config=config))
            if push >= geometry.cached_chunks:
                expected = (geometry.chunk_samples,) * geometry.chunks_per_window
                if geometry.tail_samples:
                    expected = (geometry.tail_samples,) + expected
                assert buffer.chunk_sizes() == expected
                assert buffer.num_samples == geometry.window_samples

    def test_degenerate_geometries_are_none(self):
        assert WindowGeometry.for_window(0.4, 1.0, 2.0) is None
        assert WindowGeometry.for_window(1.0, 1.0, 1.0) is None  # 1-sample window

    def test_basis_is_cached(self):
        incremental = IncrementalFeatureExtractor()
        geometry = WindowGeometry.for_window(50.0, 1.0, 2.0)
        assert incremental.basis_for(geometry) is incremental.basis_for(geometry)


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("fourier_mode", ["bands", "bins"])
    @pytest.mark.parametrize("window_s,step_s", WINDOW_STEPS)
    @pytest.mark.parametrize("sampling_hz", SAMPLING_RATES)
    def test_combined_features_match_full_extraction(
        self, sampling_hz, window_s, step_s, fourier_mode
    ):
        """Slide a window over a random stream chunk by chunk; every
        steady-state combine must match the full-window extraction."""
        geometry = WindowGeometry.for_window(sampling_hz, step_s, window_s)
        if geometry is None:
            pytest.skip("degenerate geometry")
        extractor = FeatureExtractor(fourier_mode=fourier_mode)
        incremental = IncrementalFeatureExtractor(extractor)
        rng = np.random.default_rng(
            stable_seed_from(
                int(sampling_hz * 100), int(window_s * 10), int(step_s * 10),
                fourier_mode,
            )
        )

        total_chunks = geometry.cached_chunks + 3
        stream = _gravity_like_chunks(rng, total_chunks, geometry.chunk_samples)
        partials = [
            incremental.chunk_partials_stacked(chunk[None], geometry)[0]
            for chunk in stream
        ]
        for start in range(total_chunks - geometry.cached_chunks + 1):
            cached = partials[start : start + geometry.cached_chunks]
            combined = incremental.combine_stacked([cached], geometry)[0]
            window = _steady_window(
                geometry, stream[start : start + geometry.cached_chunks]
            )
            assert window.shape[0] == geometry.window_samples
            reference = extractor.extract(window, sampling_hz)
            np.testing.assert_allclose(
                combined, reference, rtol=1e-7, atol=1e-9,
                err_msg=(
                    f"fs={sampling_hz} window={window_s} step={step_s} "
                    f"mode={fourier_mode} start={start}"
                ),
            )

    def test_batched_combine_matches_single(self):
        """Combining many devices at once equals combining one by one —
        the batch invariance the fleet/sequential equivalence rests on."""
        geometry = WindowGeometry.for_window(12.5, 1.0, 2.0)
        incremental = IncrementalFeatureExtractor()
        rng = np.random.default_rng(9)
        devices = 7
        windows = []
        for _ in range(devices):
            chunks = _gravity_like_chunks(
                rng, geometry.cached_chunks, geometry.chunk_samples
            )
            windows.append(
                [
                    incremental.chunk_partials_stacked(chunk[None], geometry)[0]
                    for chunk in chunks
                ]
            )
        batched = incremental.combine_stacked(windows, geometry)
        for index, window in enumerate(windows):
            single = incremental.combine_stacked([window], geometry)[0]
            np.testing.assert_array_equal(batched[index], single)

    def test_stacked_partials_match_single(self):
        geometry = WindowGeometry.for_window(50.0, 1.0, 2.0)
        incremental = IncrementalFeatureExtractor()
        rng = np.random.default_rng(11)
        chunks = _gravity_like_chunks(rng, 5, geometry.chunk_samples)
        stacked = incremental.chunk_partials_stacked(chunks, geometry)
        for index in range(5):
            single = incremental.chunk_partials_stacked(
                chunks[index][None], geometry
            )[0]
            np.testing.assert_array_equal(stacked[index].sums, single.sums)
            np.testing.assert_array_equal(stacked[index].sumsq, single.sumsq)
            np.testing.assert_array_equal(stacked[index].dft, single.dft)

    def test_wrong_chunk_count_rejected(self):
        geometry = WindowGeometry.for_window(50.0, 1.0, 2.0)
        incremental = IncrementalFeatureExtractor()
        chunk = np.zeros((1, geometry.chunk_samples, 3))
        partials = incremental.chunk_partials_stacked(chunk, geometry)
        with pytest.raises(ValueError):
            incremental.combine_stacked([partials], geometry)  # needs 2 chunks

    def test_wrong_chunk_shape_rejected(self):
        geometry = WindowGeometry.for_window(50.0, 1.0, 2.0)
        incremental = IncrementalFeatureExtractor()
        with pytest.raises(ValueError):
            incremental.chunk_partials_stacked(np.zeros((1, 7, 3)), geometry)

    def test_exact_fallback_delegates_to_wrapped_extractor(self):
        extractor = FeatureExtractor()
        incremental = IncrementalFeatureExtractor(extractor)
        rng = np.random.default_rng(13)
        windows = rng.normal(9.8, 2.0, size=(4, 100, 3))
        np.testing.assert_array_equal(
            incremental.extract_stacked(windows, 50.0),
            extractor.extract_stacked(windows, 50.0),
        )
        assert incremental.extractor is extractor
        assert incremental.num_features == extractor.num_features

"""Tests for SPOT with confidence (Section IV-E)."""

from __future__ import annotations

import pytest

from repro.core.activities import Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG
from repro.core.controller import SpotController, SpotWithConfidenceController


class TestConstruction:
    def test_default_confidence_is_paper_value(self):
        controller = SpotWithConfidenceController()
        assert controller.confidence_threshold == pytest.approx(0.85)

    def test_invalid_confidence_threshold_rejected(self):
        with pytest.raises(ValueError):
            SpotWithConfidenceController(confidence_threshold=1.2)

    def test_is_a_spot_controller(self):
        assert isinstance(SpotWithConfidenceController(), SpotController)


class TestConfidenceGating:
    def _descended(self, controller, steps=6, activity=Activity.SIT):
        for _ in range(steps):
            controller.update(activity, 0.95)
        return controller

    def test_high_confidence_change_escalates(self):
        controller = self._descended(
            SpotWithConfidenceController(stability_threshold=2)
        )
        assert controller.state_index > 0
        controller.update(Activity.WALK, 0.95)
        assert controller.state_index == 0

    def test_low_confidence_change_is_ignored(self):
        controller = self._descended(
            SpotWithConfidenceController(stability_threshold=2)
        )
        state_before = controller.state_index
        controller.update(Activity.WALK, 0.5)
        assert controller.state_index == state_before
        # The remembered activity is unchanged: the controller waits for a
        # trustworthy classification.
        assert controller.last_activity == Activity.SIT

    def test_low_confidence_change_does_not_count_as_stability(self):
        controller = SpotWithConfidenceController(stability_threshold=2)
        controller.update(Activity.SIT, 0.95)
        counter_before = controller.counter
        controller.update(Activity.WALK, 0.3)
        assert controller.counter == counter_before

    def test_threshold_is_inclusive(self):
        controller = self._descended(
            SpotWithConfidenceController(stability_threshold=2, confidence_threshold=0.85)
        )
        controller.update(Activity.WALK, 0.85)
        assert controller.state_index == 0

    def test_repeated_low_confidence_changes_never_escalate(self):
        controller = self._descended(
            SpotWithConfidenceController(stability_threshold=1)
        )
        for _ in range(10):
            controller.update(Activity.WALK, 0.6)
        assert controller.state_index == len(DEFAULT_SPOT_STATES) - 1

    def test_low_confidence_match_still_counts_towards_stability(self):
        """Only *changes* are confidence-gated; matching outputs always count."""
        controller = SpotWithConfidenceController(stability_threshold=3)
        controller.update(Activity.SIT, 0.95)
        controller.update(Activity.SIT, 0.40)
        assert controller.counter == 2

    def test_first_observation_accepted_regardless_of_confidence(self):
        controller = SpotWithConfidenceController(stability_threshold=2)
        controller.update(Activity.WALK, 0.2)
        assert controller.last_activity == Activity.WALK
        assert controller.current_config == HIGH_POWER_CONFIG

    def test_descends_like_plain_spot_when_stable(self):
        plain = SpotController(stability_threshold=3)
        confident = SpotWithConfidenceController(stability_threshold=3)
        for _ in range(12):
            plain.update(Activity.LIE, 0.95)
            confident.update(Activity.LIE, 0.95)
        assert plain.state_index == confident.state_index

    def test_reset_clears_gating_state(self):
        controller = self._descended(SpotWithConfidenceController(stability_threshold=1))
        controller.reset()
        assert controller.state_index == 0
        assert controller.last_activity is None

    def test_spends_more_time_low_than_plain_spot_with_noisy_changes(self):
        """The headline behaviour: confidence gating filters spurious escalations."""
        plain = SpotController(stability_threshold=1)
        confident = SpotWithConfidenceController(stability_threshold=1)
        plain_low_time = 0
        confident_low_time = 0
        # Stable sitting interrupted by occasional low-confidence "walk"
        # mispredictions (as a noisy low-power configuration would produce).
        pattern = [(Activity.SIT, 0.95)] * 9 + [(Activity.WALK, 0.55)]
        for _ in range(5):
            for activity, confidence in pattern:
                plain.update(activity, confidence)
                confident.update(activity, confidence)
                plain_low_time += plain.at_lowest_state
                confident_low_time += confident.at_lowest_state
        assert confident_low_time > plain_low_time

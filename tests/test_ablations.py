"""Tests for the ablation experiment drivers."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_SPOT_STATES
from repro.experiments.ablations import (
    run_classifier_ablation,
    run_feature_ablation,
    run_state_count_ablation,
)
from repro.experiments.common import get_trained_systems


class TestFeatureAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_feature_ablation(
            fourier_counts=(1, 3),
            modes=("bands",),
            windows_per_activity_per_config=10,
            seed=0,
        )

    def test_one_row_per_variant(self, result):
        assert len(result.rows) == 2

    def test_vector_sizes_follow_feature_count(self, result):
        sizes = {row.n_fourier_features: row.num_features for row in result.rows}
        assert sizes[1] == 9
        assert sizes[3] == 15

    def test_accuracies_above_chance(self, result):
        for row in result.rows:
            assert row.accuracy > 1.0 / 6.0

    def test_best_row_is_maximum(self, result):
        assert result.best_row().accuracy == max(row.accuracy for row in result.rows)

    def test_format_table_lists_modes(self, result):
        assert "bands" in result.format_table()


class TestClassifierAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_classifier_ablation(
            hidden_sizes=(8, 32), windows_per_activity_per_config=10, seed=0
        )

    def test_memory_grows_with_width(self, result):
        by_width = {row.hidden_units: row for row in result.rows}
        assert by_width[32].memory_bytes > by_width[8].memory_bytes
        assert by_width[32].num_parameters > by_width[8].num_parameters

    def test_accuracies_reasonable(self, result):
        for row in result.rows:
            assert 0.5 < row.accuracy <= 1.0

    def test_format_table_mentions_memory(self, result):
        assert "memory" in result.format_table()


class TestStateCountAblation:
    @pytest.fixture(scope="class")
    def result(self):
        system = get_trained_systems(scale="quick", seed=2020).adasense
        return run_state_count_ablation(
            state_counts=(1, 4),
            system=system,
            duration_s=150.0,
            repeats=1,
            seed=1,
        )

    def test_single_state_is_full_power(self, result):
        single = next(row for row in result.rows if row.num_states == 1)
        assert single.average_current_ua == pytest.approx(180.0)
        assert single.state_names == (DEFAULT_SPOT_STATES[0].name,)

    def test_full_chain_saves_power(self, result):
        single = next(row for row in result.rows if row.num_states == 1)
        full = next(row for row in result.rows if row.num_states == 4)
        assert full.average_current_ua < single.average_current_ua
        assert len(full.state_names) == 4

    def test_invalid_state_count_rejected(self):
        system = get_trained_systems(scale="quick", seed=2020).adasense
        with pytest.raises(ValueError):
            run_state_count_ablation(state_counts=(0,), system=system, repeats=1)

"""Engine-level equivalence of the banked execution paths.

The controller bank and the streaming-telemetry fold are pure
performance features: for any population, feature mode and sharding
layout they must reproduce the per-object, full-trace reference bit for
bit.  These sweeps pin that down on heterogeneous populations covering
all four controller families.
"""

from __future__ import annotations

import pytest

from repro.core.activities import Activity
from repro.core.adasense import AdaSense
from repro.core.config import SensorConfig
from repro.core.controller import SpotController
from repro.datasets.synthetic import ScheduledSignal
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.exec.engine import StepEngine
from repro.sensors.imu import NoiseModel
from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    FleetTelemetry,
    ShardedFleetSimulator,
    traces_equal,
)
from repro.sim.runtime import ClosedLoopSimulator
from repro.sim.trace import TraceSummary

NUM_DEVICES = 50
DURATION_S = 25.0


@pytest.fixture(scope="module")
def system():
    return AdaSense.train(windows_per_activity_per_config=8, seed=3)


@pytest.fixture(scope="module")
def population():
    population = DevicePopulation.generate(
        NUM_DEVICES, duration_s=DURATION_S, master_seed=11
    )
    # The sweep only means something over a genuinely mixed fleet.
    assert set(population.controller_counts()) == {
        "spot", "spot_confidence", "static", "intensity"
    }
    return population


@pytest.fixture(scope="module")
def reference_traces(system, population):
    result = FleetSimulator(
        system.pipeline, controllers="per_object"
    ).run_sequential(population)
    return result.traces


class TestBankTraceEquivalence:
    @pytest.mark.parametrize("features", ["incremental", "exact"])
    def test_bank_matches_sequential_reference(
        self, system, population, features
    ):
        reference = FleetSimulator(
            system.pipeline, features=features, controllers="per_object"
        ).run_sequential(population)
        banked = FleetSimulator(system.pipeline, features=features).run(population)
        for left, right in zip(banked.traces, reference.traces):
            assert traces_equal(left, right)

    def test_bank_matches_per_object_batched(self, system, population):
        per_object = FleetSimulator(
            system.pipeline, controllers="per_object"
        ).run(population)
        banked = FleetSimulator(system.pipeline).run(population)
        for left, right in zip(banked.traces, per_object.traces):
            assert traces_equal(left, right)

    def test_bank_per_device_sensing_matches(self, system, population, reference_traces):
        banked = FleetSimulator(system.pipeline, sensing="per_device").run(population)
        for left, right in zip(banked.traces, reference_traces):
            assert traces_equal(left, right)

    def test_sharded_bank_matches(self, system, population, reference_traces):
        run = ShardedFleetSimulator(system.pipeline).run(population, num_shards=3)
        for left, right in zip(run.result.traces, reference_traces):
            assert traces_equal(left, right)

    def test_single_device_closed_loop_matches(self, system):
        schedule = [("walk", 12.0), ("sit", 10.0), ("walk", 8.0)]
        traces = {}
        for mode in ("bank", "per_object"):
            simulator = ClosedLoopSimulator(
                pipeline=system.pipeline,
                controller=SpotController(stability_threshold=4),
                controllers=mode,
            )
            traces[mode] = simulator.run(schedule, seed=5)
        assert traces_equal(traces["bank"], traces["per_object"])


class TestSummaryTelemetryEquivalence:
    def test_summary_reports_match_full_reports(self, system, population):
        simulator = FleetSimulator(system.pipeline)
        full = simulator.run(population)
        summary = simulator.run(population, trace="summary")
        assert summary.trace_mode == "summary"
        assert all(isinstance(t, TraceSummary) for t in summary.traces)
        assert (
            FleetTelemetry.from_result(summary).to_dict()
            == FleetTelemetry.from_result(full).to_dict()
        )

    def test_summary_with_per_object_controllers(self, system, population):
        banked = FleetSimulator(system.pipeline).run(population, trace="summary")
        per_object = FleetSimulator(
            system.pipeline, controllers="per_object"
        ).run(population, trace="summary")
        assert (
            FleetTelemetry.from_result(per_object).to_dict()
            == FleetTelemetry.from_result(banked).to_dict()
        )

    def test_sharded_summary_matches_and_is_shard_invariant(self, system, population):
        full = FleetTelemetry.from_result(
            FleetSimulator(system.pipeline).run(population)
        ).to_dict()
        sharded = ShardedFleetSimulator(system.pipeline)
        for shards in (1, 2, 4):
            run = sharded.run(population, num_shards=shards, trace="summary")
            assert run.result.trace_mode == "summary"
            assert run.telemetry.to_dict() == full

    def test_summary_device_seconds_match(self, system, population):
        simulator = FleetSimulator(system.pipeline)
        full = simulator.run(population)
        summary = simulator.run(population, trace="summary")
        assert summary.device_seconds == full.device_seconds

    def test_summary_distinguishes_configs_sharing_a_name(self, system):
        """Dwell and switch counts are keyed by configuration *name*
        (matching the per-record fold), even when two distinct
        configurations collide on one name."""
        config_a = SensorConfig(sampling_hz=25.0, averaging_window=32)
        config_b = SensorConfig(sampling_hz=25.0000001, averaging_window=32)
        assert config_a != config_b and config_a.name == config_b.name

        engine = StepEngine(system.pipeline)

        def make_runtime():
            return engine.make_runtime(
                signal=ScheduledSignal([(Activity.WALK, 20.0)], seed=3),
                controller=SpotController(
                    states=[config_a, config_b], stability_threshold=2
                ),
                power_model=AccelerometerPowerModel.bmi160(),
                noise=NoiseModel(),
                rng=7,
            )

        (full_trace,) = engine.run([make_runtime()], 20)
        (summary,) = engine.run([make_runtime()], 20, trace="summary")
        # The controller visits both same-named states during the run
        # (distinct currents prove it), yet every record carries the
        # single shared name.
        assert len({record.current_ua for record in full_trace.records}) == 2
        assert {record.config_name for record in full_trace.records} == {
            config_a.name
        }
        assert summary == TraceSummary.from_trace(full_trace)
        assert summary.config_switches == 0

    def test_invalid_trace_mode_rejected(self, system, population):
        with pytest.raises(ValueError, match="trace"):
            FleetSimulator(system.pipeline).run(population, trace="bogus")

    def test_invalid_controller_mode_rejected(self, system):
        with pytest.raises(ValueError, match="controllers"):
            FleetSimulator(system.pipeline, controllers="bogus")

"""Tests for the live run-telemetry plane: heartbeats, the run
monitor, the straggler detector and the crash flight recorder.

The load-bearing contract is observational transparency: a monitored
sharded (or campaign) run — heartbeats, watch line, NDJSON stream,
flight rings and all — produces traces and telemetry bit-identical to
the unmonitored run at every shard count and in both dtype lanes.
Heartbeats only sub-segment engine runs, and segmented runs are pinned
bit-identical elsewhere, so monitoring reads clocks and counters but
never touches a sample or an RNG draw.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign import CampaignRunner, variant_grid
from repro.exec.resilience import ShardExecutionError
from repro.exec.sharding import ShardedFleetSimulator
from repro.fleet import DevicePopulation, FleetSimulator, traces_equal
from repro.fleet.telemetry import FleetTelemetry
from repro.obs import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    MetricsRegistry,
    RunMonitor,
    build_heartbeat,
    current_rss_bytes,
    validate_events_file,
    validate_live_event,
)


@pytest.fixture(scope="module")
def population():
    return DevicePopulation.generate(8, duration_s=12.0, master_seed=77)


@pytest.fixture(scope="module")
def references(trained_pipeline, population):
    """Unmonitored batched runs, one per dtype lane."""
    return {
        dtype: FleetSimulator(trained_pipeline, dtype=dtype).run(population)
        for dtype in ("float64", "float32")
    }


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_monitor(**kwargs):
    """A monitor wired to in-memory sinks and a controllable clock."""
    clock = FakeClock()
    watch = io.StringIO()
    events = io.StringIO()
    kwargs.setdefault("watch", watch)
    kwargs.setdefault("events", events)
    kwargs.setdefault("clock", clock)
    kwargs.setdefault("watch_interval_s", 0.0)
    return RunMonitor(**kwargs), clock, watch, events


def beat(shard, steps_done, rate, num_steps=12, devices=4, attempt=0):
    """A schema-complete heartbeat with a forced rate."""
    payload = build_heartbeat(
        shard=shard,
        attempt=attempt,
        round_index=0,
        steps_done=steps_done,
        num_steps=num_steps,
        devices=devices,
        elapsed_s=1.0,
        interval_s=1.0,
        steps_delta=1,
        phase_s={"tick.sense": 0.25},
    )
    payload["rate"] = float(rate)
    return payload


# ----------------------------------------------------------------------
# Event schema units
# ----------------------------------------------------------------------
class TestHeartbeatSchema:
    def test_build_heartbeat_computes_rate(self):
        payload = build_heartbeat(
            shard=2, attempt=1, round_index=3, steps_done=40, num_steps=120,
            devices=10, elapsed_s=4.0, interval_s=0.5, steps_delta=20,
            phase_s={"tick.sense": 0.125}, rss_bytes=4096,
        )
        assert payload["event"] == "heartbeat"
        assert payload["rate"] == pytest.approx(10 * 20 / 0.5)
        assert payload["phase_s"] == {"tick.sense": 0.125}
        assert payload["rss_bytes"] == 4096
        payload["t"] = 0.5
        assert validate_live_event(payload) == "heartbeat"

    def test_zero_interval_rate_is_zero(self):
        payload = build_heartbeat(
            shard=0, attempt=0, round_index=0, steps_done=1, num_steps=2,
            devices=1, elapsed_s=0.0, interval_s=0.0, steps_delta=1,
            phase_s={},
        )
        assert payload["rate"] == 0.0

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not a dict", "must be an object"),
            ({"event": "mystery", "t": 0.0}, "unknown live event"),
            ({"event": "heartbeat", "t": -1.0}, "bad timestamp"),
            ({"event": "heartbeat", "t": 0.0}, "missing keys"),
            (
                {
                    "event": "run_start", "t": 0.0, "schema": "bogus/v0",
                    "shards": 1, "devices": 1, "num_steps": 1,
                },
                "schema",
            ),
        ],
    )
    def test_invalid_events_rejected(self, payload, match):
        with pytest.raises(ValueError, match=match):
            validate_live_event(payload)

    def test_events_file_must_open_with_run_start(self, tmp_path):
        path = tmp_path / "events.ndjson"
        path.write_text(
            json.dumps(
                {"event": "shard_complete", "t": 0.0, "shard": 0, "attempts": 1}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="must open with run_start"):
            validate_events_file(path)

    def test_events_file_rejects_broken_json(self, tmp_path):
        path = tmp_path / "events.ndjson"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            validate_events_file(path)

    def test_rss_probe_returns_plausible_size(self):
        rss = current_rss_bytes()
        assert rss is None or rss > 1024 * 1024


# ----------------------------------------------------------------------
# Flight recorder units
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded(self, tmp_path):
        recorder = FlightRecorder(tmp_path, ring_size=4)
        for index in range(10):
            recorder.record(0, {"event": "heartbeat", "steps_done": index})
        events = recorder.events(0)
        assert len(events) == 4
        assert [event["steps_done"] for event in events] == [6, 7, 8, 9]
        assert recorder.events_recorded == 10

    def test_tracks_last_round(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        assert recorder.last_round(0) is None
        recorder.record(0, {"event": "round_start", "round": 0})
        recorder.record(0, {"event": "round_start", "round": 3})
        recorder.record(1, {"event": "round_start", "round": 7})
        assert recorder.last_round(0) == 3
        assert recorder.last_round(1) == 7

    def test_dump_schema_and_naming(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "flight")
        recorder.record(2, {"event": "round_start", "round": 1})
        recorder.record(2, {"event": "heartbeat", "steps_done": 5})
        path = recorder.dump(2, attempt=1, kind="died", reason="exit code 9")
        assert path.name == "flight_shard_0002_attempt_01.json"
        assert recorder.last_dump(2) == path
        payload = json.loads(path.read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["shard"] == 2
        assert payload["attempt"] == 1
        assert payload["kind"] == "died"
        assert payload["last_round"] == 1
        assert payload["num_events"] == 2
        assert payload["events"][0]["event"] == "round_start"
        assert recorder.dumps_written == 1


# ----------------------------------------------------------------------
# RunMonitor units (fake clock, in-memory sinks)
# ----------------------------------------------------------------------
class TestRunMonitor:
    def test_heartbeat_steps_rounds_to_ticks(self):
        monitor = RunMonitor(heartbeat_s=10.0)
        assert monitor.heartbeat_steps(step_s=2.5) == 4
        assert monitor.heartbeat_steps(step_s=40.0) == 1
        assert RunMonitor(heartbeat_s=None).heartbeat_steps(2.5) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_s": 0.0},
            {"straggler_ratio": 0.0},
            {"straggler_ratio": 1.5},
            {"straggler_min_heartbeats": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RunMonitor(**kwargs)

    def test_progress_eta_and_rates(self):
        monitor, clock, _, _ = make_monitor()
        monitor.begin_run([4, 4], num_steps=12, step_s=1.0)
        assert monitor.progress() == 0.0
        assert monitor.eta_s() is None  # no rate yet
        clock.advance(1.0)
        monitor.handle_event(0, 0, beat(0, steps_done=6, rate=8.0))
        monitor.handle_event(1, 0, beat(1, steps_done=3, rate=4.0))
        assert monitor.progress() == pytest.approx((4 * 6 + 4 * 3) / 96.0)
        # remaining 4*6 + 4*9 = 60 device-steps at 12/s.
        assert monitor.eta_s() == pytest.approx(60 / 12.0)
        assert monitor.shard_rates() == {0: 8.0, 1: 4.0}
        monitor.on_task_complete(0, attempts=1)
        monitor.on_task_complete(1, attempts=1)
        assert monitor.progress() == 1.0
        assert monitor.eta_s() == 0.0

    def test_straggler_flag_and_clear(self):
        monitor, clock, _, events = make_monitor(straggler_min_heartbeats=2)
        monitor.begin_run([4, 4, 4], num_steps=100, step_s=1.0)
        for round_index in range(2):
            clock.advance(1.0)
            monitor.handle_event(0, 0, beat(0, 10 * (round_index + 1), rate=10.0))
            monitor.handle_event(1, 0, beat(1, 10 * (round_index + 1), rate=10.0))
            monitor.handle_event(2, 0, beat(2, round_index + 1, rate=1.0))
        assert monitor.stragglers() == (2,)
        assert monitor.counters["straggler.flags"] == 1.0
        # Recovery clears the flag and emits straggler_cleared.
        clock.advance(1.0)
        monitor.handle_event(2, 0, beat(2, 30, rate=10.0))
        assert monitor.stragglers() == ()
        names = [
            json.loads(line)["event"]
            for line in events.getvalue().splitlines()
        ]
        assert "straggler" in names and "straggler_cleared" in names

    def test_single_shard_is_never_a_straggler(self):
        monitor, clock, _, _ = make_monitor()
        monitor.begin_run([4], num_steps=100, step_s=1.0)
        for round_index in range(5):
            clock.advance(1.0)
            monitor.handle_event(0, 0, beat(0, round_index + 1, rate=0.001))
        assert monitor.stragglers() == ()

    def test_malformed_event_counted_not_raised(self):
        monitor, _, _, _ = make_monitor()
        monitor.begin_run([4], num_steps=10, step_s=1.0)
        monitor.handle_event(0, 0, ["not", "a", "dict"])
        monitor.handle_event(0, 0, {"no_event_key": True})
        assert monitor.counters["heartbeat.malformed"] == 2.0

    def test_watch_line_renders_progress(self):
        monitor, clock, watch, _ = make_monitor()
        monitor.begin_run([4, 4], num_steps=10, step_s=1.0)
        clock.advance(1.0)
        monitor.handle_event(0, 0, beat(0, steps_done=5, rate=20.0, num_steps=10))
        text = watch.getvalue()
        assert "[repro]" in text
        assert "dev-steps" in text
        assert "shards 0/2" in text
        monitor.on_task_complete(0, attempts=1)
        monitor.on_task_complete(1, attempts=1)
        monitor.end_run(ok=True)
        assert "100.0%" in watch.getvalue()
        assert watch.getvalue().endswith("\n")

    def test_event_stream_validates_end_to_end(self, tmp_path):
        path = tmp_path / "events.ndjson"
        clock = FakeClock()
        monitor = RunMonitor(events=path, clock=clock, watch_interval_s=0.0)
        monitor.begin_run([4, 4], num_steps=12, step_s=1.0)
        monitor.on_attempt_start(0, 0, inline=False)
        clock.advance(1.0)
        monitor.handle_event(0, 0, beat(0, steps_done=6, rate=8.0))
        monitor.on_task_complete(0, attempts=1)
        monitor.on_task_complete(1, attempts=1)
        monitor.end_run(ok=True)
        counts = validate_events_file(path)
        assert counts == {
            "run_start": 1,
            "launch": 1,
            "heartbeat": 1,
            "shard_complete": 2,
            "run_complete": 1,
        }

    def test_failure_dumps_flight_ring(self, tmp_path):
        monitor, _, _, events = make_monitor(flight_dir=tmp_path / "flight")
        monitor.begin_run([4, 4], num_steps=12, step_s=1.0)
        monitor.on_attempt_start(1, 0, inline=False)
        monitor.handle_event(1, 0, {"event": "round_start", "shard": 1,
                                    "attempt": 0, "round": 0})
        monitor.on_attempt_failure(1, 0, kind="died", reason="exit code 9")
        path = monitor.flight_path(1)
        assert path is not None
        payload = json.loads(open(path).read())
        assert payload["kind"] == "died"
        assert payload["last_round"] == 0
        assert monitor.counters["flight.dumps"] == 1.0
        failure = [
            json.loads(line)
            for line in events.getvalue().splitlines()
            if json.loads(line)["event"] == "attempt_failure"
        ]
        assert failure and failure[0]["flight"] == path

    def test_ensure_flight_dir_does_not_override(self, tmp_path):
        monitor = RunMonitor(flight_dir=tmp_path / "explicit")
        monitor.ensure_flight_dir(tmp_path / "fallback")
        assert monitor.flight_dir.endswith("explicit")
        bare = RunMonitor()
        assert bare.flight_dir is None
        bare.ensure_flight_dir(tmp_path / "fallback")
        assert bare.flight_dir.endswith("fallback")


# ----------------------------------------------------------------------
# Monitored runs are bit-identical to unmonitored ones
# ----------------------------------------------------------------------
class TestMonitoredBitIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_fleet_matches_unmonitored(
        self, trained_pipeline, population, references, num_shards, dtype
    ):
        monitor, _, watch, events = make_monitor(heartbeat_s=3.0)
        run = ShardedFleetSimulator(
            trained_pipeline, dtype=dtype, monitor=monitor
        ).run(population, num_shards=num_shards)
        reference = references[dtype]
        assert len(run.result.traces) == len(reference.traces)
        for left, right in zip(run.result.traces, reference.traces):
            assert traces_equal(left, right)
        assert (
            run.telemetry.to_dict()
            == FleetTelemetry.from_result(reference).to_dict()
        )
        # The monitor actually observed the run.
        lines = [json.loads(line) for line in events.getvalue().splitlines()]
        counts: dict = {}
        for line in lines:
            counts[line["event"]] = counts.get(line["event"], 0) + 1
        assert counts["run_start"] == 1
        assert counts["run_complete"] == 1
        assert counts["shard_complete"] == num_shards
        assert counts["heartbeat"] >= num_shards
        assert "[repro]" in watch.getvalue()

    def test_heartbeat_interval_override_is_transparent(
        self, trained_pipeline, population, references
    ):
        """A 1-tick heartbeat maximally sub-segments the run; traces
        still match, only the event count changes."""
        monitor, _, _, events = make_monitor(heartbeat_s=1.0)
        run = ShardedFleetSimulator(
            trained_pipeline, heartbeat_s=1.0, monitor=monitor
        ).run(population, num_shards=2)
        for left, right in zip(
            run.result.traces, references["float64"].traces
        ):
            assert traces_equal(left, right)
        beats = sum(
            1
            for line in events.getvalue().splitlines()
            if json.loads(line)["event"] == "heartbeat"
        )
        assert beats >= 8  # every simulated step on every shard

    def test_monitored_metered_run_folds_monitor_counters(
        self, trained_pipeline, population, references
    ):
        registry = MetricsRegistry()
        monitor, _, _, _ = make_monitor(heartbeat_s=3.0)
        run = ShardedFleetSimulator(
            trained_pipeline, metrics=registry, monitor=monitor
        ).run(population, num_shards=2)
        for left, right in zip(
            run.result.traces, references["float64"].traces
        ):
            assert traces_equal(left, right)
        assert run.metrics is not None
        assert run.metrics.counters["heartbeat.emitted"] >= 2.0
        assert (
            run.metrics.counters["heartbeat.received"]
            == run.metrics.counters["heartbeat.emitted"]
        )

    def test_campaign_matches_unmonitored(self, trained_pipeline, population):
        variants = variant_grid(stability_thresholds=(10, 30))
        baseline = CampaignRunner(trained_pipeline, variants).run(population)
        monitor, _, _, events = make_monitor(heartbeat_s=3.0)
        monitored = CampaignRunner(
            trained_pipeline, variants, monitor=monitor
        ).run(population)
        for got, want in zip(monitored.telemetries, baseline.telemetries):
            assert got.to_dict() == want.to_dict()
        names = {
            json.loads(line)["event"]
            for line in events.getvalue().splitlines()
        }
        assert {"run_start", "heartbeat", "run_complete"} <= names


# ----------------------------------------------------------------------
# Crash flight dumps under injected faults
# ----------------------------------------------------------------------
class TestFlightDumps:
    def test_injected_kill_leaves_a_dump(
        self, trained_pipeline, population, references, tmp_path
    ):
        """A chaos kill with a checkpoint dir but no explicit monitor
        still writes a flight dump naming the shard, round and attempt
        — and the run recovers bit-identically."""
        run = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            backoff_base_s=0.0,
            checkpoint_dir=tmp_path / "ckpt",
            round_s=6.0,
            fault_plan="kill:shard=1,round=0",
        ).run(population)
        for left, right in zip(
            run.result.traces, references["float64"].traces
        ):
            assert traces_equal(left, right)
        assert run.retries == 1
        dump = tmp_path / "ckpt" / "flight_shard_0001_attempt_00.json"
        assert dump.exists()
        payload = json.loads(dump.read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["shard"] == 1
        assert payload["attempt"] == 0
        assert payload["kind"] == "died"
        assert payload["last_round"] == 0
        assert any(
            event["event"] == "round_start" for event in payload["events"]
        )

    def test_exhausted_retries_reference_the_dump(
        self, trained_pipeline, population, tmp_path
    ):
        simulator = ShardedFleetSimulator(
            trained_pipeline,
            num_shards=2,
            max_retries=1,
            backoff_base_s=0.0,
            inline_last_resort=False,
            flight_dir=tmp_path / "flight",
            fault_plan="kill:shard=1,round=*,attempts=*",
        )
        with pytest.raises(ShardExecutionError) as excinfo:
            simulator.run(population)
        assert excinfo.value.flight_path is not None
        assert "flight recording:" in str(excinfo.value)
        payload = json.loads(open(excinfo.value.flight_path).read())
        assert payload["shard"] == 1
        assert payload["kind"] == "died"

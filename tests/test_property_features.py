"""Property-based tests for feature extraction and signal models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activities import Activity
from repro.core.features import FeatureExtractor
from repro.datasets.synthetic import default_activity_profiles

#: Reasonable sampling rates, including every Table I rate.
sampling_rates = st.sampled_from([6.25, 12.5, 25.0, 50.0, 100.0])

#: Window sample counts large enough for feature extraction.
sample_counts = st.integers(min_value=4, max_value=256)

#: Bounded finite accelerometer values (m/s^2 within +/-4 g).
acceleration_values = st.floats(
    min_value=-39.0, max_value=39.0, allow_nan=False, allow_infinity=False
)


@st.composite
def windows(draw):
    """Random raw accelerometer windows."""
    count = draw(sample_counts)
    flat = draw(
        st.lists(acceleration_values, min_size=count * 3, max_size=count * 3)
    )
    return np.array(flat, dtype=float).reshape(count, 3)


class TestFeatureExtractionProperties:
    @given(window=windows(), rate=sampling_rates)
    @settings(max_examples=40, deadline=None)
    def test_vector_size_independent_of_input(self, window, rate):
        extractor = FeatureExtractor()
        features = extractor.extract(window, rate)
        assert features.shape == (extractor.num_features,)

    @given(window=windows(), rate=sampling_rates)
    @settings(max_examples=40, deadline=None)
    def test_features_always_finite(self, window, rate):
        features = FeatureExtractor().extract(window, rate)
        assert np.isfinite(features).all()

    @given(window=windows(), rate=sampling_rates)
    @settings(max_examples=40, deadline=None)
    def test_std_and_band_features_non_negative(self, window, rate):
        features = FeatureExtractor().extract(window, rate)
        assert (features[3:] >= -1e-12).all()

    @given(window=windows(), rate=sampling_rates, shift=st.floats(-20.0, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_constant_offset_only_moves_means(self, window, rate, shift):
        """Adding a constant to the signal must not change std or FFT features."""
        extractor = FeatureExtractor()
        base = extractor.extract(window, rate)
        shifted = extractor.extract(window + shift, rate)
        np.testing.assert_allclose(shifted[:3], base[:3] + shift, atol=1e-8)
        np.testing.assert_allclose(shifted[3:], base[3:], atol=1e-8)

    @given(window=windows(), rate=sampling_rates, gain=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_scales_non_mean_features_linearly(self, window, rate, gain):
        """std and spectral magnitudes are homogeneous of degree one."""
        extractor = FeatureExtractor()
        centered = window - window.mean(axis=0, keepdims=True)
        base = extractor.extract(centered, rate)
        scaled = extractor.extract(centered * gain, rate)
        np.testing.assert_allclose(scaled[3:], base[3:] * gain, rtol=1e-6, atol=1e-8)

    @given(
        n_features=st.integers(min_value=1, max_value=8),
        mode=st.sampled_from(["bands", "bins"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_declared_size_matches_output(self, n_features, mode):
        extractor = FeatureExtractor(n_fourier_features=n_features, fourier_mode=mode)
        window = np.random.default_rng(0).normal(size=(40, 3))
        features = extractor.extract(window, 25.0)
        assert features.shape == (extractor.num_features,)
        assert len(extractor.feature_names()) == extractor.num_features


class TestSignalModelProperties:
    @given(
        activity=st.sampled_from(list(Activity)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        window_s=st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_windowed_average_bounded_by_peak(self, activity, seed, window_s):
        """Averaging can never exceed the signal's peak amplitude envelope."""
        realization = default_activity_profiles()[activity].realize(seed)
        times = np.linspace(1.0, 4.0, 64)
        windowed = realization.evaluate_windowed(times, window_s)
        bound = np.abs(realization.offset).max() + realization.peak_amplitude + 1e-9
        assert np.abs(windowed).max() <= bound

    @given(
        activity=st.sampled_from(list(Activity)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_realizations_are_deterministic_in_seed(self, activity, seed):
        profile = default_activity_profiles()[activity]
        times = np.linspace(0.0, 2.0, 32)
        a = profile.realize(seed).evaluate(times)
        b = profile.realize(seed).evaluate(times)
        np.testing.assert_allclose(a, b)

    @given(
        activity=st.sampled_from(list(Activity)),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_longer_window_never_increases_variance(self, activity, seed):
        """Averaging is a low-pass operation: variance must not grow.

        A small relative slack absorbs the finite sampling grid: the
        windowed signal is also time-shifted by half the window, so the
        sampled phases differ slightly between the two evaluations.
        """
        realization = default_activity_profiles()[activity].realize(seed)
        times = np.linspace(2.0, 6.0, 200)
        short = realization.evaluate_windowed(times, 0.01)
        long = realization.evaluate_windowed(times, 0.4)
        assert long.std() <= short.std() * 1.02 + 1e-6

"""Tests for process-sharded fleet simulation (:mod:`repro.exec.sharding`).

The sharded engine's contract: for any shard count, the merged traces
and telemetry are identical to a single-process run (and, through the
engine equivalence, to the per-device sequential reference).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    FleetTelemetry,
    ShardedFleetSimulator,
    traces_equal,
)


@pytest.fixture(scope="module")
def population():
    return DevicePopulation.generate(10, duration_s=12.0, master_seed=77)


class TestPlanning:
    def test_contiguous_near_equal_split(self, trained_pipeline, population):
        simulator = ShardedFleetSimulator(trained_pipeline)
        shards = simulator.plan(population, num_shards=3)
        assert [len(shard) for shard in shards] == [4, 3, 3]
        flattened = [profile for shard in shards for profile in shard]
        assert [p.device_id for p in flattened] == list(range(10))

    def test_shard_count_capped_at_population(self, trained_pipeline, population):
        simulator = ShardedFleetSimulator(trained_pipeline)
        shards = simulator.plan(population, num_shards=50)
        assert len(shards) == len(population)
        assert all(len(shard) == 1 for shard in shards)

    def test_invalid_shard_count_rejected(self, trained_pipeline, population):
        simulator = ShardedFleetSimulator(trained_pipeline)
        with pytest.raises(ValueError):
            simulator.plan(population, num_shards=0)

    def test_empty_population_rejected(self, trained_pipeline):
        simulator = ShardedFleetSimulator(trained_pipeline)
        with pytest.raises(ValueError):
            simulator.run([])

    def test_invalid_engine_settings_rejected_eagerly(self, trained_pipeline):
        with pytest.raises(ValueError):
            ShardedFleetSimulator(trained_pipeline, features="magic")


class TestShardCountInvariance:
    def test_merged_output_invariant_to_shard_count(
        self, trained_pipeline, population
    ):
        """1, 2 and 4 shards produce identical merged traces and
        telemetry, equal to the unsharded batched run."""
        reference = FleetSimulator(trained_pipeline).run(population)
        reference_telemetry = FleetTelemetry.from_result(reference)
        simulator = ShardedFleetSimulator(trained_pipeline)
        for num_shards in (1, 2, 4):
            run = simulator.run(population, num_shards=num_shards)
            assert run.num_shards == num_shards
            assert sum(run.shard_sizes) == len(population)
            assert run.result.mode == "sharded"
            for left, right in zip(run.result.traces, reference.traces):
                assert traces_equal(left, right)
            assert run.telemetry.to_dict() == reference_telemetry.to_dict()

    def test_matches_sequential_reference(self, trained_pipeline, population):
        sequential = FleetSimulator(trained_pipeline).run_sequential(population)
        run = ShardedFleetSimulator(trained_pipeline).run(
            population, num_shards=2
        )
        for left, right in zip(run.result.traces, sequential.traces):
            assert traces_equal(left, right)

    def test_duration_truncation(self, trained_pipeline, population):
        run = ShardedFleetSimulator(trained_pipeline).run(
            population, duration_s=5.0, num_shards=2
        )
        assert all(len(trace) == 5 for trace in run.result.traces)

    def test_excessive_duration_rejected(self, trained_pipeline, population):
        with pytest.raises(ValueError):
            ShardedFleetSimulator(trained_pipeline).run(
                population, duration_s=60.0, num_shards=2
            )


class TestStragglerStats:
    def test_skew_is_one_for_degenerate_all_zero_timings(
        self, trained_pipeline, population
    ):
        """All-zero shard timings (clock resolution on trivial shards)
        must report the balanced skew 1.0, not NaN."""
        run = ShardedFleetSimulator(trained_pipeline).run(
            population, num_shards=2
        )
        degenerate = replace(run, shard_elapsed_s=(0.0, 0.0))
        stats = degenerate.straggler_stats()
        assert stats["skew"] == 1.0
        assert stats["mean_s"] == 0.0
        assert stats["spread_s"] == 0.0

    def test_skew_still_real_for_nonzero_timings(
        self, trained_pipeline, population
    ):
        run = ShardedFleetSimulator(trained_pipeline).run(
            population, num_shards=2
        )
        patched = replace(run, shard_elapsed_s=(1.0, 3.0))
        assert patched.straggler_stats()["skew"] == pytest.approx(1.5)

    def test_empty_without_per_shard_times(
        self, trained_pipeline, population
    ):
        run = ShardedFleetSimulator(trained_pipeline).run(
            population, num_shards=2
        )
        assert replace(run, shard_elapsed_s=()).straggler_stats() == {}


class TestTelemetryMerge:
    def test_merge_equals_from_result(self, trained_pipeline, population):
        simulator = ShardedFleetSimulator(trained_pipeline)
        run = simulator.run(population, num_shards=3)
        direct = FleetTelemetry.from_result(run.result)
        assert run.telemetry.to_dict() == direct.to_dict()

    def test_merge_reorders_by_device_id(self, trained_pipeline, population):
        result = FleetSimulator(trained_pipeline).run(population)
        telemetry = FleetTelemetry.from_result(result)
        front = FleetTelemetry(telemetry.reports[:4])
        back = FleetTelemetry(telemetry.reports[4:])
        merged = FleetTelemetry.merge([back, front])  # deliberately reversed
        assert [r.device_id for r in merged.reports] == list(range(10))
        assert merged.to_dict() == telemetry.to_dict()

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            FleetTelemetry.merge([])

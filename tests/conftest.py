"""Shared fixtures for the test suite.

The expensive artefacts (trained pipelines, window datasets) are built
once per session at a deliberately small scale so the whole suite stays
fast while still exercising the real training and simulation code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.activities import Activity
from repro.core.adasense import AdaSense
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG
from repro.core.pipeline import HarPipeline
from repro.datasets.synthetic import SyntheticSignalGenerator
from repro.datasets.windows import WindowDataset, WindowDatasetBuilder
from repro.sensors.imu import NoiseModel, SimulatedAccelerometer


#: Seed shared by the session fixtures so failures are reproducible.
SESSION_SEED = 1234


@pytest.fixture(scope="session")
def signal_generator() -> SyntheticSignalGenerator:
    """A signal generator with the default activity profiles."""
    return SyntheticSignalGenerator(seed=SESSION_SEED)


@pytest.fixture(scope="session")
def dataset_builder() -> WindowDatasetBuilder:
    """A window-dataset builder with default noise and features."""
    return WindowDatasetBuilder(seed=SESSION_SEED)


@pytest.fixture(scope="session")
def small_dataset(dataset_builder: WindowDatasetBuilder) -> WindowDataset:
    """A small multi-configuration dataset (4 configs x 6 activities x 10)."""
    return dataset_builder.build(
        configs=DEFAULT_SPOT_STATES, windows_per_activity_per_config=16
    )


@pytest.fixture(scope="session")
def trained_pipeline(small_dataset: WindowDataset) -> HarPipeline:
    """A pipeline trained on the small session dataset."""
    return HarPipeline.train(small_dataset, hidden_units=(24,), seed=SESSION_SEED)


@pytest.fixture(scope="session")
def trained_system(trained_pipeline: HarPipeline) -> AdaSense:
    """An AdaSense facade wrapping the session pipeline."""
    return AdaSense(pipeline=trained_pipeline)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh, seeded random generator for per-test randomness."""
    return np.random.default_rng(SESSION_SEED)


@pytest.fixture()
def walk_sensor(signal_generator: SyntheticSignalGenerator) -> SimulatedAccelerometer:
    """An accelerometer attached to a single walking bout."""
    realization = signal_generator.realize(Activity.WALK, rng=SESSION_SEED)
    return SimulatedAccelerometer(signal=realization, seed=SESSION_SEED)


@pytest.fixture()
def sit_window(dataset_builder: WindowDatasetBuilder) -> np.ndarray:
    """A raw 2-second sitting window at the full-power configuration."""
    return dataset_builder.acquire_raw_window(Activity.SIT, HIGH_POWER_CONFIG)


@pytest.fixture()
def walk_window(dataset_builder: WindowDatasetBuilder) -> np.ndarray:
    """A raw 2-second walking window at the full-power configuration."""
    return dataset_builder.acquire_raw_window(Activity.WALK, HIGH_POWER_CONFIG)

"""Benchmark: Table I — the 16 explored sensor configurations.

Regenerates Table I annotated with the power model's operation mode,
duty cycle and current, and checks the structural properties the rest of
the evaluation relies on.
"""

from __future__ import annotations

from _bench_utils import print_report

from repro.core.config import DEFAULT_SPOT_STATES, TABLE1_CONFIGS
from repro.experiments.table1 import run_table1


def test_table1_configurations(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print_report("Table I — accelerometer configurations", result.format_table())

    assert len(result.rows) == 16
    assert {row.name for row in result.rows} == {c.name for c in TABLE1_CONFIGS}

    # The four SPOT states must be strictly ordered by modelled current.
    currents = [result.row_for(config.name).current_ua for config in DEFAULT_SPOT_STATES]
    assert all(a > b for a, b in zip(currents, currents[1:]))

    # The full-power configuration saturates its duty cycle (normal mode),
    # the lowest-power configuration does not.
    assert result.row_for("F100_A128").mode == "normal"
    assert result.row_for("F12.5_A8").mode == "low_power"

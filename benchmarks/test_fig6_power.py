"""Benchmark: Fig. 6b — sensor power versus stability threshold.

Regenerates the power panel of the stability-threshold sweep.  The
paper's shape: power grows with the threshold, approaches the baseline at
60 seconds, and averaged over the sweep SPOT saves about 60 % while SPOT
with confidence saves about 69 %.
"""

from __future__ import annotations

from _bench_utils import print_report

from repro.experiments.fig6_power_accuracy import SPOT, SPOT_CONFIDENCE
from test_fig6_accuracy import compute_fig6


def test_fig6b_power_vs_stability_threshold(benchmark, systems, scale):
    result = benchmark.pedantic(
        compute_fig6, args=(systems, scale), rounds=1, iterations=1
    )
    print_report(
        "Fig. 6b — total sensor power vs stability threshold", result.format_table()
    )

    baseline_current = result.baseline_current_ua()

    for scenario in (SPOT, SPOT_CONFIDENCE):
        thresholds, _, currents = result.series(scenario)
        # Power grows with the stability threshold ...
        assert result.power_trend_is_increasing(scenario)
        # ... never exceeds the always-on baseline ...
        assert (currents <= baseline_current + 1e-6).all()
        # ... and climbs most of the way back towards it at the top of the
        # sweep (the paper's curve meets the baseline at 60 s; with the
        # simulated schedules the confidence-gated controller still finds
        # some savings there, so the bound is deliberately loose).
        assert currents[-1] > 0.55 * baseline_current
        assert currents[-1] > 1.5 * currents[0]

    # Averaged over the sweep both controllers save a large fraction of the
    # sensor power (paper: 60 % and 69 %), and the confidence-gated variant
    # saves at least as much as plain SPOT.
    spot_saving = result.average_power_saving(SPOT)
    confidence_saving = result.average_power_saving(SPOT_CONFIDENCE)
    assert spot_saving > 0.35
    assert confidence_saving > 0.45
    assert confidence_saving >= spot_saving - 0.02

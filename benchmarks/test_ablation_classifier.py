"""Benchmark: ablation of the shared classifier's capacity.

Varies the hidden-layer width of the shared MLP and reports accuracy
against the classifier's parameter count and storage footprint — the
trade-off a wearable deployment actually tunes (the device only has a few
KB of memory for weights, Section V-D).
"""

from __future__ import annotations

from _bench_utils import BENCH_SEED, print_report

from repro.experiments.ablations import run_classifier_ablation


def test_classifier_capacity_ablation(benchmark, scale):
    windows = 30 if scale == "quick" else 100
    result = benchmark.pedantic(
        run_classifier_ablation,
        kwargs={"windows_per_activity_per_config": windows, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print_report("Ablation — hidden-layer width of the shared classifier", result.format_table())

    # Memory grows monotonically with the hidden width.
    widths = [row.hidden_units for row in result.rows]
    memories = [row.memory_bytes for row in result.rows]
    assert all(a < b for a, b in zip(memories, memories[1:]))
    assert widths == sorted(widths)

    # Even the largest variant stays within a wearable-friendly budget and
    # every variant clears a usable accuracy bar.
    assert max(memories) < 32 * 1024
    assert all(row.accuracy > 0.7 for row in result.rows)

    # Capacity beyond the paper-sized classifier buys little accuracy.
    accuracy_32 = next(row.accuracy for row in result.rows if row.hidden_units == 32)
    best = max(row.accuracy for row in result.rows)
    assert accuracy_32 >= best - 0.05

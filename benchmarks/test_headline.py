"""Benchmark: the headline claim of the abstract.

"The introduced approach achieves 69 % reduction in the power consumption
of the sensor with less than 1.5 % decrease in the activity recognition
accuracy."  Both numbers come out of the Fig. 6 sweep; this benchmark
reduces the sweep to exactly those two quantities for SPOT and for SPOT
with confidence.
"""

from __future__ import annotations

from _bench_utils import print_report

from repro.experiments.headline import run_headline
from test_fig6_accuracy import compute_fig6


def test_headline_power_reduction_and_accuracy_loss(benchmark, systems, scale):
    fig6 = compute_fig6(systems, scale)
    result = benchmark.pedantic(
        run_headline, kwargs={"fig6": fig6}, rounds=1, iterations=1
    )
    print_report("Headline — power reduction vs accuracy loss", result.format_table())

    # Large average power reduction for both controllers, with the
    # confidence-gated controller at least matching plain SPOT (the paper
    # reports 60 % and 69 %).
    assert result.spot_power_saving > 0.35
    assert result.spot_confidence_power_saving > 0.45
    assert result.spot_confidence_power_saving >= result.spot_power_saving - 0.02

    # Negligible accuracy loss once the stability threshold is >= 20 s
    # (paper: under 1.5 percentage points).
    assert result.spot_accuracy_drop < 0.03
    assert result.spot_confidence_accuracy_drop < 0.03

"""Helpers shared by the benchmark modules and the profiling script.

Kept separate from ``conftest.py`` so benchmark files can import them
explicitly (``from _bench_utils import print_report``) without relying on
how pytest names conftest modules.  ``scripts/profile_fleet.py`` imports
:data:`RECIPES` from here too, so the benchmarks and the profiler can
never disagree about what a named execution recipe means.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.common import Scale

#: Seed shared by every benchmark so printed tables are reproducible.
BENCH_SEED = 2020

#: The execution recipes of successive PRs, by bench name.  Each maps
#: to ``FleetSimulator`` keyword arguments plus the trace mode
#: (``sequential`` shares the PR 1 engine settings but runs the
#: per-device reference loop).
RECIPES: Dict[str, Dict[str, str]] = {
    "sequential": dict(
        features="exact", sensing="per_device", controllers="per_object",
        noise="per_device", trace="full",
    ),
    "batched": dict(
        features="exact", sensing="per_device", controllers="per_object",
        noise="per_device", trace="full",
    ),
    "incremental": dict(
        features="incremental", sensing="stacked", controllers="per_object",
        noise="per_device", trace="full",
    ),
    "controller_bank": dict(
        features="incremental", sensing="stacked", controllers="bank",
        noise="per_device", trace="summary",
    ),
    "batched_noise": dict(
        features="incremental", sensing="stacked", controllers="bank",
        noise="batched", trace="summary",
    ),
    "float32": dict(
        features="incremental", sensing="stacked", controllers="bank",
        noise="batched", dtype="float32", trace="summary",
    ),
    "campaign": dict(
        features="incremental", sensing="stacked", controllers="bank",
        noise="batched", trace="summary", campaign_variants="16",
    ),
}

#: RECIPES keys that configure the campaign layer rather than the
#: fleet simulator; :func:`recipe_settings` strips them so every
#: recipe's kwargs can be splatted straight into ``FleetSimulator`` /
#: ``CampaignRunner``.
CAMPAIGN_KEYS: Tuple[str, ...] = ("campaign_variants",)


def recipe_settings(name: str) -> Tuple[Dict[str, str], str]:
    """Split a named recipe into (simulator kwargs, trace mode)."""
    recipe = dict(RECIPES[name])
    trace = recipe.pop("trace")
    for key in CAMPAIGN_KEYS:
        recipe.pop(key, None)
    return recipe, trace


def campaign_variant_count(name: str = "campaign") -> int:
    """Grid size of a campaign recipe (1 for plain fleet recipes)."""
    return int(RECIPES[name].get("campaign_variants", "1"))


def run_metadata(**knobs) -> Dict[str, object]:
    """Provenance of one benchmark run: machine, toolchain, mode knobs.

    Stored alongside the timings in ``BENCH_fleet.json`` so a historical
    number can always be traced back to the hardware and library
    versions that produced it.
    """
    meta: Dict[str, object] = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
    }
    meta.update(knobs)
    return meta


def bench_scale() -> Scale:
    """The experiment scale selected via ``REPRO_BENCH_SCALE``.

    ``quick`` (default) keeps the whole harness in the minutes range;
    ``paper`` regenerates the figures at a fidelity comparable to the
    paper's 7300-window dataset.
    """
    value = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if value not in ("quick", "paper"):
        raise ValueError(
            f"REPRO_BENCH_SCALE must be 'quick' or 'paper', got {value!r}"
        )
    return value  # type: ignore[return-value]


#: Append-only ledger of benchmark outcomes across PRs, one JSON
#: object per line (read back by ``scripts/bench_report.py``).
BENCH_HISTORY_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
)


def git_sha() -> Optional[str]:
    """The short commit hash of HEAD, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def append_bench_history(
    kind: str,
    record: Dict[str, object],
    path: "Path | str" = BENCH_HISTORY_PATH,
) -> Dict[str, object]:
    """Append one timestamped benchmark record to the history ledger.

    Each line carries its own provenance (UTC timestamp, git sha, the
    record ``kind``) so the devices/s trend and the gate ratios can be
    tracked across commits without diffing ``BENCH_fleet.json``
    snapshots.  Returns the entry that was written.
    """
    entry: Dict[str, object] = {
        "ts": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "kind": str(kind),
    }
    entry.update(record)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def print_report(title: str, body: str) -> None:
    """Print a paper-artefact report with a visible header.

    pytest captures stdout by default; run with ``-s`` to stream the
    tables, or rely on the captured-output section of a failing test.
    """
    rule = "=" * 72
    print(f"\n{rule}\n{title}\n{rule}\n{body}\n")

"""Helpers shared by the benchmark modules.

Kept separate from ``conftest.py`` so benchmark files can import them
explicitly (``from _bench_utils import print_report``) without relying on
how pytest names conftest modules.
"""

from __future__ import annotations

import os

from repro.experiments.common import Scale

#: Seed shared by every benchmark so printed tables are reproducible.
BENCH_SEED = 2020


def bench_scale() -> Scale:
    """The experiment scale selected via ``REPRO_BENCH_SCALE``.

    ``quick`` (default) keeps the whole harness in the minutes range;
    ``paper`` regenerates the figures at a fidelity comparable to the
    paper's 7300-window dataset.
    """
    value = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if value not in ("quick", "paper"):
        raise ValueError(
            f"REPRO_BENCH_SCALE must be 'quick' or 'paper', got {value!r}"
        )
    return value  # type: ignore[return-value]


def print_report(title: str, body: str) -> None:
    """Print a paper-artefact report with a visible header.

    pytest captures stdout by default; run with ``-s`` to stream the
    tables, or rely on the captured-output section of a failing test.
    """
    rule = "=" * 72
    print(f"\n{rule}\n{title}\n{rule}\n{body}\n")

"""Benchmark: Fig. 2 — accuracy/current trade-off and Pareto front.

Regenerates the design-space exploration over all 16 Table I
configurations and prints each operating point plus the emergent Pareto
front.  The assertions target the figure's shape: the full-power
configuration delivers the best accuracy, more current broadly buys more
accuracy, and the extreme points of the trade-off are Pareto-optimal.
"""

from __future__ import annotations

from _bench_utils import BENCH_SEED, print_report

from repro.core.config import HIGH_POWER_CONFIG
from repro.experiments.fig2_dse import run_fig2


def test_fig2_design_space_exploration(benchmark, scale):
    windows = 60 if scale == "quick" else 120
    result = benchmark.pedantic(
        run_fig2,
        kwargs={"windows_per_activity": windows, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print_report(
        "Fig. 2 — sensor-configuration accuracy/current trade-off", result.format_table()
    )

    assert len(result.evaluations) == 16

    # Shape property 1: the full-power configuration is (one of) the most
    # accurate operating points.
    best_accuracy = max(item.accuracy for item in result.evaluations)
    full_power = result.dse.evaluation_for(HIGH_POWER_CONFIG)
    assert full_power.accuracy >= best_accuracy - 0.02

    # Shape property 2: accuracy broadly increases with current.
    assert result.accuracy_current_correlation > 0.25

    # Shape property 3: the cheapest configuration is on the front and at
    # least half of the paper's chosen states are Pareto-optimal here.
    cheapest = min(result.evaluations, key=lambda item: item.current_ua)
    assert cheapest.name in result.front_names
    assert result.paper_front_recall() >= 0.5

"""Throughput benchmark: batched fleet engine vs the sequential loop.

The fleet engine's reason to exist is turning an O(N x per-device-
Python-loop) workload into a handful of vectorized calls per tick.  This
module measures both paths on the same population in device-seconds of
simulated time per wall-clock second, prints the comparison, and guards
the speedup: at fleet scale (>= 50 devices) batched simulation must be
at least as fast as the sequential reference.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_SEED, print_report

from repro.core.adasense import AdaSense
from repro.fleet import DevicePopulation, FleetSimulator, traces_equal

#: Fleet size for the guard; the issue requires >= 50 devices.
NUM_DEVICES = 50

#: Simulated seconds per device (kept short: the guard compares
#: *relative* speed, and 50 x 30 = 1500 device-seconds is plenty).
DURATION_S = 30.0


@pytest.fixture(scope="module")
def fleet_setup():
    system = AdaSense.train(windows_per_activity_per_config=16, seed=BENCH_SEED)
    population = DevicePopulation.generate(
        NUM_DEVICES, duration_s=DURATION_S, master_seed=BENCH_SEED
    )
    return FleetSimulator(system.pipeline), population


def test_fleet_throughput_batched_vs_sequential(benchmark, fleet_setup):
    simulator, population = fleet_setup

    batched = benchmark.pedantic(
        simulator.run, args=(population,), rounds=1, iterations=1, warmup_rounds=1
    )
    sequential = simulator.run_sequential(population)

    speedup = sequential.elapsed_s / batched.elapsed_s
    print_report(
        "Fleet throughput — batched vs sequential simulation",
        "\n".join(
            [
                f"devices                : {batched.num_devices}",
                f"simulated device-time  : {batched.device_seconds:.0f} s",
                (
                    f"batched                : {batched.elapsed_s:8.3f} s wall "
                    f"({batched.throughput_device_seconds_per_s:8.0f} device-s/s)"
                ),
                (
                    f"sequential             : {sequential.elapsed_s:8.3f} s wall "
                    f"({sequential.throughput_device_seconds_per_s:8.0f} device-s/s)"
                ),
                f"speedup                : {speedup:8.2f}x",
            ]
        ),
    )

    # Sanity: both engines simulated the same fleet...
    assert sequential.num_devices == batched.num_devices == NUM_DEVICES
    assert batched.device_seconds == sequential.device_seconds
    # ...and the batched engine must not be slower at fleet scale.
    assert batched.elapsed_s <= sequential.elapsed_s, (
        f"batched fleet simulation took {batched.elapsed_s:.3f} s but the "
        f"sequential loop took {sequential.elapsed_s:.3f} s for "
        f"{NUM_DEVICES} devices"
    )


def test_fleet_batched_results_match_sequential(fleet_setup):
    """The speedup must not come at the cost of fidelity: spot-check a
    few devices for bit-identical traces at benchmark scale."""
    simulator, population = fleet_setup
    subset = list(population)[:5]
    batched = simulator.run(subset)
    sequential = simulator.run_sequential(subset)
    for left, right in zip(batched.traces, sequential.traces):
        assert traces_equal(left, right)

"""Throughput benchmark: the fleet execution paths against each other.

Four ways of simulating the same 50-device population are measured in
device-seconds of simulated time per wall-clock second and written to
``BENCH_fleet.json`` at the repository root so the performance
trajectory is tracked across PRs:

``sequential``
    The per-device reference loop (exact features, scalar sensing).
``batched``
    Lock-step batched classification with exact full-window features
    and per-device sensing — the PR 1 fleet engine's execution recipe.
``incremental``
    The default execution core: stacked multi-device sensing plus
    chunk-cached incremental feature extraction.
``sharded``
    The incremental engine split across worker processes (bounded by
    the available cores, so on a single-core runner this mostly
    measures process overhead).

Two guards are asserted: batched must not be slower than sequential
(the PR 1 claim), and the incremental path must deliver at least 1.5x
the batched throughput (this PR's claim).  A separate test verifies the
speed does not cost fidelity: incremental and sharded runs must be
bit-identical to the sequential reference for the full population.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from _bench_utils import BENCH_SEED, print_report

from repro.core.adasense import AdaSense
from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    FleetTelemetry,
    ShardedFleetSimulator,
    traces_equal,
)

#: Fleet size for the guards; the issue requires >= 50 devices.
NUM_DEVICES = 50

#: Simulated seconds per device (kept short: the guards compare
#: *relative* speed, and 50 x 30 = 1500 device-seconds is plenty).
DURATION_S = 30.0

#: Required speedup of the incremental execution core over the PR 1
#: style batched path.  Overridable for noisy shared runners (CI sets a
#: lower bar via REPRO_MIN_INCREMENTAL_SPEEDUP; the default is the
#: guarantee tracked on dedicated hardware).
MIN_INCREMENTAL_SPEEDUP = float(
    os.environ.get("REPRO_MIN_INCREMENTAL_SPEEDUP", "1.5")
)

#: Where the machine-readable throughput report lands.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


@pytest.fixture(scope="module")
def fleet_setup():
    system = AdaSense.train(windows_per_activity_per_config=16, seed=BENCH_SEED)
    population = DevicePopulation.generate(
        NUM_DEVICES, duration_s=DURATION_S, master_seed=BENCH_SEED
    )
    return system.pipeline, population


def _mode_entry(result) -> dict:
    return {
        "elapsed_s": result.elapsed_s,
        "device_seconds_per_s": result.throughput_device_seconds_per_s,
        "devices_per_s": result.num_devices / result.elapsed_s,
    }


def _best_of(runner, rounds: int = 2):
    """Warm a mode up once, then keep its fastest timed round.

    Every mode gets the same treatment — one discarded warm-up run
    followed by ``rounds`` timed runs — so no path is compared warm
    against another path's cold first call, and a single scheduling
    blip on a loaded CI runner cannot fail the hard throughput gates
    below.
    """
    runner()
    results = [runner() for _ in range(rounds)]
    return min(results, key=lambda result: result.elapsed_s)


def test_fleet_throughput_modes(benchmark, fleet_setup):
    pipeline, population = fleet_setup
    pr1_style = FleetSimulator(pipeline, features="exact", sensing="per_device")
    incremental_engine = FleetSimulator(pipeline)
    sharded_engine = ShardedFleetSimulator(pipeline)

    first_incremental = benchmark.pedantic(
        incremental_engine.run,
        args=(population,),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    incremental = min(
        (first_incremental, incremental_engine.run(population)),
        key=lambda result: result.elapsed_s,
    )
    batched = _best_of(lambda: pr1_style.run(population))
    sequential = _best_of(lambda: pr1_style.run_sequential(population))
    sharded_run = _best_of(lambda: sharded_engine.run(population))
    sharded = sharded_run.result

    report = {
        "num_devices": NUM_DEVICES,
        "duration_s": DURATION_S,
        "seed": BENCH_SEED,
        "modes": {
            "sequential": _mode_entry(sequential),
            "batched": _mode_entry(batched),
            "incremental": _mode_entry(incremental),
            "sharded": {
                **_mode_entry(sharded),
                "num_shards": sharded_run.num_shards,
                "used_processes": sharded_run.used_processes,
            },
        },
        "speedup_incremental_vs_batched": batched.elapsed_s / incremental.elapsed_s,
        "speedup_batched_vs_sequential": sequential.elapsed_s / batched.elapsed_s,
    }
    BENCH_JSON_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print_report(
        "Fleet throughput — execution paths over one 50-device population",
        "\n".join(
            [
                f"devices                : {NUM_DEVICES}",
                f"simulated device-time  : {incremental.device_seconds:.0f} s",
            ]
            + [
                (
                    f"{name:<23}: {result.elapsed_s:8.3f} s wall "
                    f"({result.throughput_device_seconds_per_s:8.0f} device-s/s)"
                )
                for name, result in (
                    ("sequential", sequential),
                    ("batched (PR 1 recipe)", batched),
                    ("incremental", incremental),
                    ("sharded", sharded),
                )
            ]
            + [
                (
                    "incremental vs batched : "
                    f"{report['speedup_incremental_vs_batched']:8.2f}x"
                ),
                f"report                 -> {BENCH_JSON_PATH.name}",
            ]
        ),
    )

    # Sanity: every engine simulated the same fleet...
    assert (
        sequential.num_devices
        == batched.num_devices
        == incremental.num_devices
        == sharded.num_devices
        == NUM_DEVICES
    )
    assert batched.device_seconds == sequential.device_seconds
    assert incremental.device_seconds == sequential.device_seconds
    # ...the batched engine must not be slower at fleet scale...
    assert batched.elapsed_s <= sequential.elapsed_s, (
        f"batched fleet simulation took {batched.elapsed_s:.3f} s but the "
        f"sequential loop took {sequential.elapsed_s:.3f} s for "
        f"{NUM_DEVICES} devices"
    )
    # ...and the incremental execution core must beat the PR 1 recipe.
    speedup = report["speedup_incremental_vs_batched"]
    assert speedup >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental throughput is only {speedup:.2f}x the batched path "
        f"(required: {MIN_INCREMENTAL_SPEEDUP}x) for {NUM_DEVICES} devices"
    )


def test_fleet_fast_paths_match_sequential_reference(fleet_setup):
    """The speedup must not cost fidelity: incremental and sharded runs
    are bit-identical to the per-device sequential reference for the
    whole 50-device population, and the sharded telemetry matches the
    telemetry of the sequential traces."""
    pipeline, population = fleet_setup
    simulator = FleetSimulator(pipeline)
    sequential = simulator.run_sequential(population)
    incremental = simulator.run(population)
    sharded_run = ShardedFleetSimulator(pipeline).run(population)

    for left, right in zip(incremental.traces, sequential.traces):
        assert traces_equal(left, right)
    for left, right in zip(sharded_run.result.traces, sequential.traces):
        assert traces_equal(left, right)
    assert (
        sharded_run.telemetry.to_dict()
        == FleetTelemetry.from_result(sequential).to_dict()
    )

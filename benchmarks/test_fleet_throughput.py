"""Throughput benchmark: the fleet execution paths against each other.

Two suites are measured and written to ``BENCH_fleet.json`` at the
repository root so the performance trajectory is tracked across PRs.

**Mode guards** (one 50-device population) compare the execution
recipes of successive PRs:

``sequential``
    The per-device reference loop (exact features, scalar sensing,
    per-object controllers).
``batched``
    Lock-step batched classification with exact full-window features
    and per-device sensing — the PR 1 fleet engine's execution recipe.
``incremental``
    The PR 2 execution core: stacked multi-device sensing plus
    chunk-cached incremental feature extraction, with per-object
    controller updates and full per-step traces.
``controller_bank``
    The PR 3 recipe: the PR 2 core plus the vectorized array-of-states
    controller bank and streaming (``trace="summary"``) telemetry — no
    per-device Python in the adapt phase and O(devices) memory.
``batched_noise``
    The PR 4 recipe: the controller-bank recipe plus the batched
    acquisition layer (``noise="batched"``) — pooled counter-based
    noise streams, fleet-wide ring sample storage and persistent
    per-device signal tables, removing the last per-device Python from
    the sense path.
``float32``
    This PR's recipe: the batched-noise recipe run in the
    single-precision compute lane (``dtype="float32"``) through a
    reusable :class:`~repro.fleet.engine.FleetRuntime`, so repeated
    runs also skip runtime construction and spectral-plan rebuilds.

**Scaling sweep**: the ``incremental``, ``controller_bank``,
``batched_noise`` and ``float32`` recipes are raced over growing
device counts (50 → 5 000 by default).  Three hard gates at the
largest count, where per-device Python dominates the per-tick budget:
the controller-bank recipe must deliver at least
``REPRO_MIN_BANK_SPEEDUP``× (default 1.3×) the PR 2 incremental
recipe's devices/s, the batched-noise recipe at least
``REPRO_MIN_NOISE_SPEEDUP``× (default 1.25×) the controller-bank
recipe's, and the float32 lane at least
``REPRO_MIN_FLOAT32_SPEEDUP``× (default 1.25×) the batched-noise
recipe's.

Set ``REPRO_BENCH_SMOKE=1`` (as CI does on shared runners) to run the
whole file in smoke mode: tiny populations, no thresholds, no
``BENCH_fleet.json`` rewrite — keeping the bench path exercised without
flaking on loaded machines.

A separate test verifies the speed does not cost fidelity: bank and
sharded runs must be bit-identical to the sequential reference, and
summary-mode telemetry must equal full-trace telemetry.
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

import pytest

from _bench_utils import (
    BENCH_SEED,
    append_bench_history,
    campaign_variant_count,
    print_report,
    recipe_settings,
    run_metadata,
)

from repro.core.adasense import AdaSense
from repro.exec import DTYPE_MODES
from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    FleetTelemetry,
    ShardedFleetSimulator,
    traces_equal,
)
from repro.obs import MetricsRegistry

#: Smoke mode: exercise the bench path without thresholds (CI runners).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Fleet size for the mode guards; the issue requires >= 50 devices.
NUM_DEVICES = 8 if SMOKE else 50

#: Simulated seconds per device (kept short: the guards compare
#: *relative* speed, and 50 x 30 = 1500 device-seconds is plenty).
DURATION_S = 10.0 if SMOKE else 30.0

#: Device counts of the scaling sweep (50 -> 5000).
SWEEP_DEVICES = (8, 16) if SMOKE else (50, 500, 5000)

#: Simulated seconds per device in the scaling sweep.
SWEEP_DURATION_S = 10.0 if SMOKE else 20.0

#: Required speedup of the incremental execution core over the PR 1
#: style batched path.  Overridable for noisy shared runners (CI sets a
#: lower bar via REPRO_MIN_INCREMENTAL_SPEEDUP; the default is the
#: guarantee tracked on dedicated hardware).
MIN_INCREMENTAL_SPEEDUP = 0.0 if SMOKE else float(
    os.environ.get("REPRO_MIN_INCREMENTAL_SPEEDUP", "1.5")
)

#: Required speedup of the controller-bank recipe over the PR 2
#: incremental recipe at the largest sweep count (same override story).
MIN_BANK_SPEEDUP = 0.0 if SMOKE else float(
    os.environ.get("REPRO_MIN_BANK_SPEEDUP", "1.3")
)

#: Required speedup of the batched-noise acquisition layer over the
#: PR 3 controller-bank recipe at the largest sweep count.  The
#: separation varies with host shape — ~1.5x on multi-core dedicated
#: hardware, ~1.3x on 1-vCPU shared machines — so the default is the
#: portable floor; dedicated hardware tracks the stronger bound via
#: REPRO_MIN_NOISE_SPEEDUP=1.4.
MIN_NOISE_SPEEDUP = 0.0 if SMOKE else float(
    os.environ.get("REPRO_MIN_NOISE_SPEEDUP", "1.25")
)

#: Required speedup of the single-precision lane (float32 recipe run
#: through a reusable fleet runtime) over the float64 batched-noise
#: recipe at the largest sweep count.
MIN_FLOAT32_SPEEDUP = 0.0 if SMOKE else float(
    os.environ.get("REPRO_MIN_FLOAT32_SPEEDUP", "1.25")
)

#: Required speedup of the fused campaign over the naive
#: run-variants-sequentially baseline at 16 variants x 1000 devices.
MIN_CAMPAIGN_SPEEDUP = 0.0 if SMOKE else float(
    os.environ.get("REPRO_MIN_CAMPAIGN_SPEEDUP", "2.0")
)

#: Campaign bench geometry: the issue's 16 variants x 1000 devices
#: (tiny grid in smoke mode).
CAMPAIGN_DEVICES = 8 if SMOKE else 1000
CAMPAIGN_DURATION_S = 10.0
CAMPAIGN_THRESHOLDS = (10, 30) if SMOKE else (10, 20, 30, 40)
CAMPAIGN_CONFIDENCES = (0.75, 0.85) if SMOKE else (0.75, 0.8, 0.85, 0.9)

#: Maximum relative slowdown a metered run may show over an unmetered
#: run of the same recipe at the largest sweep count (default 3 %).
MAX_METRICS_OVERHEAD = float(
    os.environ.get("REPRO_MAX_METRICS_OVERHEAD", "0.03")
)

#: Maximum relative slowdown the fault-tolerance layer (shard
#: supervisor + segmented round execution, no faults injected) may show
#: over a plain single-process run of the same recipe (default 3 %).
MAX_RESILIENCE_OVERHEAD = float(
    os.environ.get("REPRO_MAX_RESILIENCE_OVERHEAD", "0.03")
)

#: Maximum relative slowdown a heartbeat-monitored supervised run may
#: show over the same supervised run without a monitor (default 3 %).
MAX_HEARTBEAT_OVERHEAD = float(
    os.environ.get("REPRO_MAX_HEARTBEAT_OVERHEAD", "0.03")
)


def _make_engine(pipeline, recipe_name, **extra):
    """A FleetSimulator configured from a named bench recipe."""
    kwargs, trace = recipe_settings(recipe_name)
    return FleetSimulator(pipeline, **kwargs, **extra), trace


def _write_bench_json(update) -> None:
    """Merge an update (plus run provenance) into BENCH_fleet.json."""
    existing = {}
    if BENCH_JSON_PATH.exists():
        existing = json.loads(BENCH_JSON_PATH.read_text())
    existing.update(update)
    existing["meta"] = run_metadata(smoke=SMOKE, dtype_modes=list(DTYPE_MODES))
    BENCH_JSON_PATH.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n"
    )

#: Where the machine-readable throughput report lands.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"


@pytest.fixture(scope="module")
def fleet_setup():
    system = AdaSense.train(windows_per_activity_per_config=16, seed=BENCH_SEED)
    population = DevicePopulation.generate(
        NUM_DEVICES, duration_s=DURATION_S, master_seed=BENCH_SEED
    )
    return system.pipeline, population


def _mode_entry(result) -> dict:
    return {
        "elapsed_s": result.elapsed_s,
        "device_seconds_per_s": result.throughput_device_seconds_per_s,
        "devices_per_s": result.num_devices / result.elapsed_s,
    }


def _best_of(runner, rounds: int = 2):
    """Warm a mode up once, then keep its fastest timed round.

    Every mode gets the same treatment — one discarded warm-up run
    followed by ``rounds`` timed runs — so no path is compared warm
    against another path's cold first call, and a single scheduling
    blip on a loaded CI runner cannot fail the hard throughput gates
    below.
    """
    runner()
    results = [runner() for _ in range(rounds)]
    return min(results, key=lambda result: result.elapsed_s)


def _race(*runners, rounds: int = 3, keep: str = "best"):
    """Interleave contestants round by round; keep each one's best.

    Interleaving (instead of timing one mode's rounds back to back)
    spreads machine-load noise evenly over every contestant, and the
    collection before every timed run stops one mode's garbage from
    being charged to another — together they are what make the
    speedup gates below meaningful on shared hardware.  ``keep="all"``
    returns every round's result per contestant instead of the best,
    for gates that compare paired totals.
    """
    for runner in runners:
        runner()
    results = [[] for _ in runners]
    for _ in range(rounds):
        for index, runner in enumerate(runners):
            gc.collect()
            results[index].append(runner())
    if keep == "all":
        return tuple(results)
    return tuple(
        min(outcomes, key=lambda result: result.elapsed_s)
        for outcomes in results
    )


def test_fleet_throughput_modes(benchmark, fleet_setup):
    pipeline, population = fleet_setup
    pr1_style, _ = _make_engine(pipeline, "batched")
    pr2_style, _ = _make_engine(pipeline, "incremental")
    bank_engine, bank_trace = _make_engine(pipeline, "controller_bank")
    noise_engine, noise_trace = _make_engine(pipeline, "batched_noise")
    f32_engine, f32_trace = _make_engine(pipeline, "float32")
    f32_runtime = f32_engine.build_runtime(population)
    sharded_engine = ShardedFleetSimulator(pipeline)

    first_incremental = benchmark.pedantic(
        pr2_style.run,
        args=(population,),
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    incremental = min(
        (first_incremental, pr2_style.run(population)),
        key=lambda result: result.elapsed_s,
    )
    controller_bank = _best_of(lambda: bank_engine.run(population, trace=bank_trace))
    batched_noise = _best_of(
        lambda: noise_engine.run(population, trace=noise_trace)
    )
    float32 = _best_of(
        lambda: f32_engine.run(runtime=f32_runtime, trace=f32_trace)
    )
    batched = _best_of(lambda: pr1_style.run(population))
    sequential = _best_of(lambda: pr1_style.run_sequential(population))
    sharded_run = _best_of(lambda: sharded_engine.run(population, trace="summary"))
    sharded = sharded_run.result

    report = {
        "num_devices": NUM_DEVICES,
        "duration_s": DURATION_S,
        "seed": BENCH_SEED,
        "modes": {
            "sequential": _mode_entry(sequential),
            "batched": _mode_entry(batched),
            "incremental": _mode_entry(incremental),
            "controller_bank": _mode_entry(controller_bank),
            "batched_noise": _mode_entry(batched_noise),
            "float32": {
                **_mode_entry(float32),
                "dtype": "float32",
                "runtime_reused": True,
            },
            "sharded": {
                **_mode_entry(sharded),
                "num_shards": sharded_run.num_shards,
                "used_processes": sharded_run.used_processes,
            },
        },
        "speedup_incremental_vs_batched": batched.elapsed_s / incremental.elapsed_s,
        "speedup_batched_vs_sequential": sequential.elapsed_s / batched.elapsed_s,
        "speedup_bank_vs_incremental": incremental.elapsed_s
        / controller_bank.elapsed_s,
        "speedup_noise_vs_bank": controller_bank.elapsed_s
        / batched_noise.elapsed_s,
        "speedup_float32_vs_noise": batched_noise.elapsed_s
        / float32.elapsed_s,
    }
    if not SMOKE:
        _write_bench_json(report)
        append_bench_history(
            "fleet_modes",
            {
                "num_devices": NUM_DEVICES,
                "devices_per_s": {
                    name: entry["devices_per_s"]
                    for name, entry in report["modes"].items()
                },
                "gates": {
                    "incremental_vs_batched": report[
                        "speedup_incremental_vs_batched"
                    ],
                    "min_incremental_speedup": MIN_INCREMENTAL_SPEEDUP,
                },
            },
        )

    print_report(
        "Fleet throughput — execution paths over one 50-device population",
        "\n".join(
            [
                f"devices                : {NUM_DEVICES}",
                f"simulated device-time  : {incremental.device_seconds:.0f} s",
            ]
            + [
                (
                    f"{name:<23}: {result.elapsed_s:8.3f} s wall "
                    f"({result.throughput_device_seconds_per_s:8.0f} device-s/s)"
                )
                for name, result in (
                    ("sequential", sequential),
                    ("batched (PR 1 recipe)", batched),
                    ("incremental (PR 2)", incremental),
                    ("controller_bank (PR 3)", controller_bank),
                    ("batched_noise (PR 4)", batched_noise),
                    ("float32 lane", float32),
                    ("sharded", sharded),
                )
            ]
            + [
                (
                    "incremental vs batched : "
                    f"{report['speedup_incremental_vs_batched']:8.2f}x"
                ),
                (
                    "bank vs incremental    : "
                    f"{report['speedup_bank_vs_incremental']:8.2f}x"
                ),
                (
                    "noise vs bank          : "
                    f"{report['speedup_noise_vs_bank']:8.2f}x"
                ),
                (
                    "float32 vs noise       : "
                    f"{report['speedup_float32_vs_noise']:8.2f}x"
                ),
                f"report                 -> {BENCH_JSON_PATH.name}",
            ]
        ),
    )

    # Sanity: every engine simulated the same fleet...
    assert (
        sequential.num_devices
        == batched.num_devices
        == incremental.num_devices
        == controller_bank.num_devices
        == batched_noise.num_devices
        == float32.num_devices
        == sharded.num_devices
        == NUM_DEVICES
    )
    assert batched.device_seconds == sequential.device_seconds
    assert incremental.device_seconds == sequential.device_seconds
    assert controller_bank.device_seconds == sequential.device_seconds
    assert batched_noise.device_seconds == sequential.device_seconds
    assert float32.device_seconds == sequential.device_seconds
    # ...the batched engine must not be slower at fleet scale...
    assert SMOKE or batched.elapsed_s <= sequential.elapsed_s, (
        f"batched fleet simulation took {batched.elapsed_s:.3f} s but the "
        f"sequential loop took {sequential.elapsed_s:.3f} s for "
        f"{NUM_DEVICES} devices"
    )
    # ...and the incremental execution core must beat the PR 1 recipe.
    speedup = report["speedup_incremental_vs_batched"]
    assert speedup >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental throughput is only {speedup:.2f}x the batched path "
        f"(required: {MIN_INCREMENTAL_SPEEDUP}x) for {NUM_DEVICES} devices"
    )


def test_fleet_throughput_scaling_sweep(fleet_setup):
    """Race the PR 2 incremental, PR 3 controller-bank, batched-noise
    and float32-lane recipes over growing device counts; gate the
    speedups at the top."""
    pipeline, _ = fleet_setup
    pr2_style, _ = _make_engine(pipeline, "incremental")
    bank_engine, bank_trace = _make_engine(pipeline, "controller_bank")
    noise_engine, noise_trace = _make_engine(pipeline, "batched_noise")
    f32_engine, f32_trace = _make_engine(pipeline, "float32")

    sweep = {}
    for count in SWEEP_DEVICES:
        population = DevicePopulation.generate(
            count, duration_s=SWEEP_DURATION_S, master_seed=BENCH_SEED
        )
        # The float32 lane is benchmarked the way it is meant to be
        # deployed: one reusable runtime per population, reset between
        # runs, so repeated runs skip runtime construction and
        # spectral-plan rebuilds (both are part of what the other
        # recipes re-pay every run).
        f32_runtime = f32_engine.build_runtime(population)
        rounds = 4 if count == max(SWEEP_DEVICES) else 2
        incremental, controller_bank, batched_noise, float32 = _race(
            lambda: pr2_style.run(population),
            lambda: bank_engine.run(population, trace=bank_trace),
            lambda: noise_engine.run(population, trace=noise_trace),
            lambda: f32_engine.run(runtime=f32_runtime, trace=f32_trace),
            rounds=rounds,
        )
        sweep[str(count)] = {
            "incremental": _mode_entry(incremental),
            "controller_bank": _mode_entry(controller_bank),
            "batched_noise": _mode_entry(batched_noise),
            "float32": {
                **_mode_entry(float32),
                "dtype": "float32",
                "runtime_reused": True,
            },
            "speedup_bank_vs_incremental": incremental.elapsed_s
            / controller_bank.elapsed_s,
            "speedup_noise_vs_bank": controller_bank.elapsed_s
            / batched_noise.elapsed_s,
            "speedup_float32_vs_noise": batched_noise.elapsed_s
            / float32.elapsed_s,
        }

    top = str(max(SWEEP_DEVICES))
    if not SMOKE:
        _write_bench_json(
            {
                "scaling": {
                    "duration_s": SWEEP_DURATION_S,
                    "seed": BENCH_SEED,
                    "devices": sweep,
                }
            }
        )
        append_bench_history(
            "fleet_scaling",
            {
                "num_devices": int(top),
                "devices_per_s": {
                    name: sweep[top][name]["devices_per_s"]
                    for name in (
                        "incremental", "controller_bank",
                        "batched_noise", "float32",
                    )
                },
                "gates": {
                    "bank_vs_incremental": sweep[top][
                        "speedup_bank_vs_incremental"
                    ],
                    "noise_vs_bank": sweep[top]["speedup_noise_vs_bank"],
                    "float32_vs_noise": sweep[top][
                        "speedup_float32_vs_noise"
                    ],
                    "min_bank_speedup": MIN_BANK_SPEEDUP,
                    "min_noise_speedup": MIN_NOISE_SPEEDUP,
                    "min_float32_speedup": MIN_FLOAT32_SPEEDUP,
                },
            },
        )
    print_report(
        "Fleet throughput — device-count scaling sweep",
        "\n".join(
            [
                f"duration per device    : {SWEEP_DURATION_S:.0f} s",
            ]
            + [
                (
                    f"{count:>6} devices        : "
                    f"incr {entry['incremental']['devices_per_s']:7.1f}  "
                    f"bank {entry['controller_bank']['devices_per_s']:7.1f}  "
                    f"noise {entry['batched_noise']['devices_per_s']:7.1f}  "
                    f"f32 {entry['float32']['devices_per_s']:7.1f} dev/s  "
                    f"(bank {entry['speedup_bank_vs_incremental']:.2f}x, "
                    f"noise {entry['speedup_noise_vs_bank']:.2f}x, "
                    f"f32 {entry['speedup_float32_vs_noise']:.2f}x)"
                )
                for count, entry in sweep.items()
            ]
            + [
                f"gates (at {top} devices): bank >= {MIN_BANK_SPEEDUP}x, "
                f"noise >= {MIN_NOISE_SPEEDUP}x, "
                f"float32 >= {MIN_FLOAT32_SPEEDUP}x"
            ]
        ),
    )

    speedup = sweep[top]["speedup_bank_vs_incremental"]
    assert speedup >= MIN_BANK_SPEEDUP, (
        f"controller-bank throughput is only {speedup:.2f}x the PR 2 "
        f"incremental recipe (required: {MIN_BANK_SPEEDUP}x) at {top} devices"
    )
    noise_speedup = sweep[top]["speedup_noise_vs_bank"]
    assert noise_speedup >= MIN_NOISE_SPEEDUP, (
        f"batched-noise throughput is only {noise_speedup:.2f}x the PR 3 "
        f"controller-bank recipe (required: {MIN_NOISE_SPEEDUP}x) at {top} "
        f"devices"
    )
    float32_speedup = sweep[top]["speedup_float32_vs_noise"]
    assert float32_speedup >= MIN_FLOAT32_SPEEDUP, (
        f"float32-lane throughput is only {float32_speedup:.2f}x the "
        f"float64 batched-noise recipe (required: {MIN_FLOAT32_SPEEDUP}x) "
        f"at {top} devices"
    )


def test_fleet_fast_paths_match_sequential_reference(fleet_setup):
    """The speedup must not cost fidelity: banked and sharded runs are
    bit-identical to the per-device sequential reference for the whole
    population, and summary-mode telemetry (single-process and sharded)
    matches the telemetry of the sequential traces."""
    pipeline, population = fleet_setup
    simulator = FleetSimulator(pipeline)
    sequential = simulator.run_sequential(population)
    banked = simulator.run(population)
    sharded_run = ShardedFleetSimulator(pipeline).run(population, trace="summary")

    for left, right in zip(banked.traces, sequential.traces):
        assert traces_equal(left, right)
    reference_telemetry = FleetTelemetry.from_result(sequential).to_dict()
    assert (
        FleetTelemetry.from_result(
            simulator.run(population, trace="summary")
        ).to_dict()
        == reference_telemetry
    )
    assert sharded_run.telemetry.to_dict() == reference_telemetry

    # The batched acquisition layer has its own reference: within
    # noise="batched" every engine spelling is bit-identical too.
    noise_engine = FleetSimulator(pipeline, noise="batched")
    for left, right in zip(
        noise_engine.run(population).traces,
        noise_engine.run_sequential(population).traces,
    ):
        assert traces_equal(left, right)


#: Where the machine-readable campaign report lands.
CAMPAIGN_JSON_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
)


def test_campaign_fused_vs_naive(fleet_setup):
    """The fused campaign must beat running its variants sequentially.

    A 16-variant controller grid (SPOT thresholds x confidence cutoffs)
    over one 1000-device population is executed twice through the
    ``campaign`` recipe: fused (one stacked fleet of 16 000 virtual
    devices, shared signals / tables / plans / classify batches) and
    naive (16 independent fleet runs).  The fused run must deliver at
    least ``REPRO_MIN_CAMPAIGN_SPEEDUP``x (default 2x) the naive wall
    clock, while producing bit-identical per-variant telemetry — the
    speedup is pure redundancy elimination, not approximation.
    """
    from repro.campaign import CampaignRunner, variant_grid

    pipeline, _ = fleet_setup
    kwargs, trace = recipe_settings("campaign")
    variants = variant_grid(
        stability_thresholds=CAMPAIGN_THRESHOLDS,
        confidence_thresholds=CAMPAIGN_CONFIDENCES,
    )
    assert SMOKE or len(variants) == campaign_variant_count()
    population = DevicePopulation.generate(
        CAMPAIGN_DEVICES, duration_s=CAMPAIGN_DURATION_S, master_seed=BENCH_SEED
    )

    # Warm the process-wide spectral plan cache and every lazy import so
    # neither contestant pays one-time process costs.
    warm_pop = DevicePopulation.generate(
        4, duration_s=CAMPAIGN_DURATION_S, master_seed=BENCH_SEED
    )
    warm_runner = CampaignRunner(pipeline, variants[:2], **kwargs)
    warm_runner.run(warm_pop, trace=trace)
    warm_runner.run_naive(warm_pop, trace=trace)

    registry = MetricsRegistry()
    metered_runner = CampaignRunner(
        pipeline, variants, metrics=registry, **kwargs
    )
    gc.collect()
    fused = metered_runner.run(population, trace=trace)
    plain_runner = CampaignRunner(pipeline, variants, **kwargs)
    gc.collect()
    naive = plain_runner.run_naive(population, trace=trace)

    # Fidelity: the fused campaign's per-variant telemetry equals the
    # naive (independent-runs) telemetry, variant by variant.
    for fused_t, naive_t in zip(fused.telemetries, naive.telemetries):
        assert fused_t.to_dict() == naive_t.to_dict()

    ratio = naive.elapsed_s / fused.elapsed_s
    shared_hits = registry.counter_value("campaign.shared_group_hits")
    report = {
        "num_devices": CAMPAIGN_DEVICES,
        "num_variants": len(variants),
        "duration_s": CAMPAIGN_DURATION_S,
        "seed": BENCH_SEED,
        "recipe": "campaign",
        "fused": {
            **_mode_entry(fused),
            "virtual_devices": fused.virtual_devices,
            "simulated_devices": fused.simulated_devices,
            "shared_group_hits": shared_hits,
            "metered": True,
        },
        "naive": _mode_entry(naive),
        "speedup_fused_vs_naive": ratio,
        "min_campaign_speedup": MIN_CAMPAIGN_SPEEDUP,
        "pareto_scenarios": sorted(fused.fronts),
        "meta": run_metadata(
            smoke=SMOKE,
            variants=len(variants),
            naive_vs_fused_ratio=ratio,
        ),
    }
    if not SMOKE:
        CAMPAIGN_JSON_PATH.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        append_bench_history(
            "campaign",
            {
                "num_devices": CAMPAIGN_DEVICES,
                "num_variants": len(variants),
                "devices_per_s": {
                    "fused": report["fused"]["devices_per_s"],
                    "naive": report["naive"]["devices_per_s"],
                },
                "gates": {
                    "fused_vs_naive": ratio,
                    "min_campaign_speedup": MIN_CAMPAIGN_SPEEDUP,
                },
            },
        )

    print_report(
        "Campaign throughput — fused stacked fleet vs sequential variants",
        "\n".join(
            [
                f"variants               : {len(variants)}",
                f"devices                : {CAMPAIGN_DEVICES} physical, "
                f"{fused.virtual_devices} virtual",
                f"fused                  : {fused.elapsed_s:8.3f} s wall "
                f"({fused.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"naive (sequential)     : {naive.elapsed_s:8.3f} s wall "
                f"({naive.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"fused vs naive         : {ratio:8.2f}x "
                f"(gate: {MIN_CAMPAIGN_SPEEDUP}x)",
                f"shared signal rows     : {shared_hits:8.0f}",
                f"report                 -> {CAMPAIGN_JSON_PATH.name}",
            ]
        ),
    )

    assert shared_hits > 0.0, (
        "the fused campaign never shared a signal-table row across "
        "variants — cross-variant compute sharing is not engaged"
    )
    assert ratio >= MIN_CAMPAIGN_SPEEDUP, (
        f"fused campaign throughput is only {ratio:.2f}x the naive "
        f"sequential-variants baseline (required: {MIN_CAMPAIGN_SPEEDUP}x) "
        f"at {len(variants)} variants x {CAMPAIGN_DEVICES} devices"
    )


def test_fleet_metrics_overhead(fleet_setup):
    """Metering must be near-free: racing a metered batched-noise run
    against an unmetered one at the largest sweep count, the metered
    run may be at most ``REPRO_MAX_METRICS_OVERHEAD`` (default 3 %)
    slower."""
    pipeline, _ = fleet_setup
    count = max(SWEEP_DEVICES)
    population = DevicePopulation.generate(
        count, duration_s=SWEEP_DURATION_S, master_seed=BENCH_SEED
    )
    kwargs, trace = recipe_settings("batched_noise")
    registry = MetricsRegistry()
    plain_engine = FleetSimulator(pipeline, **kwargs)
    metered_engine = FleetSimulator(pipeline, metrics=registry, **kwargs)

    # Paired totals over interleaved rounds, not best-of: single-round
    # wall clocks on a shared machine swing by more than the overhead
    # being measured, and interleaving cancels slow load drift.
    rounds = 2 if SMOKE else 5
    plain_runs, metered_runs = _race(
        lambda: plain_engine.run(population, trace=trace),
        lambda: metered_engine.run(population, trace=trace),
        rounds=rounds,
        keep="all",
    )
    plain_total = sum(result.elapsed_s for result in plain_runs)
    metered_total = sum(result.elapsed_s for result in metered_runs)
    overhead = metered_total / plain_total - 1.0
    plain = min(plain_runs, key=lambda result: result.elapsed_s)
    metered = min(metered_runs, key=lambda result: result.elapsed_s)

    # The registry really recorded the runs it claims to have metered.
    assert registry.counter_value("engine.runs") == rounds + 1
    assert registry.counter_value("engine.windows_classified") > 0.0
    assert "tick.sense" in registry.snapshot().histograms

    if not SMOKE:
        _write_bench_json(
            {
                "metrics_overhead": {
                    "num_devices": count,
                    "duration_s": SWEEP_DURATION_S,
                    "recipe": "batched_noise",
                    "unmetered": _mode_entry(plain),
                    "metered": _mode_entry(metered),
                    "overhead": overhead,
                    "max_overhead": MAX_METRICS_OVERHEAD,
                }
            }
        )
        append_bench_history(
            "metrics_overhead",
            {
                "num_devices": count,
                "devices_per_s": {
                    "unmetered": count / plain.elapsed_s,
                    "metered": count / metered.elapsed_s,
                },
                "gates": {
                    "overhead": overhead,
                    "max_overhead": MAX_METRICS_OVERHEAD,
                },
            },
        )

    print_report(
        "Fleet metrics overhead — metered vs unmetered batched_noise",
        "\n".join(
            [
                f"devices                : {count}",
                f"unmetered              : {plain.elapsed_s:8.3f} s wall "
                f"({plain.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"metered                : {metered.elapsed_s:8.3f} s wall "
                f"({metered.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"overhead               : {100.0 * overhead:8.2f} % "
                f"(gate: {100.0 * MAX_METRICS_OVERHEAD:.0f} %)",
            ]
        ),
    )

    assert SMOKE or overhead <= MAX_METRICS_OVERHEAD, (
        f"metered run is {100.0 * overhead:.2f}% slower than unmetered "
        f"(allowed: {100.0 * MAX_METRICS_OVERHEAD:.0f}%) at {count} devices"
    )


def test_fleet_resilience_overhead(fleet_setup):
    """Fault tolerance must be near-free when nothing fails: racing a
    supervised single-shard run (retries enabled, no faults injected)
    against a plain single-process run of the same recipe, the
    supervised run may be at most ``REPRO_MAX_RESILIENCE_OVERHEAD``
    (default 3 %) slower.  A round-segmented variant (four supervised
    segments, as a checkpointed campaign would run them, minus the
    checkpoint I/O) rides along ungated for the report: each segment
    boundary re-materialises the per-device summaries, which is part
    of the price of opting into checkpoints, not of the supervisor."""
    pipeline, _ = fleet_setup
    count = max(SWEEP_DEVICES)
    population = DevicePopulation.generate(
        count, duration_s=SWEEP_DURATION_S, master_seed=BENCH_SEED
    )
    kwargs, trace = recipe_settings("batched_noise")
    plain_engine = FleetSimulator(pipeline, **kwargs)
    control_engine = FleetSimulator(pipeline, **kwargs)
    # One shard keeps the comparison apples-to-apples: no fork wins or
    # losses, just the supervisor wrapped around the same inline run.
    resilient_engine = ShardedFleetSimulator(
        pipeline, num_shards=1, fault_plan="", **kwargs
    )
    segmented_engine = ShardedFleetSimulator(
        pipeline,
        num_shards=1,
        round_s=SWEEP_DURATION_S / 4.0,
        fault_plan="",
        **kwargs,
    )

    # Four interleaved contestants; the second is an A/A control (the
    # identical plain recipe again), which turns this into a
    # self-calibrating gate: loaded shared hosts swing wall clocks by
    # more than the 3 % being measured, and whatever apparent
    # "overhead" the control shows against the baseline is pure
    # measurement noise, added to the allowance below.
    rounds = 2 if SMOKE else 7
    plain_runs, control_runs, resilient_runs, segmented_runs = _race(
        lambda: plain_engine.run(population, trace=trace),
        lambda: control_engine.run(population, trace=trace),
        lambda: resilient_engine.run(population, trace=trace).result,
        lambda: segmented_engine.run(population, trace=trace).result,
        rounds=rounds,
        keep="all",
    )

    # Median of the per-round paired ratios, not a ratio of totals, so
    # a single scheduling blip poisoning one round's wall clock cannot
    # dominate the statistic.
    def _median_overhead(contestant_runs):
        ratios = sorted(
            contestant.elapsed_s / base.elapsed_s
            for contestant, base in zip(contestant_runs, plain_runs)
        )
        middle = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[middle] - 1.0
        return (ratios[middle - 1] + ratios[middle]) / 2.0 - 1.0

    noise_floor = abs(_median_overhead(control_runs))
    overhead = _median_overhead(resilient_runs)
    segmented_overhead = _median_overhead(segmented_runs)
    allowed = MAX_RESILIENCE_OVERHEAD + noise_floor
    plain = min(plain_runs, key=lambda result: result.elapsed_s)
    resilient = min(resilient_runs, key=lambda result: result.elapsed_s)
    segmented = min(segmented_runs, key=lambda result: result.elapsed_s)

    # Fidelity first: supervised and segmented runs are bit-identical
    # (summary-mode recipe, so equality is checked on the telemetry).
    reference = FleetTelemetry.from_result(plain).to_dict()
    assert FleetTelemetry.from_result(resilient).to_dict() == reference
    assert FleetTelemetry.from_result(segmented).to_dict() == reference

    if not SMOKE:
        _write_bench_json(
            {
                "resilience_overhead": {
                    "num_devices": count,
                    "duration_s": SWEEP_DURATION_S,
                    "recipe": "batched_noise",
                    "plain": _mode_entry(plain),
                    "supervised": _mode_entry(resilient),
                    "segmented": _mode_entry(segmented),
                    "overhead": overhead,
                    "segmented_overhead": segmented_overhead,
                    "noise_floor": noise_floor,
                    "max_overhead": MAX_RESILIENCE_OVERHEAD,
                }
            }
        )
        append_bench_history(
            "resilience_overhead",
            {
                "num_devices": count,
                "devices_per_s": {
                    "plain": count / plain.elapsed_s,
                    "supervised": count / resilient.elapsed_s,
                    "segmented": count / segmented.elapsed_s,
                },
                "gates": {
                    "overhead": overhead,
                    "noise_floor": noise_floor,
                    "max_overhead": MAX_RESILIENCE_OVERHEAD,
                },
            },
        )

    print_report(
        "Fleet resilience overhead — supervised (and segmented) vs plain",
        "\n".join(
            [
                f"devices                : {count}",
                f"plain                  : {plain.elapsed_s:8.3f} s wall "
                f"({plain.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"supervised             : {resilient.elapsed_s:8.3f} s wall "
                f"({resilient.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"segmented (4 rounds)   : {segmented.elapsed_s:8.3f} s wall "
                f"({segmented.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"overhead               : {100.0 * overhead:8.2f} % "
                f"(gate: {100.0 * MAX_RESILIENCE_OVERHEAD:.0f} % + "
                f"{100.0 * noise_floor:.2f} % A/A noise floor)",
                f"segmented overhead     : {100.0 * segmented_overhead:8.2f} % "
                f"(ungated)",
            ]
        ),
    )

    assert SMOKE or overhead <= allowed, (
        f"supervised run is {100.0 * overhead:.2f}% slower than plain "
        f"(allowed: {100.0 * MAX_RESILIENCE_OVERHEAD:.0f}% + "
        f"{100.0 * noise_floor:.2f}% measured A/A noise) at {count} devices"
    )


def test_fleet_heartbeat_overhead(fleet_setup):
    """Live telemetry must be near-free: racing a heartbeat-monitored
    supervised run against the same supervised run without a monitor
    at the largest sweep count, the monitored run may be at most
    ``REPRO_MAX_HEARTBEAT_OVERHEAD`` (default 3 %) slower.  The
    baseline is the *supervised* single-shard run, so the gate
    isolates the cost of heartbeats (segment sub-division, phase-delta
    reads, event folding) from the already-gated supervisor cost; the
    same A/A-control noise floor and median-of-paired-ratios statistic
    as the resilience gate keep it meaningful on shared hosts."""
    from repro.obs import RunMonitor

    pipeline, _ = fleet_setup
    count = max(SWEEP_DEVICES)
    population = DevicePopulation.generate(
        count, duration_s=SWEEP_DURATION_S, master_seed=BENCH_SEED
    )
    kwargs, trace = recipe_settings("batched_noise")
    plain_engine = ShardedFleetSimulator(
        pipeline, num_shards=1, fault_plan="", **kwargs
    )
    control_engine = ShardedFleetSimulator(
        pipeline, num_shards=1, fault_plan="", **kwargs
    )
    monitor = RunMonitor()  # default heartbeat cadence, no sinks
    monitored_engine = ShardedFleetSimulator(
        pipeline, num_shards=1, fault_plan="", monitor=monitor, **kwargs
    )

    rounds = 2 if SMOKE else 7
    plain_runs, control_runs, monitored_runs = _race(
        lambda: plain_engine.run(population, trace=trace).result,
        lambda: control_engine.run(population, trace=trace).result,
        lambda: monitored_engine.run(population, trace=trace).result,
        rounds=rounds,
        keep="all",
    )

    def _median_overhead(contestant_runs):
        ratios = sorted(
            contestant.elapsed_s / base.elapsed_s
            for contestant, base in zip(contestant_runs, plain_runs)
        )
        middle = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[middle] - 1.0
        return (ratios[middle - 1] + ratios[middle]) / 2.0 - 1.0

    noise_floor = abs(_median_overhead(control_runs))
    overhead = _median_overhead(monitored_runs)
    allowed = MAX_HEARTBEAT_OVERHEAD + noise_floor
    plain = min(plain_runs, key=lambda result: result.elapsed_s)
    monitored = min(monitored_runs, key=lambda result: result.elapsed_s)

    # Fidelity first: the monitored run is bit-identical (summary-mode
    # recipe, so equality is checked on the telemetry), and the monitor
    # really heard heartbeats.
    reference = FleetTelemetry.from_result(plain).to_dict()
    assert FleetTelemetry.from_result(monitored).to_dict() == reference
    assert monitor.counters.get("heartbeat.received", 0.0) > 0.0

    if not SMOKE:
        _write_bench_json(
            {
                "heartbeat_overhead": {
                    "num_devices": count,
                    "duration_s": SWEEP_DURATION_S,
                    "recipe": "batched_noise",
                    "supervised": _mode_entry(plain),
                    "monitored": _mode_entry(monitored),
                    "overhead": overhead,
                    "noise_floor": noise_floor,
                    "max_overhead": MAX_HEARTBEAT_OVERHEAD,
                }
            }
        )
        append_bench_history(
            "heartbeat_overhead",
            {
                "num_devices": count,
                "devices_per_s": {
                    "supervised": count / plain.elapsed_s,
                    "monitored": count / monitored.elapsed_s,
                },
                "gates": {
                    "overhead": overhead,
                    "noise_floor": noise_floor,
                    "max_overhead": MAX_HEARTBEAT_OVERHEAD,
                },
            },
        )

    print_report(
        "Fleet heartbeat overhead — monitored vs unmonitored supervised",
        "\n".join(
            [
                f"devices                : {count}",
                f"supervised             : {plain.elapsed_s:8.3f} s wall "
                f"({plain.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"monitored              : {monitored.elapsed_s:8.3f} s wall "
                f"({monitored.throughput_device_seconds_per_s:8.0f} device-s/s)",
                f"heartbeats received    : "
                f"{monitor.counters.get('heartbeat.received', 0.0):8.0f}",
                f"overhead               : {100.0 * overhead:8.2f} % "
                f"(gate: {100.0 * MAX_HEARTBEAT_OVERHEAD:.0f} % + "
                f"{100.0 * noise_floor:.2f} % A/A noise floor)",
            ]
        ),
    )

    assert SMOKE or overhead <= allowed, (
        f"heartbeat-monitored run is {100.0 * overhead:.2f}% slower than "
        f"the unmonitored supervised run (allowed: "
        f"{100.0 * MAX_HEARTBEAT_OVERHEAD:.0f}% + "
        f"{100.0 * noise_floor:.2f}% measured A/A noise) at {count} devices"
    )

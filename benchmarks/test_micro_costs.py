"""Microbenchmarks of the per-step costs of the HAR pipeline.

Unlike the figure benchmarks (which run an experiment once and print the
paper-style table), these use pytest-benchmark in its natural role: they
time the operations a wearable would execute every second — acquiring a
batch from the sensor model, extracting the unified feature vector,
running one classifier inference and one full classification step — so
regressions in the hot path are visible in the benchmark report.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import BENCH_SEED

from repro.core.activities import Activity
from repro.core.config import HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.core.features import default_feature_extractor
from repro.datasets.synthetic import SyntheticSignalGenerator
from repro.datasets.windows import WindowDatasetBuilder
from repro.sensors.imu import SimulatedAccelerometer


def _raw_window(config, activity=Activity.WALK):
    builder = WindowDatasetBuilder(seed=BENCH_SEED)
    return builder.acquire_raw_window(activity, config)


def test_micro_feature_extraction_full_power(benchmark):
    extractor = default_feature_extractor()
    window = _raw_window(HIGH_POWER_CONFIG)
    features = benchmark(extractor.extract, window, HIGH_POWER_CONFIG.sampling_hz)
    assert features.shape == (extractor.num_features,)


def test_micro_feature_extraction_low_power(benchmark):
    extractor = default_feature_extractor()
    window = _raw_window(LOW_POWER_CONFIG)
    features = benchmark(extractor.extract, window, LOW_POWER_CONFIG.sampling_hz)
    assert features.shape == (extractor.num_features,)


def test_micro_classifier_inference(benchmark, systems):
    pipeline = systems.adasense.pipeline
    window = _raw_window(HIGH_POWER_CONFIG)
    features = pipeline.extractor.extract(window, HIGH_POWER_CONFIG.sampling_hz)
    result = benchmark(pipeline.classify_features, features)
    assert 0.0 <= result.confidence <= 1.0


def test_micro_full_classification_step(benchmark, systems):
    pipeline = systems.adasense.pipeline
    window = _raw_window(HIGH_POWER_CONFIG)
    result = benchmark(
        pipeline.classify_samples, window, HIGH_POWER_CONFIG.sampling_hz
    )
    assert result.probabilities.shape == (6,)


def test_micro_sensor_acquisition(benchmark):
    generator = SyntheticSignalGenerator(seed=BENCH_SEED)
    realization = generator.realize(Activity.WALK, rng=BENCH_SEED)
    sensor = SimulatedAccelerometer(signal=realization, seed=BENCH_SEED)
    window = benchmark(sensor.read_window, 4.0, 2.0, HIGH_POWER_CONFIG)
    assert window.num_samples == HIGH_POWER_CONFIG.samples_per_window


def test_micro_closed_loop_step_rate(benchmark, systems):
    """Time one simulated closed-loop second (sensor + features + classify)."""
    from repro.core.controller import SpotController
    from repro.datasets.scenarios import make_stable_schedule
    from repro.sim.runtime import ClosedLoopSimulator

    simulator = ClosedLoopSimulator(
        pipeline=systems.adasense.pipeline,
        controller=SpotController(stability_threshold=5),
    )
    schedule = make_stable_schedule(Activity.WALK, 30.0)

    def run_30_seconds():
        return simulator.run(schedule, seed=BENCH_SEED)

    trace = benchmark(run_30_seconds)
    assert len(trace) == 30

"""Benchmark: ablation of the number of SPOT states.

Truncates the SPOT chain to its first N states (N = 1 is the static
baseline, N = 2 resembles the high/low switching of prior work, N = 4 is
the full AdaSense chain) and reports the closed-loop accuracy and power of
each variant on the same schedules.
"""

from __future__ import annotations

from _bench_utils import BENCH_SEED, print_report

from repro.experiments.ablations import run_state_count_ablation


def test_spot_state_count_ablation(benchmark, systems, scale):
    result = benchmark.pedantic(
        run_state_count_ablation,
        kwargs={
            "system": systems.adasense,
            "seed": BENCH_SEED,
            "duration_s": 300.0 if scale == "quick" else 600.0,
            "repeats": 2 if scale == "quick" else 5,
        },
        rounds=1,
        iterations=1,
    )
    print_report("Ablation — number of SPOT states", result.format_table())

    by_count = {row.num_states: row for row in result.rows}

    # One state is the static baseline: full power, best accuracy.
    assert by_count[1].average_current_ua == max(
        row.average_current_ua for row in result.rows
    )

    # Adding states monotonically unlocks deeper power savings (within a
    # small tolerance for simulation noise) ...
    currents = [by_count[count].average_current_ua for count in sorted(by_count)]
    for earlier, later in zip(currents, currents[1:]):
        assert later <= earlier * 1.05

    # ... and the full four-state chain is meaningfully cheaper than the
    # two-state variant of prior work, at a modest accuracy cost.
    assert by_count[4].average_current_ua < by_count[2].average_current_ua
    assert by_count[1].accuracy - by_count[4].accuracy < 0.06

"""Benchmark: Section V-D — memory requirements and processing overhead.

Regenerates the two comparisons of Section V-D: classifier storage
(AdaSense's single shared network versus one classifier per configuration)
and the per-step processing cost (IbA additionally differentiates the raw
batch to estimate intensity).
"""

from __future__ import annotations

from _bench_utils import print_report

from repro.experiments.memory_overhead import run_memory_overhead


def test_memory_and_processing_overhead(benchmark, systems):
    result = benchmark.pedantic(
        run_memory_overhead,
        kwargs={
            "adasense": systems.adasense,
            "intensity_based": systems.intensity_based,
        },
        rounds=1,
        iterations=1,
    )
    print_report(
        "Section V-D — memory requirements and data-processing overhead",
        result.format_table(),
    )

    # The paper reports 2x less classifier memory than NK et al. (two
    # configurations) and by extension 4x less than one-classifier-per-state.
    assert result.memory_saving_vs_iba >= 1.9
    assert result.memory_saving_vs_per_state >= 3.9

    # A single shared classifier fits comfortably in a few KB of storage.
    assert result.adasense_memory_bytes < 16 * 1024

    # IbA pays a measurable per-step processing overhead for the derivative.
    assert result.iba_cycles_per_step > result.adasense_cycles_per_step
    assert result.processing_overhead_of_iba > 0.05

"""Benchmark: the configuration-mismatch experiment (Section III-C motivation).

Quantifies the claim that motivates AdaSense's shared training: a
classifier trained only on full-power (F100_A128) data degrades badly on
the low-power configurations, while the classifier trained on data from
all four SPOT states holds its accuracy everywhere.
"""

from __future__ import annotations

from _bench_utils import BENCH_SEED, print_report

from repro.experiments.mismatch import run_mismatch


def test_configuration_mismatch_motivates_shared_training(benchmark, scale):
    windows = 30 if scale == "quick" else 120
    result = benchmark.pedantic(
        run_mismatch,
        kwargs={
            "windows_per_activity_per_config": windows,
            "test_windows_per_activity": max(15, windows // 2),
            "seed": BENCH_SEED,
        },
        rounds=1,
        iterations=1,
    )
    print_report(
        "Shared-classifier motivation — configuration mismatch", result.format_table()
    )

    # The shared classifier holds up on every SPOT state.
    for row in result.rows:
        assert row.matched_training_accuracy > 0.85

    # Training only on the full-power configuration costs accuracy on the
    # low-power configurations ("accuracy can degrade significantly if the
    # sensor configurations of the test data differ from training").
    low_power_row = result.row_for("F12.5_A8")
    assert low_power_row.degradation > 0.05
    assert result.worst_degradation > 0.1

"""Shared fixtures for the benchmark harness.

Every paper artefact (Table I, Fig. 2, Fig. 5, Fig. 6a/b, Fig. 7, the
Section V-D comparisons) has one benchmark module.  Each module runs the
corresponding experiment driver exactly once inside ``benchmark.pedantic``
— the interesting output is the printed table mirroring the paper, the
timing is a bonus — and asserts the qualitative *shape* the paper reports.

Scale
-----
The benchmarks default to the ``quick`` experiment scale so that
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes.  Set
the environment variable ``REPRO_BENCH_SCALE=paper`` to regenerate the
figures at a fidelity comparable to the paper's 7300-window dataset
(expect tens of minutes).
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_SEED, bench_scale
from repro.experiments.common import get_trained_systems


@pytest.fixture(scope="session")
def scale():
    """The active benchmark scale (``quick`` or ``paper``)."""
    return bench_scale()


@pytest.fixture(scope="session")
def systems(scale):
    """The shared trained systems (AdaSense, static baseline, IbA)."""
    return get_trained_systems(scale=scale, seed=BENCH_SEED)

"""Benchmark: Fig. 5 — behavioural analysis of a sit-then-walk trace.

Regenerates the 120-second behavioural trace (sit 60 s, walk 60 s) and
prints the descent/snap-back summary.  The paper's trace reaches the
lowest-power state roughly 28 seconds after the start, returns to full
power when the activity changes at t = 60 s, and descends again.
"""

from __future__ import annotations

from _bench_utils import print_report

from repro.experiments.fig5_behavior import run_fig5


def test_fig5_behavioural_analysis(benchmark, systems):
    result = benchmark.pedantic(
        run_fig5, kwargs={"system": systems.adasense}, rounds=1, iterations=1
    )
    print_report("Fig. 5 — AdaSense behavioural analysis", result.format_table())

    # Starts at the full-power configuration.
    assert result.trace.records[0].config_name == "F100_A128"

    # Descends to the lowest-power state roughly 28 s after the start
    # (three SPOT transitions at the 9 s threshold plus buffering).
    descent = result.time_to_lowest_state(0.0)
    assert descent is not None and 25.0 <= descent <= 40.0

    # Snaps back to full power when the user starts walking, then descends
    # again within a comparable time.
    assert result.snapped_back_after_change
    second_descent = result.descent_time_after_change()
    assert second_descent is not None and second_descent <= 45.0

    # The adaptive trace is far cheaper than pinning the sensor at 180 uA
    # while keeping recognition accuracy high.
    assert result.trace.average_current_ua < 0.6 * 180.0
    assert result.trace.accuracy > 0.9

"""Benchmark: Fig. 6a — recognition accuracy versus stability threshold.

Regenerates the accuracy panel of the stability-threshold sweep for the
three scenarios (baseline, SPOT, SPOT with confidence 0.85).  The paper's
shape: accuracy rises steeply up to a threshold of roughly 20 seconds and
then saturates within about 1.5 percentage points of the never-switching
baseline.
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_SEED, print_report

from repro.experiments.fig6_power_accuracy import (
    BASELINE,
    SPOT,
    SPOT_CONFIDENCE,
    run_fig6,
)

#: The Fig. 6 sweep is shared by the accuracy and power benchmarks; it is
#: computed once per session and cached here.
_CACHE = {}


def compute_fig6(systems, scale):
    """Run (or fetch) the shared Fig. 6 sweep for the current scale."""
    if scale not in _CACHE:
        _CACHE[scale] = run_fig6(
            scale=scale, seed=BENCH_SEED, system=systems.adasense
        )
    return _CACHE[scale]


def test_fig6a_accuracy_vs_stability_threshold(benchmark, systems, scale):
    result = benchmark.pedantic(
        compute_fig6, args=(systems, scale), rounds=1, iterations=1
    )
    print_report(
        "Fig. 6a — classification accuracy vs stability threshold",
        result.format_table(),
    )

    baseline_accuracy = result.baseline_accuracy()
    assert baseline_accuracy > 0.9

    for scenario in (SPOT, SPOT_CONFIDENCE):
        thresholds, accuracies, _ = result.series(scenario)
        # Accuracy improves as the stability threshold grows ...
        assert result.accuracy_trend_is_increasing(scenario)
        # ... starting clearly below the baseline at threshold zero ...
        assert accuracies[0] < baseline_accuracy
        # ... and saturating close to the baseline in the >= 20 s region
        # (the paper reports a loss under 1.5 percentage points; we allow
        # a little slack for the simulated substrate).
        assert result.accuracy_drop_after(scenario, min_threshold=20) < 0.03

"""Benchmark: Fig. 7 — AdaSense versus the intensity-based approach.

Regenerates the comparison against NK et al.'s intensity-based approach
under the High / Medium / Low user-activity settings.  The paper's shape:
IbA's power is roughly flat across settings, AdaSense pays a small
premium when the activity is unstable but undercuts IbA by a wide margin
(>= 25 %) once the behaviour is stable, at the cost of slightly lower
recognition accuracy.
"""

from __future__ import annotations

from _bench_utils import BENCH_SEED, print_report

from repro.datasets.scenarios import ActivitySetting
from repro.experiments.fig7_comparison import ADASENSE, INTENSITY_BASED, run_fig7


def test_fig7_adasense_vs_intensity_based(benchmark, systems, scale):
    result = benchmark.pedantic(
        run_fig7,
        kwargs={
            "scale": scale,
            "seed": BENCH_SEED,
            "adasense": systems.adasense,
            "intensity_based": systems.intensity_based,
            "repeats": 3 if scale == "quick" else None,
        },
        rounds=1,
        iterations=1,
    )
    print_report("Fig. 7 — AdaSense vs intensity-based approach", result.format_table())

    high_adasense = result.row(ActivitySetting.HIGH, ADASENSE).power_ua
    low_adasense = result.row(ActivitySetting.LOW, ADASENSE).power_ua
    high_iba = result.row(ActivitySetting.HIGH, INTENSITY_BASED).power_ua
    low_iba = result.row(ActivitySetting.LOW, INTENSITY_BASED).power_ua

    # AdaSense's power falls sharply as the behaviour becomes stable;
    # IbA's barely moves (it tracks the activity mix, not its stability).
    assert low_adasense < 0.75 * high_adasense
    assert result.iba_power_spread() < 0.30

    # Who wins where: IbA is competitive (or better) under the High
    # setting, AdaSense wins clearly under the Low setting (paper: at
    # least 25 % less power).
    assert high_adasense > 0.9 * high_iba
    assert result.adasense_saving_at_low() > 0.2

    # Accuracy stays in the same ballpark for both systems.
    for setting in (ActivitySetting.HIGH, ActivitySetting.MEDIUM, ActivitySetting.LOW):
        adasense_accuracy = result.row(setting, ADASENSE).accuracy
        iba_accuracy = result.row(setting, INTENSITY_BASED).accuracy
        assert abs(adasense_accuracy - iba_accuracy) < 0.15

"""Benchmark: ablation of the unified feature vector.

Varies the number of Fourier features per axis (the paper keeps three,
covering the band up to 3 Hz) and the spelling of those features (band
energies versus raw FFT bins), and reports the recognition accuracy of
the shared classifier for each variant.
"""

from __future__ import annotations

from _bench_utils import BENCH_SEED, print_report

from repro.experiments.ablations import run_feature_ablation


def test_fourier_feature_ablation(benchmark, scale):
    windows = 30 if scale == "quick" else 100
    result = benchmark.pedantic(
        run_feature_ablation,
        kwargs={"windows_per_activity_per_config": windows, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    print_report("Ablation — Fourier features per axis", result.format_table())

    # Every variant must be usable (well above chance for six classes).
    for row in result.rows:
        assert row.accuracy > 0.5

    # The paper's choice (three features) performs within a small margin of
    # the best variant explored — i.e. adding more coefficients buys little.
    best = result.best_row()
    paper_choice = max(
        (row for row in result.rows if row.n_fourier_features == 3 and row.fourier_mode == "bands"),
        key=lambda row: row.accuracy,
    )
    assert paper_choice.accuracy >= best.accuracy - 0.06

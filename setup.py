"""Legacy setuptools entry point.

The offline toolchain in this environment lacks the ``wheel`` package, so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()

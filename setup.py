"""Legacy setuptools entry point.

The offline toolchain in this environment lacks the ``wheel`` package, so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
All metadata lives here (rather than in pyproject.toml) for the same
reason.
"""

from setuptools import find_packages, setup

setup(
    name="adasense-repro",
    version="1.4.0",
    description=(
        "Reproduction of AdaSense (DAC 2020): adaptive low-power sensing "
        "and activity recognition, with a vectorized, process-shardable "
        "fleet simulator on a unified execution core"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "adasense-repro=repro.cli:main",
        ]
    },
)

#!/usr/bin/env python3
"""All-day activity monitoring for an elderly user.

Another workload from the paper's introduction: activity recognition as a
digital biomarker for elderly care (detecting health decline from changes
in daily routine, flagging unusually long sedentary periods).  Here the
behaviour is *very* stable — long stretches of sitting and lying with
occasional short walks — which is precisely the regime where AdaSense's
stability-driven controller shines.

The example compares the three controllers shipped with the library
(always-on, plain SPOT, SPOT with confidence) on the same long schedule,
prints the power/accuracy of each, and derives two simple care-relevant
signals from the adaptive trace: total active minutes and the longest
uninterrupted sedentary stretch.

Run it with::

    python examples/elderly_monitoring.py
"""

from __future__ import annotations

from repro import AdaSense
from repro.core.activities import Activity
from repro.core.config import HIGH_POWER_CONFIG
from repro.datasets.scenarios import ScheduleSpec, generate_random_schedule
from repro.datasets.synthetic import ScheduledSignal
from repro.energy.battery import Battery
from repro.sim.trace import SimulationTrace


def longest_sedentary_stretch_min(trace: SimulationTrace) -> float:
    """Longest run of consecutive sedentary (sit / lie) predictions, in minutes."""
    longest = 0.0
    current = 0.0
    for record in trace:
        if record.predicted_activity in (Activity.SIT, Activity.LIE):
            current += record.duration_s
            longest = max(longest, current)
        else:
            current = 0.0
    return longest / 60.0


def active_minutes(trace: SimulationTrace) -> float:
    """Minutes spent in locomotion activities according to the classifier."""
    seconds = sum(
        record.duration_s for record in trace if record.predicted_activity.is_dynamic
    )
    return seconds / 60.0


def main() -> None:
    print("Training the shared classifier (synthetic data)...")
    base_system = AdaSense.train(windows_per_activity_per_config=40, seed=5)

    # An elderly user's afternoon: long sedentary bouts, a couple of short
    # walks, 40 minutes total.  Weighted towards sitting and lying by
    # restricting the activity pool of half of the schedule.
    sedentary_spec = ScheduleSpec(
        total_duration_s=1500.0,
        min_bout_s=180.0,
        max_bout_s=420.0,
        activities=(Activity.SIT, Activity.LIE, Activity.STAND),
    )
    active_spec = ScheduleSpec(
        total_duration_s=900.0,
        min_bout_s=60.0,
        max_bout_s=180.0,
        activities=(Activity.WALK, Activity.SIT, Activity.UPSTAIRS, Activity.DOWNSTAIRS),
    )
    schedule = generate_random_schedule(sedentary_spec, seed=31) + generate_random_schedule(
        active_spec, seed=32
    )
    signal = ScheduledSignal(schedule, seed=33)
    total_minutes = sum(duration for _, duration in schedule) / 60.0
    print(f"Simulating {total_minutes:.0f} minutes of monitoring...\n")

    controllers = {
        "always-on (baseline)": AdaSense.static_controller(),
        "SPOT (threshold 15 s)": AdaSense.spot_controller(stability_threshold=15),
        "SPOT + confidence 0.85": AdaSense.spot_with_confidence_controller(
            stability_threshold=15
        ),
    }

    battery = Battery.small_lipo_100mah()
    always_on_current = base_system.power_model.current_ua(HIGH_POWER_CONFIG)
    traces = {}

    print(f"{'controller':>24}  {'accuracy':>8}  {'current (uA)':>12}  {'saving':>7}  {'battery days':>12}")
    for name, controller in controllers.items():
        system = base_system.with_controller(controller)
        trace = system.simulate(signal, seed=34)
        traces[name] = trace
        saving = 1.0 - trace.average_current_ua / always_on_current
        print(
            f"{name:>24}  {trace.accuracy:8.3f}  {trace.average_current_ua:12.1f}  "
            f"{100.0 * saving:6.1f}%  {battery.lifetime_days(trace.average_current_ua):12.1f}"
        )

    adaptive_trace = traces["SPOT + confidence 0.85"]
    print("\nCare-relevant signals derived from the adaptive trace:")
    print(f"  active (walking/stairs) minutes : {active_minutes(adaptive_trace):.1f}")
    print(
        f"  longest sedentary stretch       : "
        f"{longest_sedentary_stretch_min(adaptive_trace):.1f} min"
    )
    print(
        "\nThe adaptive controllers keep the recognition quality of the always-on"
        "\nbaseline while cutting the sensing current enough to turn days of"
        "\nbattery life into weeks — the paper's core argument for AdaSense."
    )


if __name__ == "__main__":
    main()

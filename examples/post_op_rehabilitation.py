#!/usr/bin/env python3
"""Post-operative rehabilitation monitoring.

The paper's introduction motivates AdaSense with continuous patient
monitoring between clinical visits: after surgery, clinicians want to
know whether the patient is actually mobilising (walking, climbing
stairs) or spending the day in bed, and the wearable has to survive on a
tiny battery while collecting that evidence.

This example simulates a patient's morning routine, produces the activity
report a clinician would read (minutes per activity, number of walking
bouts) and compares the sensor energy of three sensing policies:

* always-on full-power sensing (the accuracy baseline),
* the intensity-based approach of NK et al. (prior work),
* AdaSense with SPOT-with-confidence (this paper).

Run it with::

    python examples/post_op_rehabilitation.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import AdaSense
from repro.baselines.intensity_based import IntensityBasedApproach
from repro.core.activities import Activity
from repro.core.config import HIGH_POWER_CONFIG
from repro.datasets.scenarios import make_daily_routine_schedule, schedule_duration
from repro.datasets.synthetic import ScheduledSignal
from repro.energy.battery import Battery
from repro.sim.trace import SimulationTrace


def activity_report(trace: SimulationTrace) -> dict[Activity, float]:
    """Minutes attributed to each activity by the classifier."""
    minutes: dict[Activity, float] = defaultdict(float)
    for record in trace:
        minutes[record.predicted_activity] += record.duration_s / 60.0
    return dict(minutes)


def count_walking_bouts(trace: SimulationTrace, min_bout_s: float = 20.0) -> int:
    """Number of sustained walking bouts detected in the trace."""
    bouts = 0
    current_run = 0.0
    for record in trace:
        if record.predicted_activity.is_dynamic:
            current_run += record.duration_s
        else:
            if current_run >= min_bout_s:
                bouts += 1
            current_run = 0.0
    if current_run >= min_bout_s:
        bouts += 1
    return bouts


def main() -> None:
    print("Training the monitoring systems (synthetic data)...")
    adasense = AdaSense.train(windows_per_activity_per_config=40, seed=3)
    adasense = adasense.with_controller(
        AdaSense.spot_with_confidence_controller(stability_threshold=10)
    )
    intensity_based = IntensityBasedApproach.train(
        windows_per_activity=40, seed=4, noise=adasense.noise_model
    )

    # A loosely realistic patient morning: lying, sitting, short walks and
    # one flight of stairs.  Both systems observe the *same* signal.
    schedule = make_daily_routine_schedule(seed=21)
    signal = ScheduledSignal(schedule, seed=22)
    routine_minutes = schedule_duration(schedule) / 60.0
    print(f"Simulating a {routine_minutes:.1f} minute routine...")

    adasense_trace = adasense.simulate(signal, seed=23)
    iba_trace = intensity_based.simulate(signal, seed=24)
    always_on_current = adasense.power_model.current_ua(HIGH_POWER_CONFIG)

    # ------------------------------------------------------------------
    # Clinical activity report (from the AdaSense trace).
    # ------------------------------------------------------------------
    print("\nActivity report (as the clinician dashboard would show it):")
    for activity, minutes in sorted(
        activity_report(adasense_trace).items(), key=lambda item: -item[1]
    ):
        print(f"  {activity.label:>13}: {minutes:5.1f} min")
    print(f"  sustained walking bouts: {count_walking_bouts(adasense_trace)}")
    print(f"  recognition accuracy vs ground truth: {adasense_trace.accuracy:.3f}")

    # ------------------------------------------------------------------
    # Sensor energy comparison and what it means for the battery.
    # ------------------------------------------------------------------
    battery = Battery.coin_cell_cr2032()
    rows = [
        ("always-on F100_A128", always_on_current, None),
        ("intensity-based (NK et al.)", iba_trace.average_current_ua, iba_trace.accuracy),
        ("AdaSense (SPOT + confidence)", adasense_trace.average_current_ua, adasense_trace.accuracy),
    ]
    print("\nSensor power and battery impact (CR2032 coin cell, sensor only):")
    print(f"  {'policy':>28}  {'current (uA)':>12}  {'accuracy':>8}  {'battery days':>12}")
    for name, current, accuracy in rows:
        accuracy_text = f"{accuracy:8.3f}" if accuracy is not None else "     ref"
        print(
            f"  {name:>28}  {current:12.1f}  {accuracy_text}  "
            f"{battery.lifetime_days(current):12.1f}"
        )

    extension = battery.lifetime_extension(
        always_on_current, adasense_trace.average_current_ua
    )
    print(
        f"\nAdaSense extends the sensing battery budget {extension:.1f}x relative to "
        "always-on sensing on this routine."
    )


if __name__ == "__main__":
    main()

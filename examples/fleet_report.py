#!/usr/bin/env python3
"""A population study with the vectorized fleet engine.

The single-device examples answer "how does AdaSense behave for *this*
user?".  A product team shipping the system asks population questions
instead: across a heterogeneous fleet — elderly users next to athletes,
SPOT controllers next to static ones, good sensors next to noisy ones —
what do power, accuracy and battery life look like, and which user
groups fall into the worst percentiles?

This example generates a deterministic 60-device population covering all
eight behaviour scenarios and all four controller kinds, simulates ten
minutes of fleet time with one batched classifier call per simulated
second, and prints:

* the fleet-level accuracy / current / battery-life distributions,
* the per-scenario and per-controller breakdowns,
* the throughput advantage of the batched engine over the sequential
  per-device loop on the same population.

Run it with::

    python examples/fleet_report.py
"""

from __future__ import annotations

from repro import AdaSense
from repro.fleet import DevicePopulation, FleetSimulator, FleetTelemetry

SEED = 2020
NUM_DEVICES = 60
DURATION_S = 600.0


def main() -> None:
    print("training the shared classifier ...")
    system = AdaSense.train(windows_per_activity_per_config=40, seed=SEED)

    print(f"generating a {NUM_DEVICES}-device population ...")
    population = DevicePopulation.generate(
        num_devices=NUM_DEVICES, duration_s=DURATION_S, master_seed=SEED
    )
    print(f"  scenarios  : {population.scenario_counts()}")
    print(f"  controllers: {population.controller_counts()}")

    simulator = FleetSimulator(system.pipeline)

    print(f"simulating {NUM_DEVICES} devices x {DURATION_S:.0f} s (batched) ...")
    batched = simulator.run(population)
    print(
        f"  {batched.device_seconds:.0f} device-seconds in "
        f"{batched.elapsed_s:.2f} s -> "
        f"{batched.throughput_device_seconds_per_s:.0f} device-seconds/s"
    )

    print("re-running sequentially for comparison ...")
    sequential = simulator.run_sequential(population)
    print(
        f"  {sequential.device_seconds:.0f} device-seconds in "
        f"{sequential.elapsed_s:.2f} s -> "
        f"{sequential.throughput_device_seconds_per_s:.0f} device-seconds/s"
    )
    speedup = sequential.elapsed_s / batched.elapsed_s
    print(f"  batched speedup: {speedup:.1f}x")

    print()
    telemetry = FleetTelemetry.from_result(batched)
    print(telemetry.format_table())

    worst = sorted(telemetry.reports, key=lambda r: r.battery_life_days)[:5]
    print()
    print("five shortest-lived devices:")
    for report in worst:
        print(
            f"  device {report.device_id:>3} ({report.scenario}, "
            f"{report.controller}): {report.battery_life_days:.1f} days on "
            f"{report.battery_capacity_mah:.0f} mAh at "
            f"{report.average_current_ua:.1f} uA"
        )


if __name__ == "__main__":
    main()

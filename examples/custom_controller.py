#!/usr/bin/env python3
"""Extending AdaSense with a custom adaptive controller.

The library treats the sensing policy as a plug-in: anything that
implements the small :class:`repro.core.controller.AdaptiveController`
protocol (``current_config`` / ``reset`` / ``update``) can drive the
closed loop.  This example implements a *hysteresis* controller — an
alternative policy that jumps straight to the lowest-power state after a
stability period and climbs back one state at a time — and benchmarks it
against the paper's SPOT controllers on the same schedules.

It is intentionally a policy the paper did *not* propose: the point is to
show how little code a new sensing strategy needs before it can be
evaluated with the full power/accuracy machinery.

Run it with::

    python examples/custom_controller.py
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import AdaSense
from repro.core.activities import Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, SensorConfig
from repro.datasets.scenarios import ActivitySetting, make_setting_schedule
from repro.datasets.synthetic import ScheduledSignal


class HysteresisController:
    """Jump-to-lowest / climb-gradually sensing policy.

    After ``stability_threshold`` consecutive identical classifications
    the sensor jumps directly to the lowest-power state (instead of
    stepping down one state at a time like SPOT).  When the activity
    changes, the sensor climbs back *one* state per change instead of
    snapping to full power, trading reaction speed for power.
    """

    def __init__(
        self,
        states: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
        stability_threshold: int = 10,
    ) -> None:
        if not states:
            raise ValueError("states must not be empty")
        self._states = list(states)
        self._stability_threshold = int(stability_threshold)
        self._state_index = 0
        self._counter = 0
        self._last_activity: Optional[Activity] = None

    @property
    def current_config(self) -> SensorConfig:
        """Configuration used for the next acquisition episode."""
        return self._states[self._state_index]

    def reset(self) -> None:
        """Return to the highest-power state."""
        self._state_index = 0
        self._counter = 0
        self._last_activity = None

    def update(self, activity: Activity, confidence: float) -> SensorConfig:
        """Advance the policy with one classification result."""
        if self._last_activity is None or activity == self._last_activity:
            self._counter += 1
            if self._counter >= self._stability_threshold:
                self._state_index = len(self._states) - 1
        else:
            # Climb one state towards full power per detected change.
            self._state_index = max(self._state_index - 1, 0)
            self._counter = 0
        self._last_activity = activity
        return self.current_config


def main() -> None:
    print("Training the shared classifier (synthetic data)...")
    base_system = AdaSense.train(windows_per_activity_per_config=40, seed=9)
    always_on_current = base_system.power_model.current_ua(HIGH_POWER_CONFIG)

    policies = {
        "SPOT": AdaSense.spot_controller(stability_threshold=10),
        "SPOT + confidence": AdaSense.spot_with_confidence_controller(
            stability_threshold=10
        ),
        "hysteresis (custom)": HysteresisController(stability_threshold=10),
    }

    print("\nComparing sensing policies on the Fig. 7 user-activity settings:\n")
    print(f"{'setting':>8}  {'policy':>20}  {'accuracy':>8}  {'current (uA)':>12}  {'saving':>7}")
    for setting in (ActivitySetting.HIGH, ActivitySetting.MEDIUM, ActivitySetting.LOW):
        schedule = make_setting_schedule(setting, total_duration_s=480.0, seed=41)
        signal = ScheduledSignal(schedule, seed=42)
        for name, controller in policies.items():
            system = base_system.with_controller(controller)
            trace = system.simulate(signal, seed=43)
            saving = 1.0 - trace.average_current_ua / always_on_current
            print(
                f"{setting.value:>8}  {name:>20}  {trace.accuracy:8.3f}  "
                f"{trace.average_current_ua:12.1f}  {100.0 * saving:6.1f}%"
            )
        print()

    print(
        "The custom policy saves aggressively but reacts slowly to activity\n"
        "changes, which shows up as lower accuracy under the High setting —\n"
        "exactly the kind of trade-off the closed-loop simulator is meant to\n"
        "surface before any firmware is written."
    )


if __name__ == "__main__":
    main()

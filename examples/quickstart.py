#!/usr/bin/env python3
"""Quickstart: train AdaSense, classify windows, run the adaptive loop.

This script walks through the three things most users do first:

1. train the shared activity classifier on synthetic windows acquired
   under the four Pareto-optimal sensor configurations;
2. classify a couple of raw accelerometer windows directly;
3. run the full closed loop (sensor -> features -> classifier -> SPOT
   controller) on the paper's Fig. 5 scenario and inspect the power and
   accuracy of the trace.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AdaSense, make_fig5_schedule
from repro.core.activities import Activity
from repro.core.config import HIGH_POWER_CONFIG, LOW_POWER_CONFIG
from repro.datasets.windows import WindowDatasetBuilder


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Train the shared classifier.
    #
    # AdaSense.train generates labelled 2-second windows for every
    # (activity, sensor configuration) pair, extracts the unified feature
    # vector and fits a single MLP on the union — exactly the recipe the
    # paper uses so that one classifier serves every SPOT state.
    # ------------------------------------------------------------------
    print("Training the shared AdaSense classifier (synthetic data)...")
    system = AdaSense.train(windows_per_activity_per_config=40, seed=7)
    pipeline = system.pipeline
    print(f"  classifier parameters : {pipeline.num_parameters}")
    print(f"  classifier memory     : {pipeline.memory_bytes()} bytes")

    # ------------------------------------------------------------------
    # 2. Classify raw windows from two very different configurations.
    # ------------------------------------------------------------------
    builder = WindowDatasetBuilder(seed=11)
    walking_full_power = builder.acquire_raw_window(Activity.WALK, HIGH_POWER_CONFIG)
    sitting_low_power = builder.acquire_raw_window(Activity.SIT, LOW_POWER_CONFIG)

    walk_result = system.classify(walking_full_power, HIGH_POWER_CONFIG.sampling_hz)
    sit_result = system.classify(sitting_low_power, LOW_POWER_CONFIG.sampling_hz)
    print("\nDirect window classification:")
    print(
        f"  {HIGH_POWER_CONFIG.name:>10} window -> {walk_result.activity.label:<13}"
        f" (confidence {walk_result.confidence:.2f})"
    )
    print(
        f"  {LOW_POWER_CONFIG.name:>10} window -> {sit_result.activity.label:<13}"
        f" (confidence {sit_result.confidence:.2f})"
    )

    # ------------------------------------------------------------------
    # 3. Run the closed loop on the Fig. 5 scenario: the user sits for a
    #    minute, then walks for a minute.  The SPOT-with-confidence
    #    controller steps the sensor down while the activity is stable and
    #    snaps back to full power when it changes.
    # ------------------------------------------------------------------
    controller = AdaSense.spot_with_confidence_controller(stability_threshold=9)
    adaptive = system.with_controller(controller)
    trace = adaptive.simulate(make_fig5_schedule(), seed=16)

    always_on_current = system.power_model.current_ua(HIGH_POWER_CONFIG)
    saving = 1.0 - trace.average_current_ua / always_on_current

    print("\nClosed-loop simulation (sit 60 s, then walk 60 s):")
    print(f"  recognition accuracy  : {trace.accuracy:.3f}")
    print(f"  average sensor current: {trace.average_current_ua:.1f} uA")
    print(f"  always-on baseline    : {always_on_current:.1f} uA")
    print(f"  sensor power saving   : {100.0 * saving:.1f} %")
    print("  time per configuration:")
    for name, share in sorted(trace.state_residency().items()):
        print(f"    {name:>10}: {100.0 * share:5.1f} %")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration with a fused campaign and Pareto fronts.

Tuning an adaptive-sensing deployment means answering: *which SPOT
stability threshold and confidence cutoff should the fleet ship with?*
Each candidate trades accuracy against energy differently for
different user groups — an athlete's device switches configurations
constantly, an office worker's almost never — so the answer is a
Pareto front per scenario, not a single winner.

Running a 4 x 4 grid naively means 16 independent fleet simulations.
The campaign runner instead fuses the whole grid into one stacked
fleet: every variant of a device shares the device's signal
realisation and noise streams, devices whose controller ignores a
grid axis (static and intensity devices ignore both axes here) are
simulated once and reused, and the per-variant results are still
bit-identical to 16 independent runs.

This example grids 4 stability thresholds x 4 confidence cutoffs over
a 40-device population, prints the fused-vs-virtual device count and
the per-scenario Pareto fronts, and shows how to read the
``repro.campaign/v1`` report dictionary.

Run it with::

    python examples/campaign_pareto.py
"""

from __future__ import annotations

from repro import AdaSense
from repro.campaign import CampaignRunner, variant_grid
from repro.fleet import DevicePopulation

SEED = 2020
NUM_DEVICES = 40
DURATION_S = 300.0


def main() -> None:
    print("training the shared classifier ...")
    system = AdaSense.train(windows_per_activity_per_config=40, seed=SEED)

    print(f"generating a {NUM_DEVICES}-device population ...")
    population = DevicePopulation.generate(
        num_devices=NUM_DEVICES, duration_s=DURATION_S, master_seed=SEED
    )
    print(f"  controllers: {population.controller_counts()}")

    variants = variant_grid(
        stability_thresholds=(10, 20, 30, 40),
        confidence_thresholds=(0.75, 0.8, 0.85, 0.9),
    )
    print(f"\ngridding {len(variants)} variants as one fused fleet ...")
    runner = CampaignRunner(system.pipeline, variants)
    result = runner.run(population, trace="summary")

    print(
        f"  simulated {result.simulated_devices} virtual devices for a "
        f"{result.virtual_devices}-device grid "
        f"({result.virtual_devices - result.simulated_devices} reused "
        f"behaviour duplicates)"
    )
    print(
        f"  throughput: {result.throughput_device_seconds_per_s:.0f} "
        f"device-seconds/s"
    )

    print("\n" + result.format_table())

    # The same content is available as a JSON-ready dictionary — this
    # is what ``python -m repro campaign --out report.json`` writes.
    report = result.to_dict()
    fleet_front = report["pareto_fronts"]["fleet"]
    print(
        f"\nfleet-level front: {len(fleet_front)} non-dominated variants "
        f"out of {report['meta']['num_variants']}"
    )
    best_accuracy = max(fleet_front, key=lambda point: point["accuracy"])
    print(
        f"most accurate non-dominated variant: {best_accuracy['variant']} "
        f"(accuracy {best_accuracy['accuracy']:.3f}, "
        f"battery {best_accuracy['battery_life_days']:.1f} days)"
    )


if __name__ == "__main__":
    main()

"""Comparison baselines.

Two baselines frame AdaSense's results:

* :mod:`repro.baselines.static` — the sensor never leaves its
  highest-power configuration.  This is the accuracy/power reference of
  Fig. 6 ("prevent the controller from switching").
* :mod:`repro.baselines.intensity_based` — the sensor/classifier
  co-optimisation of NK et al. [8]: the activity *intensity*, estimated
  from the first derivative of the raw accelerometer stream, decides
  between a high-power and a power-saving configuration, and a separate
  classifier is kept per configuration.  This is the comparison point of
  Fig. 7 and of the memory/processing-overhead discussion in
  Section V-D.
"""

from repro.baselines.intensity_based import (
    IntensityBasedApproach,
    IntensityController,
    activity_intensity,
    stacked_intensities,
)
from repro.baselines.static import AlwaysHighPowerBaseline

__all__ = [
    "IntensityBasedApproach",
    "IntensityController",
    "activity_intensity",
    "stacked_intensities",
    "AlwaysHighPowerBaseline",
]

"""The always-high-power baseline.

This is the reference point of Fig. 6: the accelerometer stays in its
highest-accuracy configuration (F100_A128) permanently, so the
recognition accuracy is the best the shared classifier can deliver and
the sensor current is the worst case.  Implemented as a thin wrapper
around the closed-loop simulator with a :class:`StaticController` so
that the baseline runs through exactly the same code path as AdaSense.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.config import HIGH_POWER_CONFIG, SensorConfig
from repro.core.controller import StaticController
from repro.core.pipeline import HarPipeline
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ, NoiseModel
from repro.sim.trace import SimulationTrace
from repro.utils.rng import SeedLike

if TYPE_CHECKING:  # imported lazily: sim.runtime sits above the
    # baselines package in the layering (its execution engine imports
    # the controller bank, which imports repro.baselines).
    from repro.sim.runtime import ScheduleLike


class AlwaysHighPowerBaseline:
    """HAR with the sensor pinned to one (high-power) configuration.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline (shared with the AdaSense system under
        comparison, so accuracy differences come only from the sensing
        policy).
    config:
        The pinned configuration; defaults to F100_A128.
    power_model, noise, internal_rate_hz:
        Simulation models, matching the AdaSense defaults.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        config: SensorConfig = HIGH_POWER_CONFIG,
        power_model: Optional[AccelerometerPowerModel] = None,
        noise: Optional[NoiseModel] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
    ) -> None:
        self._pipeline = pipeline
        self._config = config
        self._power_model = (
            power_model if power_model is not None else AccelerometerPowerModel.bmi160()
        )
        self._noise = noise if noise is not None else NoiseModel()
        self._internal_rate_hz = float(internal_rate_hz)

    @property
    def config(self) -> SensorConfig:
        """The pinned sensor configuration."""
        return self._config

    @property
    def pipeline(self) -> HarPipeline:
        """The HAR pipeline used for classification."""
        return self._pipeline

    @property
    def average_current_ua(self) -> float:
        """Sensor current of the pinned configuration (constant over time)."""
        return self._power_model.current_ua(self._config)

    def simulate(self, schedule: "ScheduleLike", seed: SeedLike = None) -> SimulationTrace:
        """Run the baseline over an activity schedule."""
        from repro.sim.runtime import ClosedLoopSimulator

        simulator = ClosedLoopSimulator(
            pipeline=self._pipeline,
            controller=StaticController(self._config),
            power_model=self._power_model,
            noise=self._noise,
            internal_rate_hz=self._internal_rate_hz,
        )
        return simulator.run(schedule, seed=seed)

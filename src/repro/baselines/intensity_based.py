"""The intensity-based approach (IbA) of NK et al. [8].

NK et al. co-optimise the sensor and the classifier differently from
AdaSense: instead of reacting to how *stable* the classified activity
is, they react to how *intense* the raw signal is.  Every second the
first derivative of the accelerometer stream is evaluated; when it
indicates a low-intensity (postural) activity the sensor drops to a
power-saving configuration, and when it indicates a locomotion activity
the sensor returns to its full-power configuration.  Because the two
configurations produce differently-sized data batches, a *separate*
classifier is trained for each configuration.

Consequences reproduced here (and compared in Fig. 7 / Section V-D):

* power consumption tracks the mix of activities rather than the change
  rate, so IbA cannot exploit long stable periods of *dynamic* activity
  and cannot fall as low as AdaSense's lowest-power state;
* memory requirements double (one classifier per configuration);
* a per-batch derivative computation is added to the processing load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.activities import ALL_ACTIVITIES, Activity
from repro.core.config import HIGH_POWER_CONFIG, SensorConfig, TABLE1_BY_NAME
from repro.core.features import WINDOW_DURATION_S, FeatureExtractor
from repro.core.pipeline import HarPipeline
from repro.datasets.scenarios import Schedule
from repro.datasets.synthetic import ScheduledSignal, SyntheticSignalGenerator
from repro.datasets.windows import WindowDatasetBuilder
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import (
    DEFAULT_INTERNAL_RATE_HZ,
    NoiseModel,
    SimulatedAccelerometer,
)
from repro.sim.trace import SimulationTrace, StepRecord

if TYPE_CHECKING:  # imported lazily: sim.runtime sits above this module
    # in the layering (it pulls in the execution engine, which imports
    # the controller bank, which imports this module).
    from repro.sim.runtime import ScheduleLike
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_int

#: Default power-saving configuration used by the baseline.  NK et al.
#: lower the sampling frequency while staying in low-power mode; F25_A32
#: roughly halves the duty cycle relative to the full-power state.
DEFAULT_LOW_INTENSITY_CONFIG: SensorConfig = TABLE1_BY_NAME["F25_A32"]


def activity_intensity(samples: np.ndarray) -> float:
    """Estimate activity intensity from the first derivative of a batch.

    The intensity is the mean absolute first difference of the signal,
    summed over the three axes.  It is deliberately *not* scaled by the
    sampling rate: scaling would amplify the sensor noise at high rates
    and is unnecessary because the baseline calibrates a separate
    threshold per configuration anyway.

    Parameters
    ----------
    samples:
        Raw sample batch of shape ``(n, 3)`` with ``n >= 2``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[1] != 3:
        raise ValueError(f"samples must have shape (n, 3), got {samples.shape}")
    if samples.shape[0] < 2:
        raise ValueError("at least two samples are required to compute a derivative")
    differences = np.abs(np.diff(samples, axis=0))
    return float(differences.mean(axis=0).sum())


def stacked_intensities(chunks: np.ndarray) -> np.ndarray:
    """Vectorized :func:`activity_intensity` over a batch stack.

    Computes the intensity of every device's batch in one pass; the
    per-device reductions run in the same order NumPy uses for a single
    ``(n, 3)`` batch, so each entry is bit-identical to calling
    :func:`activity_intensity` on the corresponding slice — the property
    that lets the fleet engine's controller bank vectorise the
    intensity-switching observe step.

    Parameters
    ----------
    chunks:
        Raw sample batches stacked as ``(devices, n, 3)`` with ``n >= 2``.
    """
    chunks = np.asarray(chunks, dtype=float)
    if chunks.ndim != 3 or chunks.shape[2] != 3:
        raise ValueError(
            f"chunks must have shape (devices, n, 3), got {chunks.shape}"
        )
    if chunks.shape[1] < 2:
        raise ValueError("at least two samples are required to compute a derivative")
    differences = np.abs(np.diff(chunks, axis=1))
    return differences.mean(axis=1).sum(axis=1)


@dataclass(frozen=True)
class IntensityThresholds:
    """Per-configuration intensity thresholds separating static from dynamic."""

    thresholds: Dict[str, float]

    def for_config(self, config: SensorConfig) -> float:
        """Threshold to use for batches acquired under ``config``."""
        if config.name not in self.thresholds:
            raise KeyError(f"no calibrated threshold for configuration {config.name}")
        return self.thresholds[config.name]


def calibrate_intensity_thresholds(
    configs: Iterable[SensorConfig],
    windows_per_activity: int = 20,
    noise: Optional[NoiseModel] = None,
    seed: SeedLike = None,
) -> IntensityThresholds:
    """Calibrate per-configuration static/dynamic intensity thresholds.

    This is the standalone spelling of the calibration step
    :meth:`IntensityBasedApproach.train` performs internally; the fleet
    population generator uses it to equip intensity-switching devices
    without training the baseline's per-configuration classifiers.
    """
    check_positive_int(windows_per_activity, "windows_per_activity")
    builder = WindowDatasetBuilder(noise=noise, seed=seed)
    thresholds = {
        config.name: IntensityBasedApproach._calibrate_threshold(
            builder, config, windows_per_activity
        )
        for config in configs
    }
    return IntensityThresholds(thresholds)


class IntensityController:
    """The NK et al. switching rule packaged as an adaptive controller.

    The full :class:`IntensityBasedApproach` trains one classifier per
    configuration, which cannot share the fleet engine's single batched
    classifier call.  This controller keeps only the *sensor policy*:
    every acquisition's first-derivative intensity (delivered through the
    ``observe_window`` hook both simulators call) decides whether the
    next episode runs at the full-power or the power-saving
    configuration, while recognition itself still uses AdaSense's shared
    classifier.  That makes intensity switching directly comparable to
    SPOT inside one heterogeneous fleet.

    Parameters
    ----------
    thresholds:
        Calibrated per-configuration intensity thresholds covering both
        ``high_config`` and ``low_config`` (see
        :func:`calibrate_intensity_thresholds`).
    high_config, low_config:
        The two configurations the policy switches between.
    """

    def __init__(
        self,
        thresholds: IntensityThresholds,
        high_config: SensorConfig = HIGH_POWER_CONFIG,
        low_config: SensorConfig = DEFAULT_LOW_INTENSITY_CONFIG,
    ) -> None:
        for config in (high_config, low_config):
            thresholds.for_config(config)  # fail fast on missing calibration
        self._thresholds = thresholds
        self._high_config = high_config
        self._low_config = low_config
        self._config = high_config
        self._pending: Optional[SensorConfig] = None

    @property
    def thresholds(self) -> IntensityThresholds:
        """The calibrated per-configuration intensity thresholds."""
        return self._thresholds

    @property
    def high_config(self) -> SensorConfig:
        """The full-power configuration."""
        return self._high_config

    @property
    def low_config(self) -> SensorConfig:
        """The power-saving configuration."""
        return self._low_config

    @property
    def current_config(self) -> SensorConfig:
        """Configuration the sensor should use for the next acquisition."""
        return self._config

    def reset(self) -> None:
        """Return to the full-power configuration."""
        self._config = self._high_config
        self._pending = None

    def observe_window(self, window) -> None:
        """Consume the newest acquisition and stage the switching decision."""
        intensity = activity_intensity(window.samples)
        threshold = self._thresholds.for_config(window.config)
        self._pending = (
            self._low_config if intensity < threshold else self._high_config
        )

    def update(self, activity: Activity, confidence: float) -> SensorConfig:
        """Apply the decision staged by :meth:`observe_window`.

        The classification result is ignored — intensity switching is
        purely signal-driven — but the signature matches the
        :class:`repro.core.controller.AdaptiveController` protocol so the
        controller is interchangeable with SPOT in both simulators.
        """
        if self._pending is not None:
            self._config = self._pending
            self._pending = None
        return self._config

    def restore_state(self, config: SensorConfig) -> None:
        """Overwrite the active configuration (controller-bank write-back).

        ``config`` must be one of the two calibrated configurations; the
        pending decision is cleared, matching the between-tick state of a
        per-object run (``update`` always consumes what ``observe_window``
        staged).
        """
        if config not in (self._high_config, self._low_config):
            raise ValueError(
                f"config must be {self._high_config.name} or "
                f"{self._low_config.name}, got {config.name}"
            )
        self._config = config
        self._pending = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"IntensityController(config={self._config.name}, "
            f"high={self._high_config.name}, low={self._low_config.name})"
        )


class IntensityBasedApproach:
    """Reimplementation of the NK et al. sensor/classifier co-optimisation.

    Parameters
    ----------
    pipelines:
        One trained :class:`HarPipeline` per configuration name.
    thresholds:
        Calibrated per-configuration intensity thresholds.
    high_config, low_config:
        The full-power and power-saving sensor configurations.
    power_model, noise, internal_rate_hz:
        Simulation models (kept identical to the AdaSense defaults so
        the Fig. 7 comparison is apples to apples).
    """

    def __init__(
        self,
        pipelines: Dict[str, HarPipeline],
        thresholds: IntensityThresholds,
        high_config: SensorConfig = HIGH_POWER_CONFIG,
        low_config: SensorConfig = DEFAULT_LOW_INTENSITY_CONFIG,
        power_model: Optional[AccelerometerPowerModel] = None,
        noise: Optional[NoiseModel] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
    ) -> None:
        for config in (high_config, low_config):
            if config.name not in pipelines:
                raise ValueError(f"missing pipeline for configuration {config.name}")
        self._pipelines = dict(pipelines)
        self._thresholds = thresholds
        self._high_config = high_config
        self._low_config = low_config
        self._power_model = (
            power_model if power_model is not None else AccelerometerPowerModel.bmi160()
        )
        self._noise = noise if noise is not None else NoiseModel()
        self._internal_rate_hz = float(internal_rate_hz)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        high_config: SensorConfig = HIGH_POWER_CONFIG,
        low_config: SensorConfig = DEFAULT_LOW_INTENSITY_CONFIG,
        windows_per_activity: int = 60,
        calibration_windows_per_activity: int = 20,
        hidden_units: Tuple[int, ...] = (32,),
        extractor: Optional[FeatureExtractor] = None,
        noise: Optional[NoiseModel] = None,
        power_model: Optional[AccelerometerPowerModel] = None,
        seed: SeedLike = None,
    ) -> "IntensityBasedApproach":
        """Train the two per-configuration classifiers and calibrate thresholds.

        Parameters
        ----------
        high_config, low_config:
            The two configurations the baseline switches between.
        windows_per_activity:
            Training windows per activity for each classifier.
        calibration_windows_per_activity:
            Raw windows per activity used to calibrate the intensity
            threshold of each configuration.
        hidden_units:
            Hidden layers of each per-configuration classifier (kept the
            same as AdaSense's shared classifier so the memory
            comparison is fair).
        extractor, noise, power_model, seed:
            Shared modelling knobs.
        """
        check_positive_int(windows_per_activity, "windows_per_activity")
        check_positive_int(
            calibration_windows_per_activity, "calibration_windows_per_activity"
        )
        rng = as_rng(seed)
        noise = noise if noise is not None else NoiseModel()
        builder = WindowDatasetBuilder(extractor=extractor, noise=noise, seed=rng)

        pipelines: Dict[str, HarPipeline] = {}
        thresholds: Dict[str, float] = {}
        for config in (high_config, low_config):
            dataset = builder.build_for_config(
                config, windows_per_activity=windows_per_activity
            )
            pipelines[config.name] = HarPipeline.train(
                dataset, hidden_units=hidden_units, extractor=extractor, seed=rng
            )
            thresholds[config.name] = cls._calibrate_threshold(
                builder, config, calibration_windows_per_activity
            )

        return cls(
            pipelines=pipelines,
            thresholds=IntensityThresholds(thresholds),
            high_config=high_config,
            low_config=low_config,
            power_model=power_model,
            noise=noise,
        )

    @staticmethod
    def _calibrate_threshold(
        builder: WindowDatasetBuilder,
        config: SensorConfig,
        windows_per_activity: int,
    ) -> float:
        """Midpoint (in log space) between static and dynamic intensities."""
        static_values = []
        dynamic_values = []
        for activity in ALL_ACTIVITIES:
            for _ in range(windows_per_activity):
                samples = builder.acquire_raw_window(activity, config)
                value = activity_intensity(samples)
                if activity.is_static:
                    static_values.append(value)
                else:
                    dynamic_values.append(value)
        static_level = float(np.median(static_values))
        dynamic_level = float(np.median(dynamic_values))
        if dynamic_level <= static_level:
            # Degenerate separation (extremely noisy configuration): fall
            # back to the arithmetic midpoint.
            return 0.5 * (static_level + dynamic_level)
        return float(np.sqrt(static_level * dynamic_level))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def high_config(self) -> SensorConfig:
        """The full-power configuration."""
        return self._high_config

    @property
    def low_config(self) -> SensorConfig:
        """The power-saving configuration."""
        return self._low_config

    @property
    def thresholds(self) -> IntensityThresholds:
        """The calibrated per-configuration intensity thresholds."""
        return self._thresholds

    def pipeline_for(self, config: SensorConfig) -> HarPipeline:
        """The classifier trained for ``config``."""
        return self._pipelines[config.name]

    @property
    def num_parameters(self) -> int:
        """Total classifier parameters across all per-configuration models."""
        return int(sum(p.num_parameters for p in self._pipelines.values()))

    def memory_bytes(self, bytes_per_weight: int = 4) -> int:
        """Bytes needed to store *all* per-configuration classifiers."""
        return int(
            sum(p.memory_bytes(bytes_per_weight) for p in self._pipelines.values())
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, schedule: ScheduleLike, seed: SeedLike = None) -> SimulationTrace:
        """Run the intensity-based loop over an activity schedule.

        The loop mirrors :class:`repro.sim.runtime.ClosedLoopSimulator`
        step for step; the only differences are the switching rule (the
        derivative-based intensity of the newest batch) and the use of a
        per-configuration classifier.
        """
        rng = as_rng(seed)
        if isinstance(schedule, ScheduledSignal):
            signal = schedule
        else:
            signal = ScheduledSignal(list(schedule), seed=rng)

        sensor = SimulatedAccelerometer(
            signal=signal,
            noise=self._noise,
            internal_rate_hz=self._internal_rate_hz,
            seed=rng,
        )
        buffer = SampleBuffer(window_duration_s=WINDOW_DURATION_S)
        active_config = self._high_config
        trace = SimulationTrace()
        num_steps = int(round(signal.duration_s))

        for step_index in range(1, num_steps + 1):
            step_end = float(step_index)
            acquisition = sensor.read_window(
                end_time_s=step_end, duration_s=1.0, config=active_config, rng=rng
            )
            buffer.push(acquisition)
            batch = buffer.window()
            pipeline = self._pipelines[active_config.name]
            result = pipeline.classify_window(batch)

            true_activity = signal.activity_at(step_end - 0.5)
            trace.append(
                StepRecord(
                    time_s=step_end,
                    true_activity=true_activity,
                    predicted_activity=result.activity,
                    confidence=result.confidence,
                    config_name=active_config.name,
                    current_ua=self._power_model.current_ua(active_config),
                    duration_s=1.0,
                )
            )

            # Intensity-based switching rule: the derivative of the newest
            # batch decides the next episode's configuration.
            intensity = activity_intensity(acquisition.samples)
            threshold = self._thresholds.for_config(active_config)
            if intensity < threshold:
                active_config = self._low_config
            else:
                active_config = self._high_config
        return trace

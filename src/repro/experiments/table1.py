"""Table I — the explored sensor configurations.

Table I of the paper simply enumerates the 16 sampling-frequency /
averaging-window combinations the design-space exploration considers.
The reproduction extends each row with the quantities the rest of the
evaluation derives from it: the effective operation mode, the duty cycle
and the modelled current draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import TABLE1_CONFIGS, SensorConfig
from repro.energy.accelerometer import AccelerometerPowerModel


@dataclass(frozen=True)
class Table1Row:
    """One configuration of Table I with its modelled power figures."""

    name: str
    sampling_hz: float
    averaging_window: int
    mode: str
    duty_cycle: float
    current_ua: float


@dataclass
class Table1Result:
    """All rows of Table I plus the power model used to annotate them."""

    rows: List[Table1Row]

    def row_for(self, name: str) -> Table1Row:
        """Look up one row by configuration name."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no Table I row named {name!r}")

    def format_table(self) -> str:
        """Human-readable rendering of Table I with power annotations."""
        lines = [
            f"{'configuration':>14}  {'freq (Hz)':>9}  {'window':>6}  "
            f"{'mode':>10}  {'duty':>6}  {'current (uA)':>12}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.name:>14}  {row.sampling_hz:9.2f}  {row.averaging_window:6d}  "
                f"{row.mode:>10}  {row.duty_cycle:6.3f}  {row.current_ua:12.1f}"
            )
        return "\n".join(lines)


def run_table1(
    configs: Sequence[SensorConfig] = TABLE1_CONFIGS,
    power_model: AccelerometerPowerModel | None = None,
) -> Table1Result:
    """Build Table I with the power annotations of the default model.

    Parameters
    ----------
    configs:
        Configurations to include (default: the paper's 16).
    power_model:
        Accelerometer current model used for the mode / duty-cycle /
        current columns.
    """
    model = power_model if power_model is not None else AccelerometerPowerModel.bmi160()
    rows = [
        Table1Row(
            name=config.name,
            sampling_hz=config.sampling_hz,
            averaging_window=config.averaging_window,
            mode=model.mode_for(config).value,
            duty_cycle=model.duty_cycle(config),
            current_ua=model.current_ua(config),
        )
        for config in configs
    ]
    return Table1Result(rows=rows)

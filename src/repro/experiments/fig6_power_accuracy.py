"""Fig. 6 — accuracy and sensor power versus the stability threshold.

The paper sweeps SPOT's stability threshold from 0 to 60 seconds and
reports, for three scenarios:

* **baseline** — the controller never switches (sensor pinned to
  F100_A128);
* **SPOT** — the plain finite-state machine;
* **SPOT with confidence** — the confidence-gated variant (threshold
  0.85);

(a) the recognition accuracy, which rises steeply until roughly 20
seconds and then saturates within ~1.5 % of the baseline, and (b) the
total sensor power, which grows with the threshold and meets the
baseline at 60 seconds.  Averaged over the sweep the paper reports 60 %
(SPOT) and 69 % (SPOT with confidence) power reduction.

The driver reproduces both panels: each (threshold, scenario) point is
the average over a set of randomised activity schedules simulated in the
closed loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adasense import AdaSense
from repro.core.controller import (
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.datasets.scenarios import ScheduleSpec, generate_random_schedule
from repro.datasets.synthetic import ScheduledSignal
from repro.energy.accounting import relative_saving
from repro.experiments.common import Scale, get_scale, get_trained_systems
from repro.utils.rng import SeedLike, as_rng, stable_seed_from

#: Scenario identifiers used in result rows.
BASELINE = "baseline"
SPOT = "spot"
SPOT_CONFIDENCE = "spot_confidence"

#: Default stability-threshold sweep, in seconds (matching Fig. 6's x-axis).
DEFAULT_THRESHOLDS: Tuple[int, ...] = (0, 5, 10, 15, 20, 30, 40, 50, 60)

#: Bout-duration range of the randomised evaluation schedules.  Bouts of a
#: few minutes represent the "typical user" whose activity is stable for a
#: while but does change, which is the regime Fig. 6 explores.
EVALUATION_BOUT_RANGE_S: Tuple[float, float] = (75.0, 200.0)


@dataclass(frozen=True)
class Fig6Row:
    """One (stability threshold, scenario) measurement point."""

    stability_threshold: int
    scenario: str
    accuracy: float
    average_current_ua: float


@dataclass
class Fig6Result:
    """All measurement points of the Fig. 6 sweep."""

    rows: List[Fig6Row]
    thresholds: Tuple[int, ...]
    confidence_threshold: float

    # ------------------------------------------------------------------
    # Series access
    # ------------------------------------------------------------------
    def series(self, scenario: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(thresholds, accuracies, currents)`` for one scenario."""
        rows = sorted(
            (row for row in self.rows if row.scenario == scenario),
            key=lambda row: row.stability_threshold,
        )
        if not rows:
            raise KeyError(f"no rows for scenario {scenario!r}")
        return (
            np.array([row.stability_threshold for row in rows]),
            np.array([row.accuracy for row in rows]),
            np.array([row.average_current_ua for row in rows]),
        )

    def baseline_current_ua(self) -> float:
        """Average sensor current of the never-switching baseline."""
        _, _, currents = self.series(BASELINE)
        return float(np.mean(currents))

    def baseline_accuracy(self) -> float:
        """Recognition accuracy of the never-switching baseline."""
        _, accuracies, _ = self.series(BASELINE)
        return float(np.mean(accuracies))

    # ------------------------------------------------------------------
    # Headline quantities
    # ------------------------------------------------------------------
    def average_power_saving(self, scenario: str) -> float:
        """Power reduction vs baseline averaged over the threshold sweep."""
        baseline = self.baseline_current_ua()
        _, _, currents = self.series(scenario)
        return float(np.mean([relative_saving(baseline, value) for value in currents]))

    def accuracy_drop_after(self, scenario: str, min_threshold: int = 20) -> float:
        """Accuracy loss vs baseline once the threshold is at least ``min_threshold``."""
        baseline = self.baseline_accuracy()
        thresholds, accuracies, _ = self.series(scenario)
        mask = thresholds >= min_threshold
        if not mask.any():
            raise ValueError(
                f"no thresholds >= {min_threshold} in the sweep {tuple(thresholds)}"
            )
        return float(baseline - np.mean(accuracies[mask]))

    def accuracy_trend_is_increasing(self, scenario: str) -> bool:
        """Whether accuracy at the top of the sweep exceeds accuracy at zero."""
        _, accuracies, _ = self.series(scenario)
        return bool(accuracies[-1] >= accuracies[0])

    def power_trend_is_increasing(self, scenario: str) -> bool:
        """Whether power at the top of the sweep exceeds power at zero."""
        _, _, currents = self.series(scenario)
        return bool(currents[-1] >= currents[0])

    def format_table(self) -> str:
        """Both panels of Fig. 6 as one table plus the headline summary."""
        lines = [
            f"{'threshold (s)':>13}  {'scenario':>16}  {'accuracy':>8}  "
            f"{'current (uA)':>12}"
        ]
        for row in sorted(self.rows, key=lambda r: (r.stability_threshold, r.scenario)):
            lines.append(
                f"{row.stability_threshold:13d}  {row.scenario:>16}  "
                f"{row.accuracy:8.3f}  {row.average_current_ua:12.1f}"
            )
        lines.append("")
        for scenario in (SPOT, SPOT_CONFIDENCE):
            lines.append(
                f"average power saving ({scenario}): "
                f"{100.0 * self.average_power_saving(scenario):.1f} %"
            )
            lines.append(
                f"accuracy drop at threshold >= 20 s ({scenario}): "
                f"{100.0 * self.accuracy_drop_after(scenario):.2f} pp"
            )
        return "\n".join(lines)


def _evaluation_signals(
    count: int, duration_s: float, seed: SeedLike
) -> List[ScheduledSignal]:
    """Realise the shared evaluation schedules used by every scenario."""
    rng = as_rng(seed)
    spec = ScheduleSpec(
        total_duration_s=duration_s,
        min_bout_s=EVALUATION_BOUT_RANGE_S[0],
        max_bout_s=EVALUATION_BOUT_RANGE_S[1],
    )
    signals = []
    for index in range(count):
        schedule = generate_random_schedule(spec, seed=rng)
        signals.append(
            ScheduledSignal(schedule, seed=stable_seed_from(int(rng.integers(2**31)), index))
        )
    return signals


def _average_over_signals(
    system: AdaSense, signals: Sequence[ScheduledSignal], seed: int
) -> Tuple[float, float]:
    """Mean (accuracy, average current) of ``system`` over the signals."""
    accuracies = []
    currents = []
    for index, signal in enumerate(signals):
        trace = system.simulate(signal, seed=stable_seed_from(seed, index))
        accuracies.append(trace.accuracy)
        currents.append(trace.average_current_ua)
    return float(np.mean(accuracies)), float(np.mean(currents))


def run_fig6(
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    confidence_threshold: float = 0.85,
    scale: Scale = "quick",
    seed: int = 2020,
    repeats: Optional[int] = None,
    duration_s: Optional[float] = None,
    system: Optional[AdaSense] = None,
) -> Fig6Result:
    """Reproduce the Fig. 6 stability-threshold sweep.

    Parameters
    ----------
    thresholds:
        Stability thresholds (seconds) to sweep.
    confidence_threshold:
        Confidence gate of the SPOT-with-confidence scenario.
    scale:
        Experiment scale used for the shared trained system and the
        default number/length of evaluation schedules.
    seed:
        Master seed: evaluation schedules and sensor noise derive from it.
    repeats:
        Number of schedules averaged per point (defaults to the scale's
        value).
    duration_s:
        Length of each schedule (defaults to the scale's value).
    system:
        Optionally a pre-trained AdaSense system to reuse.
    """
    parameters = get_scale(scale)
    if system is None:
        system = get_trained_systems(scale=scale, seed=seed).adasense
    repeats = repeats if repeats is not None else parameters.simulation_repeats
    duration_s = (
        duration_s if duration_s is not None else parameters.simulation_duration_s
    )

    signals = _evaluation_signals(repeats, duration_s, seed=stable_seed_from(seed, "fig6"))
    rows: List[Fig6Row] = []

    # Baseline: threshold-independent, measured once and replicated so the
    # table carries a baseline row per threshold (as the figure does).
    baseline_system = system.with_controller(StaticController())
    baseline_accuracy, baseline_current = _average_over_signals(
        baseline_system, signals, seed=stable_seed_from(seed, "baseline")
    )
    for threshold in thresholds:
        rows.append(
            Fig6Row(
                stability_threshold=int(threshold),
                scenario=BASELINE,
                accuracy=baseline_accuracy,
                average_current_ua=baseline_current,
            )
        )

    scenario_controllers = {
        SPOT: lambda value: SpotController(stability_threshold=value),
        SPOT_CONFIDENCE: lambda value: SpotWithConfidenceController(
            stability_threshold=value, confidence_threshold=confidence_threshold
        ),
    }
    for scenario, make_controller in scenario_controllers.items():
        for threshold in thresholds:
            adaptive = system.with_controller(make_controller(int(threshold)))
            accuracy, current = _average_over_signals(
                adaptive, signals, seed=stable_seed_from(seed, scenario, int(threshold))
            )
            rows.append(
                Fig6Row(
                    stability_threshold=int(threshold),
                    scenario=scenario,
                    accuracy=accuracy,
                    average_current_ua=current,
                )
            )

    return Fig6Result(
        rows=rows,
        thresholds=tuple(int(value) for value in thresholds),
        confidence_threshold=confidence_threshold,
    )

"""The headline claim: large sensor-power reduction at negligible accuracy cost.

The abstract summarises the evaluation as "69 % reduction in the power
consumption of the sensor with less than 1.5 % decrease in the activity
recognition accuracy".  Both numbers are derived from the Fig. 6 sweep:
the power reduction is the average saving of SPOT-with-confidence over
the stability-threshold sweep, and the accuracy decrease is measured in
the saturated region of the accuracy curve (thresholds of at least 20
seconds).

This driver reuses a :class:`Fig6Result` (or runs the sweep itself) and
reduces it to exactly those two headline quantities for SPOT and for
SPOT-with-confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import Scale
from repro.experiments.fig6_power_accuracy import (
    SPOT,
    SPOT_CONFIDENCE,
    Fig6Result,
    run_fig6,
)


@dataclass
class HeadlineResult:
    """The paper's headline numbers, recomputed on the simulated substrate."""

    spot_power_saving: float
    spot_confidence_power_saving: float
    spot_accuracy_drop: float
    spot_confidence_accuracy_drop: float

    def format_table(self) -> str:
        """Readable rendering of the headline comparison."""
        lines = [
            "paper: 60 % (SPOT) / 69 % (SPOT+confidence) average power saving,",
            "       < 1.5 % accuracy loss once the stability threshold is large.",
            "",
            f"measured SPOT power saving              : "
            f"{100.0 * self.spot_power_saving:6.1f} %",
            f"measured SPOT+confidence power saving   : "
            f"{100.0 * self.spot_confidence_power_saving:6.1f} %",
            f"measured SPOT accuracy drop (>=20 s)    : "
            f"{100.0 * self.spot_accuracy_drop:6.2f} pp",
            f"measured SPOT+conf accuracy drop (>=20 s): "
            f"{100.0 * self.spot_confidence_accuracy_drop:6.2f} pp",
        ]
        return "\n".join(lines)


def run_headline(
    fig6: Optional[Fig6Result] = None,
    scale: Scale = "quick",
    seed: int = 2020,
) -> HeadlineResult:
    """Compute the headline numbers, running the Fig. 6 sweep if needed.

    Parameters
    ----------
    fig6:
        An existing Fig. 6 result to summarise; when omitted the sweep is
        run at the requested scale.
    scale, seed:
        Sizing used when the sweep has to be run here.
    """
    if fig6 is None:
        fig6 = run_fig6(scale=scale, seed=seed)
    return HeadlineResult(
        spot_power_saving=fig6.average_power_saving(SPOT),
        spot_confidence_power_saving=fig6.average_power_saving(SPOT_CONFIDENCE),
        spot_accuracy_drop=fig6.accuracy_drop_after(SPOT),
        spot_confidence_accuracy_drop=fig6.accuracy_drop_after(SPOT_CONFIDENCE),
    )

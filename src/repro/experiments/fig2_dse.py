"""Fig. 2 — accuracy/current trade-off of the 16 sensor configurations.

The driver runs the design-space exploration over Table I, reports every
configuration's operating point (the scatter of Fig. 2) and extracts the
Pareto front.  The paper's front is {F100_A128, F50_A16, F12.5_A16,
F12.5_A8}; with a simulated sensor the exact membership can differ, so
the result also records how the paper's four chosen states relate to the
emergent front (the key *shape* properties — the highest-accuracy point
is the full-power configuration and accuracy decays as current drops —
are asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.config import (
    DEFAULT_SPOT_STATES,
    TABLE1_CONFIGS,
    ConfigEvaluation,
    SensorConfig,
)
from repro.core.dse import DesignSpaceExplorer, DseResult
from repro.utils.rng import SeedLike


@dataclass
class Fig2Result:
    """Outcome of the Fig. 2 reproduction."""

    dse: DseResult
    paper_front_names: List[str]

    @property
    def evaluations(self) -> List[ConfigEvaluation]:
        """All evaluated operating points (the Fig. 2 scatter)."""
        return self.dse.evaluations

    @property
    def front_names(self) -> List[str]:
        """Names on the emergent Pareto front, highest power first."""
        return self.dse.front_names

    @property
    def highest_accuracy_config(self) -> str:
        """Name of the configuration with the best recognition accuracy."""
        best = max(self.dse.evaluations, key=lambda item: item.accuracy)
        return best.name

    @property
    def accuracy_current_correlation(self) -> float:
        """Pearson correlation between current and accuracy across configs.

        Fig. 2's qualitative message is that more current buys more
        accuracy; a clearly positive correlation captures that shape
        without pinning exact percentages.
        """
        currents = np.array([item.current_ua for item in self.dse.evaluations])
        accuracies = np.array([item.accuracy for item in self.dse.evaluations])
        return float(np.corrcoef(currents, accuracies)[0, 1])

    def paper_front_recall(self) -> float:
        """Fraction of the paper's four chosen states that are Pareto-optimal here."""
        emergent = set(self.front_names)
        hits = sum(1 for name in self.paper_front_names if name in emergent)
        return hits / len(self.paper_front_names)

    def format_table(self) -> str:
        """Fig. 2 data as a table plus a front summary."""
        lines = [self.dse.format_table(), ""]
        lines.append(f"emergent Pareto front : {', '.join(self.front_names)}")
        lines.append(f"paper's chosen states : {', '.join(self.paper_front_names)}")
        lines.append(
            f"paper-front recall    : {self.paper_front_recall():.2f}"
        )
        lines.append(
            f"current/accuracy corr : {self.accuracy_current_correlation:.2f}"
        )
        return "\n".join(lines)


def run_fig2(
    configs: Sequence[SensorConfig] = TABLE1_CONFIGS,
    windows_per_activity: int = 60,
    seed: SeedLike = 2020,
) -> Fig2Result:
    """Reproduce the Fig. 2 design-space exploration.

    Parameters
    ----------
    configs:
        Configurations to evaluate (default: all of Table I).
    windows_per_activity:
        Windows per activity per configuration used to estimate each
        accuracy (larger = smoother scatter, slower run).
    seed:
        Master seed for dataset generation and training.
    """
    explorer = DesignSpaceExplorer(seed=seed)
    dse = explorer.explore(configs=configs, windows_per_activity=windows_per_activity)
    return Fig2Result(
        dse=dse,
        paper_front_names=[config.name for config in DEFAULT_SPOT_STATES],
    )

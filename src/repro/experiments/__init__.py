"""Experiment drivers reproducing every table and figure of the paper.

Each module corresponds to one artefact of the paper's evaluation
(Section V) and produces a small result dataclass with a
``format_table()`` method that prints the same rows/series the paper
reports.  The benchmark harness under ``benchmarks/`` simply calls these
drivers, so an experiment can equally be run from a notebook or script:

======================  ==============================================
Module                   Paper artefact
======================  ==============================================
``table1``               Table I — the 16 sensor configurations
``fig2_dse``             Fig. 2 — accuracy/current trade-off + Pareto front
``fig5_behavior``        Fig. 5 — 120 s behavioural trace (sit then walk)
``fig6_power_accuracy``  Fig. 6a/6b — accuracy and power vs stability threshold
``fig7_comparison``      Fig. 7 — AdaSense vs the intensity-based approach
``memory_overhead``      Section V-D — memory and processing overhead
``headline``             Abstract — 69 % power reduction, <1.5 % accuracy loss
``mismatch``             Motivation — single shared classifier vs per-config
``ablations``            Design-choice ablations called out in DESIGN.md
======================  ==============================================
"""

from repro.experiments.common import TrainedSystems, get_trained_systems
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.fig2_dse import Fig2Result, run_fig2
from repro.experiments.fig5_behavior import Fig5Result, run_fig5
from repro.experiments.fig6_power_accuracy import Fig6Result, Fig6Row, run_fig6
from repro.experiments.fig7_comparison import Fig7Result, Fig7Row, run_fig7
from repro.experiments.headline import HeadlineResult, run_headline
from repro.experiments.memory_overhead import MemoryOverheadResult, run_memory_overhead
from repro.experiments.mismatch import MismatchResult, run_mismatch

__all__ = [
    "TrainedSystems",
    "get_trained_systems",
    "Table1Result",
    "run_table1",
    "Fig2Result",
    "run_fig2",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "Fig6Row",
    "run_fig6",
    "Fig7Result",
    "Fig7Row",
    "run_fig7",
    "HeadlineResult",
    "run_headline",
    "MemoryOverheadResult",
    "run_memory_overhead",
    "MismatchResult",
    "run_mismatch",
]

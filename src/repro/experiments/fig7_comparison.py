"""Fig. 7 — AdaSense versus the intensity-based approach of NK et al. [8].

The comparison runs both systems over three *user activity settings*
that differ in how quickly the activity changes:

* **High** — unstable behaviour, a change roughly every 10 seconds;
* **Medium** — a change every half minute or so;
* **Low** — stable behaviour, at least a minute per activity.

The paper's findings, which this driver reproduces in shape:

* IbA's power consumption barely depends on the setting (it tracks the
  *mix* of activities, not their stability), whereas AdaSense's power
  falls sharply as the behaviour becomes more stable;
* under the High setting AdaSense pays a small power premium (it keeps
  snapping back to full power), while under Medium/Low it undercuts IbA
  by a wide margin (at least 25 % in the paper);
* AdaSense's recognition accuracy sits slightly (1–1.5 %) below IbA's,
  the price of running a single shared classifier and spending time at
  low-power configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.intensity_based import IntensityBasedApproach
from repro.core.adasense import AdaSense
from repro.core.controller import SpotWithConfidenceController
from repro.datasets.scenarios import ActivitySetting, make_setting_schedule
from repro.datasets.synthetic import ScheduledSignal
from repro.experiments.common import Scale, get_scale, get_trained_systems
from repro.utils.rng import stable_seed_from

#: System identifiers used in result rows.
ADASENSE = "adasense"
INTENSITY_BASED = "iba"

#: Default ordering of the settings on the Fig. 7 x-axis.
DEFAULT_SETTINGS: Tuple[ActivitySetting, ...] = (
    ActivitySetting.HIGH,
    ActivitySetting.MEDIUM,
    ActivitySetting.LOW,
)


@dataclass(frozen=True)
class Fig7Row:
    """One (user activity setting, system) measurement point."""

    setting: str
    system: str
    power_ua: float
    accuracy: float


@dataclass
class Fig7Result:
    """All measurement points of the Fig. 7 comparison."""

    rows: List[Fig7Row]
    stability_threshold: int
    confidence_threshold: float

    def row(self, setting: ActivitySetting | str, system: str) -> Fig7Row:
        """Look up one measurement point."""
        name = setting.value if isinstance(setting, ActivitySetting) else str(setting)
        for row in self.rows:
            if row.setting == name and row.system == system:
                return row
        raise KeyError(f"no row for setting={name!r}, system={system!r}")

    def power_ratio(self, setting: ActivitySetting | str) -> float:
        """AdaSense power divided by IbA power for one setting."""
        return self.row(setting, ADASENSE).power_ua / self.row(setting, INTENSITY_BASED).power_ua

    def adasense_saving_at_low(self) -> float:
        """Fractional power saving of AdaSense vs IbA under the Low setting."""
        adasense = self.row(ActivitySetting.LOW, ADASENSE).power_ua
        iba = self.row(ActivitySetting.LOW, INTENSITY_BASED).power_ua
        return float((iba - adasense) / iba)

    def iba_power_spread(self) -> float:
        """Relative spread of IbA power across settings (should be small)."""
        values = np.array(
            [self.row(setting, INTENSITY_BASED).power_ua for setting in DEFAULT_SETTINGS]
        )
        return float((values.max() - values.min()) / values.mean())

    def format_table(self) -> str:
        """Fig. 7 as a table plus the comparison summary."""
        lines = [
            f"{'setting':>8}  {'system':>10}  {'power (uA)':>10}  {'accuracy':>8}"
        ]
        for setting in DEFAULT_SETTINGS:
            for system in (INTENSITY_BASED, ADASENSE):
                row = self.row(setting, system)
                lines.append(
                    f"{row.setting:>8}  {row.system:>10}  {row.power_ua:10.1f}  "
                    f"{row.accuracy:8.3f}"
                )
        lines.append("")
        lines.append(
            "AdaSense power saving vs IbA (Low setting): "
            f"{100.0 * self.adasense_saving_at_low():.1f} %"
        )
        lines.append(
            f"IbA power spread across settings          : "
            f"{100.0 * self.iba_power_spread():.1f} %"
        )
        return "\n".join(lines)


def run_fig7(
    settings: Sequence[ActivitySetting] = DEFAULT_SETTINGS,
    stability_threshold: int = 10,
    confidence_threshold: float = 0.85,
    scale: Scale = "quick",
    seed: int = 2020,
    repeats: Optional[int] = None,
    duration_s: Optional[float] = None,
    adasense: Optional[AdaSense] = None,
    intensity_based: Optional[IntensityBasedApproach] = None,
) -> Fig7Result:
    """Reproduce the Fig. 7 comparison.

    Parameters
    ----------
    settings:
        User activity settings to evaluate.
    stability_threshold:
        SPOT stability threshold used by AdaSense in this comparison (a
        moderate value so the controller can exploit Medium/Low bouts).
    confidence_threshold:
        Confidence gate of AdaSense's controller.
    scale, seed, repeats, duration_s:
        Experiment sizing; defaults come from the scale.
    adasense, intensity_based:
        Optionally pre-trained systems to reuse (both must be given to
        skip the shared training).
    """
    parameters = get_scale(scale)
    if adasense is None or intensity_based is None:
        trained = get_trained_systems(scale=scale, seed=seed)
        adasense = adasense if adasense is not None else trained.adasense
        intensity_based = (
            intensity_based if intensity_based is not None else trained.intensity_based
        )
    repeats = repeats if repeats is not None else parameters.simulation_repeats
    duration_s = (
        duration_s if duration_s is not None else parameters.simulation_duration_s
    )

    controller = SpotWithConfidenceController(
        stability_threshold=stability_threshold,
        confidence_threshold=confidence_threshold,
    )
    adaptive = adasense.with_controller(controller)

    rows: List[Fig7Row] = []
    for setting in settings:
        adasense_stats: List[Tuple[float, float]] = []
        iba_stats: List[Tuple[float, float]] = []
        for repeat in range(repeats):
            schedule_seed = stable_seed_from(seed, "fig7", setting.value, repeat)
            schedule = make_setting_schedule(
                setting, total_duration_s=duration_s, seed=schedule_seed
            )
            # Both systems see the *same* realised signal so the
            # comparison isolates the sensing policy.
            signal = ScheduledSignal(schedule, seed=schedule_seed + 1)
            adasense_trace = adaptive.simulate(signal, seed=schedule_seed + 2)
            iba_trace = intensity_based.simulate(signal, seed=schedule_seed + 3)
            adasense_stats.append(
                (adasense_trace.average_current_ua, adasense_trace.accuracy)
            )
            iba_stats.append((iba_trace.average_current_ua, iba_trace.accuracy))

        rows.append(
            Fig7Row(
                setting=setting.value,
                system=ADASENSE,
                power_ua=float(np.mean([power for power, _ in adasense_stats])),
                accuracy=float(np.mean([accuracy for _, accuracy in adasense_stats])),
            )
        )
        rows.append(
            Fig7Row(
                setting=setting.value,
                system=INTENSITY_BASED,
                power_ua=float(np.mean([power for power, _ in iba_stats])),
                accuracy=float(np.mean([accuracy for _, accuracy in iba_stats])),
            )
        )

    return Fig7Result(
        rows=rows,
        stability_threshold=stability_threshold,
        confidence_threshold=confidence_threshold,
    )

"""Fig. 5 — behavioural analysis over a scripted 120-second trace.

The scenario: the user sits for 60 seconds, then walks for 60 seconds.
Fig. 5a of the paper shows the raw 3-axis accelerometer stream and
Fig. 5b the sensor current per second: AdaSense starts at the
full-power configuration, steps down through the SPOT states until it
reaches the minimum (after about 28 seconds with the paper's settings),
stays there until the activity change at t = 60 s, snaps back to full
power and then repeats the descent.

The driver reproduces both series and summarises the quantities a reader
checks against the figure: the time needed to reach the lowest-power
state after the start and after the activity change, and the current
levels before/after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.adasense import AdaSense
from repro.core.config import DEFAULT_SPOT_STATES
from repro.core.controller import SpotController, SpotWithConfidenceController
from repro.datasets.scenarios import make_fig5_schedule
from repro.datasets.synthetic import ScheduledSignal
from repro.experiments.common import Scale, get_trained_systems
from repro.sim.trace import SimulationTrace
from repro.utils.rng import SeedLike


@dataclass
class Fig5Result:
    """Outcome of the Fig. 5 behavioural analysis."""

    trace: SimulationTrace
    accelerometer_times_s: np.ndarray
    accelerometer_samples: np.ndarray
    change_time_s: float
    stability_threshold: int

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def lowest_state_name(self) -> str:
        """Name of the lowest-power SPOT state."""
        return DEFAULT_SPOT_STATES[-1].name

    def time_to_lowest_state(self, after_s: float = 0.0) -> Optional[float]:
        """Seconds after ``after_s`` until the lowest-power state is reached.

        Returns ``None`` when the trace never reaches the lowest state
        after that instant.
        """
        for record in self.trace:
            if record.time_s > after_s and record.config_name == self.lowest_state_name:
                return float(record.time_s - after_s)
        return None

    def descent_time_after_change(self) -> Optional[float]:
        """Length of the descent that follows the activity change.

        Measured from the first post-change visit to the high-power
        state (the snap-back) until the lowest-power state is reached
        again, mirroring how the paper reads "another 28 seconds" off
        Fig. 5b.  Returns ``None`` if the snap-back or the subsequent
        descent never happens.
        """
        high_name = DEFAULT_SPOT_STATES[0].name
        snap_back_time: Optional[float] = None
        for record in self.trace:
            if record.time_s <= self.change_time_s:
                continue
            if snap_back_time is None:
                if record.config_name == high_name:
                    snap_back_time = record.time_s
            elif record.config_name == self.lowest_state_name:
                return float(record.time_s - snap_back_time)
        return None

    @property
    def current_series(self) -> np.ndarray:
        """Per-second sensor current (the Fig. 5b series)."""
        return self.trace.currents_ua

    @property
    def snapped_back_after_change(self) -> bool:
        """Whether the controller returned to full power after the activity change."""
        high_name = DEFAULT_SPOT_STATES[0].name
        for record in self.trace:
            if record.time_s > self.change_time_s + 1.0:
                if record.config_name == high_name:
                    return True
        return False

    def format_table(self) -> str:
        """Summary of the behavioural trace."""
        descent_1 = self.time_to_lowest_state(0.0)
        descent_2 = self.descent_time_after_change()
        residency = self.trace.state_residency()
        lines = [
            f"schedule                     : sit {self.change_time_s:.0f} s then walk",
            f"stability threshold          : {self.stability_threshold} s",
            f"time to lowest state (start) : "
            f"{descent_1 if descent_1 is not None else float('nan'):.1f} s",
            f"time to lowest state (change): "
            f"{descent_2 if descent_2 is not None else float('nan'):.1f} s",
            f"snapped back after change    : {self.snapped_back_after_change}",
            f"average current              : {self.trace.average_current_ua:.1f} uA",
            f"trace accuracy               : {self.trace.accuracy:.3f}",
            "state residency              : "
            + ", ".join(f"{name}={share:.2f}" for name, share in sorted(residency.items())),
        ]
        return "\n".join(lines)


def run_fig5(
    stability_threshold: int = 9,
    confidence_threshold: Optional[float] = 0.85,
    sit_duration_s: float = 60.0,
    walk_duration_s: float = 60.0,
    scale: Scale = "quick",
    seed: SeedLike = 16,
    system: Optional[AdaSense] = None,
) -> Fig5Result:
    """Reproduce the Fig. 5 behavioural analysis.

    Parameters
    ----------
    stability_threshold:
        SPOT stability threshold in seconds.  The paper's trace reaches
        the minimum state after roughly 28 seconds, which corresponds to
        stepping through three states with a threshold of about 9.
    confidence_threshold:
        Confidence gate of the controller (the deployed AdaSense uses
        SPOT with confidence 0.85); pass ``None`` to use plain SPOT.
    sit_duration_s, walk_duration_s:
        Durations of the two bouts.
    scale:
        Which shared trained system to use when ``system`` is not given.
    seed:
        Seed for the signal realisation and sensor noise.
    system:
        Optionally, a pre-trained :class:`AdaSense` system to reuse.
    """
    if system is None:
        system = get_trained_systems(scale=scale).adasense
    if confidence_threshold is None:
        controller: SpotController = SpotController(
            stability_threshold=stability_threshold
        )
    else:
        controller = SpotWithConfidenceController(
            stability_threshold=stability_threshold,
            confidence_threshold=confidence_threshold,
        )
    adaptive = system.with_controller(controller)

    schedule = make_fig5_schedule(sit_duration_s, walk_duration_s)
    signal = ScheduledSignal(schedule, seed=seed)
    trace = adaptive.simulate(signal, seed=seed)

    # The raw accelerometer stream of Fig. 5a, rendered at the full-power
    # output rate so the gait harmonics are visible.
    times = np.arange(0.0, signal.duration_s, 1.0 / 50.0)
    samples = signal.evaluate(times)

    return Fig5Result(
        trace=trace,
        accelerometer_times_s=times,
        accelerometer_samples=samples,
        change_time_s=float(sit_duration_s),
        stability_threshold=stability_threshold,
    )

"""Section V-D — memory requirements and data-processing overhead.

Two short comparisons round off the paper's evaluation:

* **Memory.** NK et al. keep a separate classifier per sensor
  configuration, so their storage cost scales with the number of
  configurations; AdaSense stores one shared classifier.  With the two
  configurations of the intensity-based baseline the paper reports a 2x
  saving; against one-classifier-per-SPOT-state the saving would be 4x.
* **Processing.** The intensity-based approach must additionally compute
  the first derivative of the raw sample batch every second to estimate
  activity intensity; AdaSense's controller only compares classifier
  outputs, so it adds no per-batch arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.intensity_based import IntensityBasedApproach
from repro.core.adasense import AdaSense
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG
from repro.energy.mcu import McuModel
from repro.experiments.common import Scale, get_trained_systems


@dataclass
class MemoryOverheadResult:
    """Memory and processing comparison between AdaSense and the baseline."""

    adasense_memory_bytes: int
    iba_memory_bytes: int
    per_state_memory_bytes: int
    adasense_cycles_per_step: int
    iba_cycles_per_step: int

    @property
    def memory_saving_vs_iba(self) -> float:
        """How many times smaller AdaSense's classifier storage is vs IbA."""
        return self.iba_memory_bytes / self.adasense_memory_bytes

    @property
    def memory_saving_vs_per_state(self) -> float:
        """Saving versus retraining one classifier per SPOT state."""
        return self.per_state_memory_bytes / self.adasense_memory_bytes

    @property
    def processing_overhead_of_iba(self) -> float:
        """Relative extra cycles IbA spends per classification step."""
        return (
            self.iba_cycles_per_step - self.adasense_cycles_per_step
        ) / self.adasense_cycles_per_step

    def format_table(self) -> str:
        """Readable summary of both comparisons."""
        lines = [
            f"AdaSense classifier memory        : {self.adasense_memory_bytes:8d} bytes",
            f"IbA classifiers memory            : {self.iba_memory_bytes:8d} bytes",
            f"per-SPOT-state classifiers memory : {self.per_state_memory_bytes:8d} bytes",
            f"memory saving vs IbA              : {self.memory_saving_vs_iba:8.2f} x",
            f"memory saving vs per-state        : {self.memory_saving_vs_per_state:8.2f} x",
            f"AdaSense cycles per step          : {self.adasense_cycles_per_step:8d}",
            f"IbA cycles per step               : {self.iba_cycles_per_step:8d}",
            f"IbA processing overhead           : "
            f"{100.0 * self.processing_overhead_of_iba:7.1f} %",
        ]
        return "\n".join(lines)


def run_memory_overhead(
    scale: Scale = "quick",
    seed: int = 2020,
    mcu: Optional[McuModel] = None,
    adasense: Optional[AdaSense] = None,
    intensity_based: Optional[IntensityBasedApproach] = None,
) -> MemoryOverheadResult:
    """Reproduce the Section V-D memory / processing comparison.

    Parameters
    ----------
    scale, seed:
        Which shared trained systems to use.
    mcu:
        MCU cost model (defaults to the CC2640R2F-flavoured model).
    adasense, intensity_based:
        Optionally pre-trained systems to reuse.
    """
    if adasense is None or intensity_based is None:
        trained = get_trained_systems(scale=scale, seed=seed)
        adasense = adasense if adasense is not None else trained.adasense
        intensity_based = (
            intensity_based if intensity_based is not None else trained.intensity_based
        )
    mcu = mcu if mcu is not None else McuModel.cc2640r2f()

    adasense_memory = adasense.pipeline.memory_bytes()
    iba_memory = intensity_based.memory_bytes()
    per_state_memory = adasense_memory * len(DEFAULT_SPOT_STATES)

    # Processing cost of one classification step at the full-power
    # configuration (the worst case batch size): AdaSense extracts
    # features and runs inference; IbA additionally differentiates the
    # raw batch to estimate intensity.
    batch_samples = HIGH_POWER_CONFIG.samples_per_window
    adasense_cycles = int(
        mcu.processing_summary(
            num_samples=batch_samples,
            num_parameters=adasense.pipeline.num_parameters,
            include_derivative=False,
        )["total_cycles"]
    )
    iba_pipeline = intensity_based.pipeline_for(intensity_based.high_config)
    iba_cycles = int(
        mcu.processing_summary(
            num_samples=batch_samples,
            num_parameters=iba_pipeline.num_parameters,
            include_derivative=True,
        )["total_cycles"]
    )

    return MemoryOverheadResult(
        adasense_memory_bytes=adasense_memory,
        iba_memory_bytes=iba_memory,
        per_state_memory_bytes=per_state_memory,
        adasense_cycles_per_step=adasense_cycles,
        iba_cycles_per_step=iba_cycles,
    )

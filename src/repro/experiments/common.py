"""Shared setup for the experiment drivers.

Several figures need the same expensive artefacts: an AdaSense system
with its shared classifier trained on the four SPOT states, and the
intensity-based baseline with its two per-configuration classifiers.
Training them takes a few seconds, so this module builds them once per
process (memoised on the experiment *scale* and seed) and hands the same
instances to every driver and benchmark.

Two scales are provided:

* ``"quick"`` — small training sets and short simulations; used by the
  test suite and by benchmark smoke runs.
* ``"paper"`` — training-set size comparable to the paper's 7300 windows
  and longer simulations; used when regenerating the figures properly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Literal

from repro.baselines.intensity_based import IntensityBasedApproach
from repro.baselines.static import AlwaysHighPowerBaseline
from repro.core.adasense import AdaSense
from repro.core.config import DEFAULT_SPOT_STATES
from repro.core.controller import StaticController

Scale = Literal["quick", "paper"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity against runtime.

    Attributes
    ----------
    windows_per_activity_per_config:
        Training windows per (activity, configuration) pair for the
        shared classifier.
    baseline_windows_per_activity:
        Training windows per activity for each of the baseline's
        per-configuration classifiers.
    dse_windows_per_activity:
        Windows per activity used when evaluating each Table I
        configuration in the design-space exploration.
    simulation_duration_s:
        Length of each simulated schedule.
    simulation_repeats:
        Number of schedules averaged per measurement point.
    """

    windows_per_activity_per_config: int
    baseline_windows_per_activity: int
    dse_windows_per_activity: int
    simulation_duration_s: float
    simulation_repeats: int


#: Parameters for the two supported scales.
SCALES: Dict[str, ExperimentScale] = {
    "quick": ExperimentScale(
        windows_per_activity_per_config=25,
        baseline_windows_per_activity=40,
        dse_windows_per_activity=30,
        simulation_duration_s=300.0,
        simulation_repeats=2,
    ),
    "paper": ExperimentScale(
        windows_per_activity_per_config=300,
        baseline_windows_per_activity=300,
        dse_windows_per_activity=120,
        simulation_duration_s=600.0,
        simulation_repeats=5,
    ),
}


def get_scale(scale: Scale) -> ExperimentScale:
    """Look up the parameters of a named experiment scale."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    return SCALES[scale]


@dataclass(frozen=True)
class TrainedSystems:
    """The trained artefacts shared by the experiment drivers.

    Attributes
    ----------
    adasense:
        AdaSense with the shared classifier trained on all four SPOT
        states (the controller attached to it is irrelevant; drivers
        swap controllers via :meth:`AdaSense.with_controller`).
    baseline:
        The always-high-power baseline sharing AdaSense's pipeline.
    intensity_based:
        The NK et al. intensity-based approach with its per-configuration
        classifiers.
    scale:
        The scale the artefacts were built at.
    seed:
        The master seed used for training.
    """

    adasense: AdaSense
    baseline: AlwaysHighPowerBaseline
    intensity_based: IntensityBasedApproach
    scale: ExperimentScale
    seed: int


@lru_cache(maxsize=4)
def get_trained_systems(scale: Scale = "quick", seed: int = 2020) -> TrainedSystems:
    """Train (or fetch the memoised) systems for the requested scale.

    Parameters
    ----------
    scale:
        ``"quick"`` for test/benchmark smoke runs, ``"paper"`` for
        full-fidelity figure regeneration.
    seed:
        Master seed controlling training-data generation and weight
        initialisation.
    """
    parameters = get_scale(scale)
    adasense = AdaSense.train(
        configs=DEFAULT_SPOT_STATES,
        windows_per_activity_per_config=parameters.windows_per_activity_per_config,
        seed=seed,
    )
    baseline = AlwaysHighPowerBaseline(
        pipeline=adasense.pipeline,
        power_model=adasense.power_model,
        noise=adasense.noise_model,
    )
    intensity_based = IntensityBasedApproach.train(
        windows_per_activity=parameters.baseline_windows_per_activity,
        noise=adasense.noise_model,
        power_model=adasense.power_model,
        seed=seed + 1,
    )
    return TrainedSystems(
        adasense=adasense,
        baseline=baseline,
        intensity_based=intensity_based,
        scale=parameters,
        seed=seed,
    )


def fresh_static_controller() -> StaticController:
    """Convenience helper returning a new always-F100_A128 controller."""
    return StaticController()

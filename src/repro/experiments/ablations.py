"""Ablations of the design choices called out in DESIGN.md.

Three knobs of the AdaSense design are varied independently:

* **Fourier features** — how many spectral features per axis the unified
  feature vector keeps, and whether they are band energies or raw FFT
  bins (the paper keeps three coefficients covering up to 3 Hz);
* **Classifier capacity** — the width of the shared MLP's hidden layer,
  which trades recognition accuracy against classifier memory;
* **SPOT state count** — how many Pareto configurations the FSM steps
  through, which trades the depth of the power savings against how often
  a misclassification can strand the sensor at an inaccurate state.

Each ablation returns a small result object with ``format_table()`` so
the benchmarks can print it alongside the main figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adasense import AdaSense
from repro.core.config import DEFAULT_SPOT_STATES, SensorConfig
from repro.core.controller import SpotWithConfidenceController
from repro.core.features import FeatureExtractor
from repro.core.pipeline import HarPipeline
from repro.datasets.scenarios import ScheduleSpec, generate_random_schedule
from repro.datasets.synthetic import ScheduledSignal
from repro.datasets.windows import WindowDatasetBuilder
from repro.experiments.common import Scale, get_trained_systems
from repro.utils.rng import SeedLike, stable_seed_from


# ----------------------------------------------------------------------
# Feature ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FeatureAblationRow:
    """Accuracy obtained with one feature-extraction configuration."""

    n_fourier_features: int
    fourier_mode: str
    num_features: int
    accuracy: float


@dataclass
class FeatureAblationResult:
    """Accuracy as a function of the Fourier-feature configuration."""

    rows: List[FeatureAblationRow]

    def best_row(self) -> FeatureAblationRow:
        """The configuration with the highest held-out accuracy."""
        return max(self.rows, key=lambda row: row.accuracy)

    def format_table(self) -> str:
        """Readable ablation table."""
        lines = [
            f"{'fourier features':>16}  {'mode':>6}  {'vector size':>11}  {'accuracy':>8}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.n_fourier_features:16d}  {row.fourier_mode:>6}  "
                f"{row.num_features:11d}  {row.accuracy:8.3f}"
            )
        return "\n".join(lines)


def run_feature_ablation(
    fourier_counts: Sequence[int] = (1, 2, 3, 5),
    modes: Sequence[str] = ("bands", "bins"),
    configs: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
    windows_per_activity_per_config: int = 30,
    seed: SeedLike = 2020,
) -> FeatureAblationResult:
    """Vary the Fourier-feature configuration of the unified feature vector."""
    rows: List[FeatureAblationRow] = []
    for mode in modes:
        for count in fourier_counts:
            extractor = FeatureExtractor(n_fourier_features=count, fourier_mode=mode)
            builder = WindowDatasetBuilder(
                extractor=extractor,
                seed=stable_seed_from(seed, "feature-ablation", mode, count),
            )
            dataset = builder.build(
                configs=configs,
                windows_per_activity_per_config=windows_per_activity_per_config,
            )
            train, test = dataset.split(
                test_fraction=0.3, seed=stable_seed_from(seed, "split", mode, count)
            )
            pipeline = HarPipeline.train(
                train,
                extractor=extractor,
                seed=stable_seed_from(seed, "model", mode, count),
            )
            rows.append(
                FeatureAblationRow(
                    n_fourier_features=count,
                    fourier_mode=mode,
                    num_features=extractor.num_features,
                    accuracy=pipeline.evaluate(test),
                )
            )
    return FeatureAblationResult(rows=rows)


# ----------------------------------------------------------------------
# Classifier-capacity ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClassifierAblationRow:
    """Accuracy and memory cost of one hidden-layer width."""

    hidden_units: int
    num_parameters: int
    memory_bytes: int
    accuracy: float


@dataclass
class ClassifierAblationResult:
    """Accuracy / memory trade-off of the shared classifier."""

    rows: List[ClassifierAblationRow]

    def format_table(self) -> str:
        """Readable ablation table."""
        lines = [
            f"{'hidden units':>12}  {'parameters':>10}  {'memory (B)':>10}  {'accuracy':>8}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.hidden_units:12d}  {row.num_parameters:10d}  "
                f"{row.memory_bytes:10d}  {row.accuracy:8.3f}"
            )
        return "\n".join(lines)


def run_classifier_ablation(
    hidden_sizes: Sequence[int] = (8, 16, 32, 64),
    configs: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
    windows_per_activity_per_config: int = 30,
    seed: SeedLike = 2020,
) -> ClassifierAblationResult:
    """Vary the hidden-layer width of the shared classifier."""
    builder = WindowDatasetBuilder(seed=stable_seed_from(seed, "classifier-ablation"))
    dataset = builder.build(
        configs=configs,
        windows_per_activity_per_config=windows_per_activity_per_config,
    )
    train, test = dataset.split(test_fraction=0.3, seed=stable_seed_from(seed, "split"))

    rows: List[ClassifierAblationRow] = []
    for hidden in hidden_sizes:
        pipeline = HarPipeline.train(
            train,
            hidden_units=(hidden,),
            seed=stable_seed_from(seed, "model", hidden),
        )
        rows.append(
            ClassifierAblationRow(
                hidden_units=hidden,
                num_parameters=pipeline.num_parameters,
                memory_bytes=pipeline.memory_bytes(),
                accuracy=pipeline.evaluate(test),
            )
        )
    return ClassifierAblationResult(rows=rows)


# ----------------------------------------------------------------------
# SPOT state-count ablation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StateCountAblationRow:
    """Closed-loop accuracy and power with a truncated SPOT state chain."""

    num_states: int
    state_names: Tuple[str, ...]
    accuracy: float
    average_current_ua: float


@dataclass
class StateCountAblationResult:
    """Effect of the number of SPOT states on the closed-loop trade-off."""

    rows: List[StateCountAblationRow]

    def format_table(self) -> str:
        """Readable ablation table."""
        lines = [
            f"{'states':>6}  {'accuracy':>8}  {'current (uA)':>12}  chain"
        ]
        for row in self.rows:
            lines.append(
                f"{row.num_states:6d}  {row.accuracy:8.3f}  "
                f"{row.average_current_ua:12.1f}  {' -> '.join(row.state_names)}"
            )
        return "\n".join(lines)


def run_state_count_ablation(
    state_counts: Sequence[int] = (1, 2, 3, 4),
    stability_threshold: int = 10,
    scale: Scale = "quick",
    seed: int = 2020,
    duration_s: float = 300.0,
    repeats: int = 2,
    system: Optional[AdaSense] = None,
) -> StateCountAblationResult:
    """Vary how many of the Pareto states the SPOT FSM may descend through.

    A single state is the static baseline; two states resemble the
    high/low switching of prior work; four states are the full AdaSense
    chain.
    """
    if system is None:
        system = get_trained_systems(scale=scale, seed=seed).adasense

    spec = ScheduleSpec(total_duration_s=duration_s, min_bout_s=45.0, max_bout_s=90.0)
    signals = []
    for repeat in range(repeats):
        schedule = generate_random_schedule(
            spec, seed=stable_seed_from(seed, "state-ablation", repeat)
        )
        signals.append(
            ScheduledSignal(schedule, seed=stable_seed_from(seed, "signal", repeat))
        )

    rows: List[StateCountAblationRow] = []
    for count in state_counts:
        if count < 1 or count > len(DEFAULT_SPOT_STATES):
            raise ValueError(
                f"state_counts entries must lie in [1, {len(DEFAULT_SPOT_STATES)}], got {count}"
            )
        states = DEFAULT_SPOT_STATES[:count]
        controller = SpotWithConfidenceController(
            states=states, stability_threshold=stability_threshold
        )
        adaptive = system.with_controller(controller)
        accuracies = []
        currents = []
        for index, signal in enumerate(signals):
            trace = adaptive.simulate(
                signal, seed=stable_seed_from(seed, "run", count, index)
            )
            accuracies.append(trace.accuracy)
            currents.append(trace.average_current_ua)
        rows.append(
            StateCountAblationRow(
                num_states=count,
                state_names=tuple(config.name for config in states),
                accuracy=float(np.mean(accuracies)),
                average_current_ua=float(np.mean(currents)),
            )
        )
    return StateCountAblationResult(rows=rows)

"""Configuration-mismatch experiment (the motivation for shared training).

Section III-C argues that "classification accuracy can degrade
significantly if the sensor configurations of the test data are
different from the configurations of the training data", which is why
AdaSense either needs one classifier per configuration (memory overhead)
or — its choice — a single classifier trained on data from *all* the
configurations the controller may select.

This experiment quantifies that argument on the simulated substrate: it
trains one classifier only on full-power (F100_A128) windows and one on
the union of the four SPOT states, then evaluates both on held-out
windows of every state.  The mismatched classifier should lose accuracy
on the low-power configurations while the shared classifier holds up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, SensorConfig
from repro.core.pipeline import HarPipeline
from repro.datasets.windows import WindowDataset, WindowDatasetBuilder
from repro.utils.rng import SeedLike, stable_seed_from


@dataclass(frozen=True)
class MismatchRow:
    """Accuracy of both training regimes on one evaluation configuration."""

    config_name: str
    matched_training_accuracy: float
    mismatched_training_accuracy: float

    @property
    def degradation(self) -> float:
        """Accuracy lost by training only on the full-power configuration."""
        return self.matched_training_accuracy - self.mismatched_training_accuracy


@dataclass
class MismatchResult:
    """Per-configuration accuracies for shared versus mismatched training."""

    rows: List[MismatchRow]

    def row_for(self, config: "SensorConfig | str") -> MismatchRow:
        """Look up the row of one evaluation configuration."""
        name = config.name if isinstance(config, SensorConfig) else str(config)
        for row in self.rows:
            if row.config_name == name:
                return row
        raise KeyError(f"no mismatch row for configuration {name!r}")

    @property
    def worst_degradation(self) -> float:
        """Largest accuracy loss caused by mismatched training."""
        return max(row.degradation for row in self.rows)

    @property
    def mean_degradation(self) -> float:
        """Average accuracy loss over the evaluated configurations."""
        return float(np.mean([row.degradation for row in self.rows]))

    def format_table(self) -> str:
        """Readable comparison table."""
        lines = [
            f"{'configuration':>14}  {'shared training':>15}  "
            f"{'F100-only training':>18}  {'degradation':>11}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.config_name:>14}  {row.matched_training_accuracy:15.3f}  "
                f"{row.mismatched_training_accuracy:18.3f}  {row.degradation:11.3f}"
            )
        lines.append("")
        lines.append(f"mean degradation : {self.mean_degradation:.3f}")
        lines.append(f"worst degradation: {self.worst_degradation:.3f}")
        return "\n".join(lines)


def run_mismatch(
    configs: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
    windows_per_activity_per_config: int = 40,
    test_windows_per_activity: int = 25,
    hidden_units: Tuple[int, ...] = (32,),
    seed: SeedLike = 2020,
) -> MismatchResult:
    """Quantify the cost of training on a single sensor configuration.

    Parameters
    ----------
    configs:
        Configurations to evaluate on (default: the four SPOT states).
    windows_per_activity_per_config:
        Training windows per (activity, configuration) pair for the
        shared classifier; the mismatched classifier receives the same
        *total* number of windows, all from the full-power configuration,
        so the comparison is not confounded by training-set size.
    test_windows_per_activity:
        Held-out windows per activity per configuration.
    hidden_units:
        Classifier architecture (same for both regimes).
    seed:
        Master seed.
    """
    builder = WindowDatasetBuilder(seed=stable_seed_from(seed, "mismatch-train"))
    shared_dataset = builder.build(
        configs=configs,
        windows_per_activity_per_config=windows_per_activity_per_config,
    )
    mismatched_dataset = builder.build(
        configs=[HIGH_POWER_CONFIG],
        windows_per_activity_per_config=windows_per_activity_per_config * len(configs),
    )

    shared_pipeline = HarPipeline.train(
        shared_dataset, hidden_units=hidden_units, seed=stable_seed_from(seed, "shared")
    )
    mismatched_pipeline = HarPipeline.train(
        mismatched_dataset,
        hidden_units=hidden_units,
        seed=stable_seed_from(seed, "mismatched"),
    )

    eval_builder = WindowDatasetBuilder(seed=stable_seed_from(seed, "mismatch-eval"))
    rows: List[MismatchRow] = []
    for config in configs:
        test_dataset = eval_builder.build_for_config(
            config, windows_per_activity=test_windows_per_activity
        )
        rows.append(
            MismatchRow(
                config_name=config.name,
                matched_training_accuracy=shared_pipeline.evaluate(test_dataset),
                mismatched_training_accuracy=mismatched_pipeline.evaluate(test_dataset),
            )
        )
    return MismatchResult(rows=rows)

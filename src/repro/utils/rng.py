"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer
seed, ``None`` or an existing :class:`numpy.random.Generator`.  The
helpers in this module normalise those three spellings so that callers
can reproduce any run exactly by passing a single integer at the top of
the stack.
"""

from __future__ import annotations

from copy import deepcopy
from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for unseeded entropy, an ``int`` for a deterministic
        generator, or an existing generator which is returned untouched.

    Returns
    -------
    numpy.random.Generator
        A generator usable by the caller.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed_sequences(
    seed: SeedLike, count: int
) -> List[np.random.SeedSequence]:
    """Spawn ``count`` child :class:`numpy.random.SeedSequence` objects.

    The children are derived from the parent generator's own seed
    sequence, so two different children never share a stream even when
    the parent seed is reused elsewhere.

    Not every generator carries a seed sequence: bit generators built
    from an explicit key or raw state (``np.random.Philox(key=...)``,
    restored pickles, third-party bit generators) expose
    ``seed_seq=None`` or no ``seed_seq`` at all.  Those parents are
    reseeded *deterministically*: entropy is drawn from a **copy** of
    the generator, so the children are a pure function of the parent's
    current state — never of process-level entropy — and the parent's
    own output stream is not advanced (the guarantee
    :meth:`repro.sensors.noise_bank.NoiseBank.from_rngs` documents).
    The flip side of leaving the parent untouched: repeated calls on a
    seed-sequence-less parent return *identical* children unless the
    parent is drawn from in between, whereas seed-sequence parents
    advance their spawn counter and always yield fresh children.

    Parameters
    ----------
    seed:
        Seed (or generator) for the parent stream.
    count:
        Number of child sequences to create.  Must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_rng(seed)
    seed_seq = getattr(parent.bit_generator, "seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        entropy = deepcopy(parent).integers(0, 2**32, size=8, dtype=np.uint32)
        seed_seq = np.random.SeedSequence(entropy=[int(word) for word in entropy])
    return seed_seq.spawn(count)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    The children are derived through :class:`numpy.random.SeedSequence`
    spawning (see :func:`derive_seed_sequences`), so two different
    children never share a stream even when the parent seed is reused
    elsewhere.  Generators whose bit generator carries no seed sequence
    (for example ``np.random.Philox(key=...)``) are reseeded
    deterministically from their own output stream instead of raising.

    Parameters
    ----------
    seed:
        Seed (or generator) for the parent stream.
    count:
        Number of child generators to create.  Must be non-negative.

    Returns
    -------
    list of numpy.random.Generator
    """
    return [
        np.random.default_rng(child)
        for child in derive_seed_sequences(seed, count)
    ]


def stable_seed_from(*parts: Union[int, str]) -> int:
    """Derive a deterministic 32-bit seed from a mix of ints and strings.

    Useful when an experiment wants per-configuration or per-trial seeds
    that are stable across processes (``hash`` is randomised per process
    for strings, so it cannot be used directly).
    """
    acc = 1469598103934665603  # FNV-1a offset basis
    prime = 1099511628211
    mask = (1 << 64) - 1
    for part in parts:
        data: Iterable[int]
        if isinstance(part, str):
            data = part.encode("utf-8")
        else:
            data = int(part).to_bytes(8, "little", signed=True)
        for byte in data:
            acc = (acc ^ byte) & mask
            acc = (acc * prime) & mask
    return int(acc % (2**31 - 1))


def optional_rng(seed: SeedLike, default: Optional[np.random.Generator] = None) -> np.random.Generator:
    """Return ``default`` when ``seed`` is ``None`` and a fallback exists.

    This keeps long-lived objects (for example a simulated sensor) able
    to reuse an internal generator unless the caller explicitly asks for
    a fresh seed.
    """
    if seed is None and default is not None:
        return default
    return as_rng(seed)

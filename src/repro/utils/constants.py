"""Physical and unit constants shared across the library.

Only constants that appear in more than one subpackage live here; values
specific to a single model (for example the BMI160 current figures) are
kept next to the model that uses them so that the provenance is obvious.
"""

#: Standard gravitational acceleration in metres per second squared.
GRAVITY_MS2: float = 9.80665

#: Multiplier converting a base SI unit into its "micro" prefix
#: (e.g. amperes -> microamperes).
MICRO: float = 1e6

#: Number of seconds in a minute.
SECONDS_PER_MINUTE: float = 60.0

#: Number of seconds in an hour.
SECONDS_PER_HOUR: float = 3600.0

"""Small shared utilities used across the AdaSense reproduction.

The helpers here are deliberately dependency-light: argument validation,
seeded random-number-generator handling and a handful of physical
constants.  Every other subpackage may import from :mod:`repro.utils`,
but :mod:`repro.utils` never imports from the rest of the library.
"""

from repro.utils.constants import (
    GRAVITY_MS2,
    MICRO,
    SECONDS_PER_MINUTE,
    SECONDS_PER_HOUR,
)
from repro.utils.rng import as_rng, derive_seed_sequences, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape,
)

__all__ = [
    "GRAVITY_MS2",
    "MICRO",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "as_rng",
    "derive_seed_sequences",
    "spawn_rngs",
    "check_fraction",
    "check_in_choices",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_shape",
]

"""Argument-validation helpers.

The library is used both programmatically and from benchmark scripts
that sweep wide parameter ranges, so early, descriptive failures are
preferable to silent misbehaviour deep inside a simulation.  Each helper
raises ``ValueError`` (or ``TypeError`` where appropriate) with a message
that names the offending argument.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_positive_int(value: Any, name: str) -> int:
    """Ensure ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Ensure ``value`` lies in the open interval (0, 1)."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0 or value >= 1.0:
        raise ValueError(f"{name} must lie strictly between 0 and 1, got {value!r}")
    return value


def check_in_choices(value: Any, name: str, choices: Iterable[Any]) -> Any:
    """Ensure ``value`` is one of ``choices``."""
    options = tuple(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def check_shape(array: np.ndarray, name: str, shape: Sequence[int | None]) -> np.ndarray:
    """Ensure ``array`` matches ``shape`` where ``None`` entries are wildcards.

    Parameters
    ----------
    array:
        Array (or array-like) to validate.  The array is converted with
        :func:`numpy.asarray` and returned.
    name:
        Argument name used in error messages.
    shape:
        Expected shape; ``None`` in a position means "any size".
    """
    array = np.asarray(array)
    expected: Tuple[int | None, ...] = tuple(shape)
    if array.ndim != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got {array.ndim} "
            f"(shape {array.shape})"
        )
    for axis, want in enumerate(expected):
        if want is not None and array.shape[axis] != want:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {expected} "
                f"(mismatch on axis {axis})"
            )
    return array

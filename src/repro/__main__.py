"""``python -m repro`` — alias for the command-line interface."""

from repro.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

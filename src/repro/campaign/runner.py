"""Fused execution of a whole campaign grid as one stacked fleet.

Running a V-point controller grid naively means V independent fleet
runs that re-synthesize the *same* clean signals, re-fill the *same*
noise pools and rebuild the *same* spectral plans.  The
:class:`CampaignRunner` instead lays all variants out as one fused
fleet of ``V x D`` virtual devices (:func:`repro.campaign.grid.virtual_profiles`)
and pushes them through the existing :class:`repro.exec.engine.StepEngine`
in one pass, so per tick the expensive shared structure is paid once:

* every variant of physical device ``d`` shares one
  :class:`~repro.datasets.synthetic.ScheduledSignal` realisation
  (``StepEngine.runtimes_from_profiles``), and the batched acquisition
  layer's signal tables evaluate each physical device once per cohort
  and *gather* the duplicated rows (``campaign.shared_group_hits``);
* truth labels are resolved once per physical schedule;
* devices from different variants that sit in the same sensor
  configuration are sensed in one stacked cohort and classified in the
  same single batched call as the rest of the fleet;
* the process-wide spectral plan cache is shared across every variant
  within a tick;
* virtual devices that are *behaviourally indistinguishable* are not
  simulated at all: grid axes a device's controller kind ignores
  (confidence cutoffs for plain SPOT, every controller axis for static
  and intensity devices) collapse onto one representative per
  ``(physical device, behaviour)`` class
  (:func:`repro.campaign.grid.fused_layout`), whose trace is fanned
  back out to every duplicate variant at fold time.

Because each virtual device keeps its *own* generator — seeded from the
physical device's seed and rewound to the post-synthesis stream
position — variant v of device d draws bit-identical sensor bias and
noise to an independent run of that variant, which is what the
equivalence suite (``tests/test_campaign.py``) pins.

Sharding splits the fused fleet on the variant axis (variant-major
layout + contiguous shard plan), so the PR 8 supervised coordinator,
round checkpoints and resume work unchanged; results are invariant to
the shard count and to fresh-vs-resumed execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.grid import CampaignVariant, fused_layout
from repro.campaign.pareto import ParetoPoint, pareto_fronts, variant_points
from repro.core.pipeline import HarPipeline
from repro.exec.sharding import ShardedFleetSimulator
from repro.fleet.engine import (
    FleetResult,
    FleetSimulator,
    resolve_fleet_duration,
)
from repro.fleet.population import DeviceProfile
from repro.fleet.telemetry import FleetTelemetry
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ
from repro.core.features import WINDOW_DURATION_S

#: JSON schema tag of :meth:`CampaignResult.to_dict`.
CAMPAIGN_SCHEMA = "repro.campaign/v1"


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one campaign run (fused or naive).

    Attributes
    ----------
    variants:
        The evaluated grid points, in grid order.
    results:
        One per-variant :class:`FleetResult` (physical device ids,
        traces in device order) — for a fused run these are slices of
        the fused fleet's merged traces.
    telemetries:
        One :class:`FleetTelemetry` per variant, parallel to
        ``variants``.
    fronts:
        Per-scenario 3-D Pareto fronts (accuracy up, energy down,
        battery up) across variants, including the ``"fleet"``
        aggregate.
    mode:
        ``"fused"`` (one stacked fleet of V x D virtual devices) or
        ``"naive"`` (V sequential independent fleet runs).
    num_shards:
        Shards the fused fleet ran across (1 for in-process runs and
        every naive run).
    unique_devices:
        Virtual devices actually simulated after behaviour dedupe
        (``None`` for naive runs, which simulate every grid point).
    metrics:
        Merged metrics snapshot when the run was metered, else ``None``.
    """

    variants: Tuple[CampaignVariant, ...]
    results: Tuple[FleetResult, ...]
    telemetries: Tuple[FleetTelemetry, ...]
    fronts: Dict[str, List[ParetoPoint]]
    elapsed_s: float
    duration_s: float
    num_devices: int
    mode: str
    trace_mode: str
    num_shards: int = 1
    unique_devices: Optional[int] = None
    metrics: Optional[MetricsSnapshot] = None

    def __post_init__(self) -> None:
        if not (
            len(self.variants) == len(self.results) == len(self.telemetries)
        ):
            raise ValueError(
                "variants, results and telemetries must be parallel"
            )

    @property
    def num_variants(self) -> int:
        """Grid points evaluated."""
        return len(self.variants)

    @property
    def virtual_devices(self) -> int:
        """Virtual devices the fused layout spans."""
        return self.num_variants * self.num_devices

    @property
    def simulated_devices(self) -> int:
        """Virtual devices actually simulated after behaviour dedupe."""
        if self.unique_devices is not None:
            return self.unique_devices
        return self.virtual_devices

    @property
    def device_seconds(self) -> float:
        """Total simulated device-time across all variants, in seconds."""
        return float(sum(result.device_seconds for result in self.results))

    @property
    def throughput_device_seconds_per_s(self) -> float:
        """Simulated device-seconds per wall-clock second."""
        if self.elapsed_s <= 0.0:
            return float("inf")
        return self.device_seconds / self.elapsed_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable campaign report (schema ``repro.campaign/v1``)."""
        return {
            "schema": CAMPAIGN_SCHEMA,
            "meta": {
                "mode": self.mode,
                "trace": self.trace_mode,
                "num_variants": self.num_variants,
                "num_devices": self.num_devices,
                "virtual_devices": self.virtual_devices,
                "simulated_devices": self.simulated_devices,
                "num_shards": self.num_shards,
                "duration_s": self.duration_s,
                "elapsed_s": self.elapsed_s,
                "device_seconds": self.device_seconds,
                "throughput_device_seconds_per_s": (
                    self.throughput_device_seconds_per_s
                ),
            },
            "variants": [
                {
                    "name": variant.name,
                    "overrides": {
                        key: list(value) if isinstance(value, tuple) else value
                        for key, value in variant.overrides.items()
                    },
                    "fleet": telemetry.fleet_summary(),
                    "by_scenario": telemetry.by_scenario(),
                }
                for variant, telemetry in zip(self.variants, self.telemetries)
            ],
            "pareto_fronts": {
                scenario: [point.to_dict() for point in front]
                for scenario, front in self.fronts.items()
            },
        }

    def format_table(self) -> str:
        """Human-readable campaign summary for the CLI."""
        lines = [
            f"variants           : {self.num_variants}",
            f"devices            : {self.num_devices} physical, "
            f"{self.virtual_devices} virtual "
            f"({self.simulated_devices} simulated after dedupe)",
            f"mode               : {self.mode} ({self.num_shards} shards)",
            (
                "throughput         : "
                f"{self.throughput_device_seconds_per_s:.0f} "
                f"device-seconds/s ({self.elapsed_s:.2f} s wall clock)"
            ),
            "pareto fronts      :",
        ]
        for scenario, front in self.fronts.items():
            lines.append(f"  {scenario} ({len(front)} non-dominated):")
            for point in front:
                lines.append(
                    f"    {point.variant:<40} acc {point.accuracy:.3f}  "
                    f"{point.energy_uc / 1e6:8.2f} C  "
                    f"{point.battery_life_days:6.1f} days"
                )
        return "\n".join(lines)


class CampaignRunner:
    """Executes a variant grid over one population as a fused fleet.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared by every variant.
    variants:
        The grid points (see :func:`repro.campaign.grid.variant_grid`).
    internal_rate_hz, step_s, window_duration_s, features, sensing, controllers, noise, dtype:
        Engine settings, as in :class:`repro.fleet.engine.FleetSimulator`.
        Campaigns default to the batched acquisition layer
        (``noise="batched"``) — that is the lane whose signal tables
        share evaluations across variants.
    metrics:
        Optional coordinator :class:`MetricsRegistry`; metered runs
        report ``campaign.variants`` / ``campaign.devices`` gauges and
        the engine's ``campaign.shared_group_hits`` counter.
    num_shards:
        Default shard count for :meth:`run`; ``None`` runs in-process.
        Shard counts that divide the variant count split the fused
        fleet into whole-variant blocks.
    checkpoint_dir, round_s, resume, max_retries, shard_timeout_s, fault_plan:
        Supervision and checkpoint/resume options forwarded to
        :class:`repro.exec.sharding.ShardedFleetSimulator`; campaigns
        checkpoint at round boundaries and resume bit-identically.
    monitor, heartbeat_s, flight_dir:
        Live-telemetry options forwarded to
        :class:`repro.exec.sharding.ShardedFleetSimulator`: a
        :class:`repro.obs.live.RunMonitor` turns the fused run into a
        watchable one (heartbeats, progress/ETA, stragglers, NDJSON
        events, flight-recorder crash dumps) without changing a single
        trace bit.  Passing a monitor forces sharded execution, since
        heartbeats ride the supervisor's worker pipes.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        variants: Sequence[CampaignVariant],
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
        controllers: str = "bank",
        noise: str = "batched",
        dtype: str = "float64",
        metrics: Optional[MetricsRegistry] = None,
        num_shards: Optional[int] = None,
        checkpoint_dir=None,
        round_s: Optional[float] = None,
        resume: bool = False,
        max_retries: int = 2,
        shard_timeout_s: Optional[float] = None,
        fault_plan=None,
        monitor=None,
        heartbeat_s: Optional[float] = None,
        flight_dir=None,
    ) -> None:
        self._variants: Tuple[CampaignVariant, ...] = tuple(variants)
        if not self._variants:
            raise ValueError("campaign needs at least one variant")
        names = [variant.name for variant in self._variants]
        if len(set(names)) != len(names):
            raise ValueError("variant names must be unique")
        self._pipeline = pipeline
        self._metrics = metrics
        self._settings: Dict[str, object] = {
            "internal_rate_hz": internal_rate_hz,
            "step_s": step_s,
            "window_duration_s": window_duration_s,
            "features": features,
            "sensing": sensing,
            "controllers": controllers,
            "noise": noise,
            "dtype": dtype,
        }
        self._num_shards = num_shards
        self._supervision: Dict[str, object] = {
            "checkpoint_dir": checkpoint_dir,
            "round_s": round_s,
            "resume": resume,
            "max_retries": max_retries,
            "shard_timeout_s": shard_timeout_s,
            "fault_plan": fault_plan,
            "monitor": monitor,
            "heartbeat_s": heartbeat_s,
            "flight_dir": flight_dir,
        }
        self._sharded = (
            num_shards is not None
            or checkpoint_dir is not None
            or resume
            or monitor is not None
        )
        # Validate engine settings eagerly.
        FleetSimulator(pipeline, **self._settings)

    @property
    def variants(self) -> Tuple[CampaignVariant, ...]:
        """The campaign's grid points."""
        return self._variants

    @property
    def metrics(self):
        """The runner's metrics recorder (null recorder when unmetered)."""
        from repro.obs.metrics import NULL_RECORDER

        return self._metrics if self._metrics is not None else NULL_RECORDER

    # ------------------------------------------------------------------
    # Fused execution
    # ------------------------------------------------------------------
    def run(
        self,
        population: "Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
        trace: str = "summary",
        num_shards: Optional[int] = None,
    ) -> CampaignResult:
        """Run every variant as one fused stacked fleet.

        Returns per-variant traces bit-identical to independent runs of
        each variant over the same population (any shard count, fresh
        or resumed).
        """
        physical = tuple(population)
        fused, assignment = fused_layout(physical, self._variants)
        duration = resolve_fleet_duration(fused, duration_s)
        if self._metrics is not None:
            self._metrics.gauge("campaign.variants", len(self._variants))
            self._metrics.gauge("campaign.devices", len(physical))
            self._metrics.gauge("campaign.unique_devices", len(fused))

        start = time.perf_counter()
        snapshot: Optional[MetricsSnapshot] = None
        if self._sharded or num_shards is not None:
            sharded = ShardedFleetSimulator(
                self._pipeline,
                num_shards=num_shards
                if num_shards is not None
                else self._num_shards,
                metrics=self._metrics,
                **self._settings,
                **self._supervision,
            )
            run = sharded.run(fused, duration_s=duration, trace=trace)
            traces = run.result.traces
            snapshot = run.metrics
            shards_used = run.num_shards
        else:
            simulator = FleetSimulator(
                self._pipeline, metrics=self._metrics, **self._settings
            )
            result = simulator.run(fused, duration_s=duration, trace=trace)
            traces = result.traces
            if self._metrics is not None:
                snapshot = self._metrics.snapshot()
            shards_used = 1
        elapsed = time.perf_counter() - start
        return self._fold(
            physical, traces, assignment, duration, elapsed, trace, "fused",
            shards_used, snapshot, unique_devices=len(fused),
        )

    # ------------------------------------------------------------------
    # Naive reference (sequential independent variants)
    # ------------------------------------------------------------------
    def run_naive(
        self,
        population: "Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
        trace: str = "summary",
    ) -> CampaignResult:
        """Run each variant as its own independent fleet, sequentially.

        This is the cold-start baseline the fused path is benchmarked
        against (and validated against, trace by trace): every variant
        pays population acquisition, signal synthesis and engine-state
        construction from scratch.
        """
        physical = tuple(population)
        duration = resolve_fleet_duration(physical, duration_s)
        start = time.perf_counter()
        traces: List[object] = []
        for variant in self._variants:
            simulator = FleetSimulator(
                self._pipeline, metrics=self._metrics, **self._settings
            )
            result = simulator.run(
                variant.profiles_for(physical), duration_s=duration,
                trace=trace,
            )
            traces.extend(result.traces)
        elapsed = time.perf_counter() - start
        snapshot = (
            self._metrics.snapshot() if self._metrics is not None else None
        )
        num_devices = len(physical)
        assignment = tuple(
            tuple(range(index * num_devices, (index + 1) * num_devices))
            for index in range(len(self._variants))
        )
        return self._fold(
            physical, tuple(traces), assignment, duration, elapsed, trace,
            "naive", 1, snapshot, unique_devices=None,
        )

    # ------------------------------------------------------------------
    # Folding fused traces back into per-variant results
    # ------------------------------------------------------------------
    def _fold(
        self,
        physical: Tuple[DeviceProfile, ...],
        traces: Tuple,
        assignment: Tuple[Tuple[int, ...], ...],
        duration: float,
        elapsed: float,
        trace: str,
        mode: str,
        num_shards: int,
        snapshot: Optional[MetricsSnapshot],
        unique_devices: Optional[int] = None,
    ) -> CampaignResult:
        num_devices = len(physical)
        results: List[FleetResult] = []
        telemetries: List[FleetTelemetry] = []
        per_variant_points: List[List[ParetoPoint]] = []
        for index, variant in enumerate(self._variants):
            block = tuple(traces[position] for position in assignment[index])
            result = FleetResult(
                profiles=variant.profiles_for(physical),
                traces=block,
                elapsed_s=elapsed / len(self._variants),
                mode=mode,
                trace_mode=trace,
            )
            telemetry = FleetTelemetry.from_result(result)
            results.append(result)
            telemetries.append(telemetry)
            per_variant_points.append(variant_points(variant.name, telemetry))
        return CampaignResult(
            variants=self._variants,
            results=tuple(results),
            telemetries=tuple(telemetries),
            fronts=pareto_fronts(per_variant_points),
            elapsed_s=elapsed,
            duration_s=duration,
            num_devices=num_devices,
            mode=mode,
            trace_mode=trace,
            num_shards=num_shards,
            unique_devices=unique_devices,
            metrics=snapshot,
        )

"""Per-archetype Pareto fronts over campaign variants.

The paper's design-space exploration (Fig. 2) extracts a 2-D
accuracy/current Pareto front over *sensor configurations* for one
device.  A campaign asks the fleet-scale version of that question: over
*controller variants*, which grid points are non-dominated in the
3-objective space of recognition accuracy (higher is better), sensor
energy (lower is better) and battery life (higher is better) — and how
does the answer differ per behaviour archetype?  Each
:class:`ParetoPoint` is one variant's mean operating point for one
scenario, computed from the fleet telemetry's per-device reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.fleet.telemetry import FleetTelemetry


@dataclass(frozen=True)
class ParetoPoint:
    """One variant's mean operating point for one scenario.

    Attributes
    ----------
    variant:
        Name of the campaign variant.
    scenario:
        Behaviour scenario (archetype or activity setting) the devices
        follow, or ``"fleet"`` for the all-scenario aggregate.
    num_devices:
        Devices behind the aggregate.
    accuracy:
        Mean per-device classification accuracy (maximised).
    energy_uc:
        Mean per-device sensor charge drawn, in microcoulombs
        (minimised).
    battery_life_days:
        Mean per-device estimated battery life (maximised).
    """

    variant: str
    scenario: str
    num_devices: int
    accuracy: float
    energy_uc: float
    battery_life_days: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view of the point."""
        return {
            "variant": self.variant,
            "scenario": self.scenario,
            "num_devices": self.num_devices,
            "accuracy": self.accuracy,
            "energy_uc": self.energy_uc,
            "battery_life_days": self.battery_life_days,
        }

    def dominates(self, other: "ParetoPoint") -> bool:
        """Whether this point Pareto-dominates ``other``.

        Better-or-equal on all three objectives and strictly better on
        at least one.
        """
        better_or_equal = (
            self.accuracy >= other.accuracy
            and self.energy_uc <= other.energy_uc
            and self.battery_life_days >= other.battery_life_days
        )
        strictly_better = (
            self.accuracy > other.accuracy
            or self.energy_uc < other.energy_uc
            or self.battery_life_days > other.battery_life_days
        )
        return better_or_equal and strictly_better


def variant_points(
    variant_name: str, telemetry: FleetTelemetry
) -> List[ParetoPoint]:
    """One point per scenario (plus the ``"fleet"`` aggregate) for a variant."""
    groups: Dict[str, List] = {}
    for report in telemetry.reports:
        groups.setdefault(report.scenario, []).append(report)
        groups.setdefault("fleet", []).append(report)
    points: List[ParetoPoint] = []
    for scenario in sorted(groups):
        members = groups[scenario]
        points.append(
            ParetoPoint(
                variant=variant_name,
                scenario=scenario,
                num_devices=len(members),
                accuracy=float(np.mean([m.accuracy for m in members])),
                energy_uc=float(np.mean([m.energy_uc for m in members])),
                battery_life_days=float(
                    np.mean([m.battery_life_days for m in members])
                ),
            )
        )
    return points


def pareto_front_3d(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset of ``points`` in the 3-objective space.

    The front is sorted by decreasing accuracy, then increasing energy,
    so the first entry is the most accurate surviving variant.
    """
    candidates = list(points)
    front = [
        point
        for point in candidates
        if not any(
            other.dominates(point) for other in candidates if other is not point
        )
    ]
    front.sort(key=lambda p: (-p.accuracy, p.energy_uc, -p.battery_life_days))
    return front


def pareto_fronts(
    per_variant: Sequence[List[ParetoPoint]],
) -> Dict[str, List[ParetoPoint]]:
    """Per-scenario fronts over all variants' points.

    Parameters
    ----------
    per_variant:
        One :func:`variant_points` list per campaign variant.

    Returns
    -------
    dict
        Scenario name -> Pareto front across variants (including the
        ``"fleet"`` aggregate scenario).
    """
    by_scenario: Dict[str, List[ParetoPoint]] = {}
    for points in per_variant:
        for point in points:
            by_scenario.setdefault(point.scenario, []).append(point)
    return {
        scenario: pareto_front_3d(points)
        for scenario, points in sorted(by_scenario.items())
    }

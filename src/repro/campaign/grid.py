"""Campaign variant grids: controller hyperparameter sweeps over one fleet.

A *campaign* evaluates V controller variants — SPOT stability
thresholds, confidence cutoffs, config tables, forced controller kinds —
over one shared :class:`repro.fleet.population.DevicePopulation`.  Each
variant is a named bundle of :class:`ControllerSpec` field overrides;
applying a variant to a population rewrites every device's controller
spec while keeping its *physical* identity (schedule, noise, power
model, battery and — crucially — seed) untouched, so variant v of
device d experiences exactly the signal and noise an independent run of
that variant would.

:func:`virtual_profiles` lays the V variant populations out as one
fused fleet of ``V x D`` virtual devices in variant-major order
(``virtual_id = v * D + d``): contiguous shard splits then cut on the
variant axis, and slicing the fused traces back per variant is a plain
stride.

:func:`fused_layout` goes one step further and *dedupes* the layout on
:meth:`ControllerSpec.behavior_key`: a grid axis a device's controller
kind ignores (confidence cutoffs for plain SPOT devices, every
controller axis for static and intensity devices) produces virtual
duplicates that would simulate bit-identically, so only one
representative per ``(physical device, behaviour)`` class enters the
fused fleet and its trace is fanned back out to every duplicate at fold
time.  This is what turns a V-point grid over a mixed-controller
population into far fewer than ``V x D`` simulated devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.fleet.population import ControllerSpec, DeviceProfile

#: ControllerSpec fields a campaign variant may override.
OVERRIDABLE_FIELDS: Tuple[str, ...] = (
    "kind",
    "stability_threshold",
    "confidence_threshold",
    "static_config_name",
    "config_table",
)


@dataclass(frozen=True)
class CampaignVariant:
    """One grid point: a named set of controller-spec overrides.

    Attributes
    ----------
    name:
        Stable human-readable identifier (used in Pareto points, JSON
        exports and metrics).
    overrides:
        Mapping of :class:`ControllerSpec` field names to replacement
        values, applied to every device's spec with
        :func:`dataclasses.replace`.  An empty mapping is the baseline
        variant (the population exactly as generated).
    """

    name: str
    overrides: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variant name must not be empty")
        unknown = set(self.overrides) - set(OVERRIDABLE_FIELDS)
        if unknown:
            raise ValueError(
                f"variant {self.name!r} overrides unknown ControllerSpec "
                f"fields: {sorted(unknown)}"
            )
        object.__setattr__(self, "overrides", dict(self.overrides))

    def apply(self, spec: ControllerSpec) -> ControllerSpec:
        """Rewrite one device's controller spec with this variant.

        A ``config_table`` override only applies to devices that end up
        with a SPOT-family kind — static and intensity devices keep
        their spec unchanged by that axis, so a table sweep over a
        mixed-controller population grids the SPOT cohort without
        invalidating the rest.
        """
        if not self.overrides:
            return spec
        overrides = dict(self.overrides)
        kind = overrides.get("kind", spec.kind)
        if kind not in ("spot", "spot_confidence"):
            overrides.pop("config_table", None)
        if not overrides:
            return spec
        return replace(spec, **overrides)

    def profiles_for(
        self, profiles: Sequence[DeviceProfile]
    ) -> Tuple[DeviceProfile, ...]:
        """The population as this variant sees it, physical device ids.

        This is exactly the population an *independent* run of the
        variant would simulate — the fused-vs-independent equivalence
        tests run it through a plain fleet simulation.
        """
        return tuple(
            replace(profile, controller=self.apply(profile.controller))
            for profile in profiles
        )


def virtual_profiles(
    profiles: Sequence[DeviceProfile],
    variants: Sequence[CampaignVariant],
) -> Tuple[DeviceProfile, ...]:
    """Lay out all variants as one fused fleet of ``V x D`` devices.

    Variant-major order: virtual device ``v * D + d`` is physical
    device ``d`` under variant ``v``, keeping its schedule, noise,
    power model, battery and seed — only the controller spec (and the
    device id, which is pure metadata) changes.
    """
    physical = tuple(profiles)
    if not physical:
        raise ValueError("population must contain at least one device")
    if not variants:
        raise ValueError("campaign needs at least one variant")
    num_devices = len(physical)
    fused: List[DeviceProfile] = []
    for index, variant in enumerate(variants):
        for profile in variant.profiles_for(physical):
            fused.append(
                replace(
                    profile,
                    device_id=index * num_devices + profile.device_id,
                )
            )
    return tuple(fused)


def fused_layout(
    profiles: Sequence[DeviceProfile],
    variants: Sequence[CampaignVariant],
) -> Tuple[Tuple[DeviceProfile, ...], Tuple[Tuple[int, ...], ...]]:
    """Deduplicated fused layout plus the variant-to-trace assignment.

    Scans the ``V x D`` virtual grid in variant-major order and keeps
    only the first virtual device of every ``(physical device,
    behaviour-key)`` equivalence class — all later members would
    simulate bit-identically (same seed, schedule, noise model and an
    indistinguishable controller), so simulating the representative
    once suffices for all of them.

    Returns ``(representatives, assignment)`` where ``representatives``
    is the fused fleet to simulate (device ids keep the virtual-major
    numbering of their first occurrence, hence strictly increasing) and
    ``assignment[v][d]`` is the index into the representatives' traces
    that variant ``v`` of physical device ``d`` should read.
    """
    physical = tuple(profiles)
    if not physical:
        raise ValueError("population must contain at least one device")
    if not variants:
        raise ValueError("campaign needs at least one variant")
    num_devices = len(physical)
    representatives: List[DeviceProfile] = []
    assignment: List[Tuple[int, ...]] = []
    positions: Dict[Tuple[int, Tuple[object, ...]], int] = {}
    for index, variant in enumerate(variants):
        row: List[int] = []
        for profile in physical:
            spec = variant.apply(profile.controller)
            key = (profile.device_id, spec.behavior_key())
            position = positions.get(key)
            if position is None:
                position = len(representatives)
                positions[key] = position
                representatives.append(
                    replace(
                        profile,
                        controller=spec,
                        device_id=index * num_devices + profile.device_id,
                    )
                )
            row.append(position)
        assignment.append(tuple(row))
    return tuple(representatives), tuple(assignment)


def _format_axis_value(value: object) -> str:
    if isinstance(value, tuple):
        return "+".join(str(item) for item in value)
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def variant_grid(
    stability_thresholds: Optional[Sequence[int]] = None,
    confidence_thresholds: Optional[Sequence[float]] = None,
    config_tables: Optional[Sequence[Sequence[str]]] = None,
    controller_kinds: Optional[Sequence[str]] = None,
) -> Tuple[CampaignVariant, ...]:
    """Build the cartesian product of the provided hyperparameter axes.

    Every axis is optional; omitted axes keep each device's generated
    value.  With no axes at all the grid is the single ``baseline``
    variant.  Variant names encode the grid point, e.g.
    ``"kind=spot|t=10|table=F100_A128+F12.5_A8"``.
    """
    axes: List[Tuple[str, str, List[object]]] = []
    if controller_kinds is not None:
        axes.append(("kind", "kind", [str(kind) for kind in controller_kinds]))
    if stability_thresholds is not None:
        axes.append(
            ("stability_threshold", "t", [int(t) for t in stability_thresholds])
        )
    if confidence_thresholds is not None:
        axes.append(
            ("confidence_threshold", "c", [float(c) for c in confidence_thresholds])
        )
    if config_tables is not None:
        axes.append(
            (
                "config_table",
                "table",
                [tuple(str(name) for name in table) for table in config_tables],
            )
        )
    for field_name, _, values in axes:
        if not values:
            raise ValueError(f"axis {field_name!r} must not be empty")

    if not axes:
        return (CampaignVariant("baseline"),)

    variants: List[CampaignVariant] = []
    points: List[Mapping[str, object]] = [{}]
    for field_name, _, values in axes:
        points = [
            {**point, field_name: value} for point in points for value in values
        ]
    short = {field_name: tag for field_name, tag, _ in axes}
    for point in points:
        name = "|".join(
            f"{short[field_name]}={_format_axis_value(value)}"
            for field_name, value in point.items()
        )
        variants.append(CampaignVariant(name, point))
    return tuple(variants)

"""Fused multi-variant campaign execution: a DSE grid as one fleet.

A *campaign* grids controller hyperparameters — SPOT stability
thresholds, confidence cutoffs, config tables, forced controller kinds
— over one shared device population and executes every grid point at
once as a single fused stacked fleet of ``V x D`` virtual devices
(:class:`CampaignRunner`).  Signal realisations, signal-table
evaluations, truth labels, stacked sensing cohorts, the batched
classifier call and the spectral plan cache are all shared across
variants within each tick, while every virtual device keeps the private
noise stream its physical seed implies — so each variant's traces are
bit-identical to an independent run, at a fraction of the cost.

>>> from repro import AdaSense
>>> from repro.campaign import CampaignRunner, variant_grid
>>> from repro.fleet import DevicePopulation
>>> system = AdaSense.train(windows_per_activity_per_config=16, seed=0)
>>> population = DevicePopulation.generate(8, duration_s=60.0, master_seed=1)
>>> variants = variant_grid(stability_thresholds=(10, 30))
>>> campaign = CampaignRunner(system.pipeline, variants)
>>> result = campaign.run(population, trace="summary")
>>> result.num_variants
2
"""

from repro.campaign.grid import (
    CampaignVariant,
    OVERRIDABLE_FIELDS,
    fused_layout,
    variant_grid,
    virtual_profiles,
)
from repro.campaign.pareto import (
    ParetoPoint,
    pareto_front_3d,
    pareto_fronts,
    variant_points,
)
from repro.campaign.runner import (
    CAMPAIGN_SCHEMA,
    CampaignResult,
    CampaignRunner,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignResult",
    "CampaignRunner",
    "CampaignVariant",
    "OVERRIDABLE_FIELDS",
    "ParetoPoint",
    "fused_layout",
    "pareto_front_3d",
    "pareto_fronts",
    "variant_grid",
    "variant_points",
    "virtual_profiles",
]

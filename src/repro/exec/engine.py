"""The shared execution core: one per-tick protocol for every simulator.

Before this module existed the repository carried two parallel
implementations of the sense → classify → adapt loop — the single-device
:class:`repro.sim.runtime.ClosedLoopSimulator` and the fleet-scale
:class:`repro.fleet.engine.FleetSimulator` — each replicating the
other's random-draw order by hand.  :class:`StepEngine` collapses them:
both simulators are now thin facades that build
:class:`DeviceRuntime` states and hand them to one engine.

Per simulated tick the engine performs, for every device:

1. **Sense** — acquire one step of samples under the controller's
   active configuration.  Devices sharing a configuration are read with
   one stacked pass (:func:`repro.sensors.imu.read_windows_stacked`),
   bit-identical to per-device acquisition because every device keeps
   its own noise stream.
2. **Buffer** — push the acquisition into the device's classification
   buffer (flushing on configuration change) and feed the controller's
   optional ``observe_window`` hook.
3. **Extract** — turn buffered windows into feature vectors.  The
   default ``features="incremental"`` path caches each second's partial
   sums and low-frequency DFT coefficients
   (:class:`repro.core.features.IncrementalFeatureExtractor`) so an
   overlapping window costs one new-chunk reduction plus a cheap
   combine; warm-up windows, configuration switches and misaligned
   geometries fall back to the exact full-window path, which
   ``features="exact"`` forces everywhere.
4. **Classify** — one batched classifier call for the whole device set
   (batch-size invariant, so results do not depend on fleet
   composition).
5. **Adapt & record** — advance each controller and append a
   :class:`repro.sim.trace.StepRecord`.

Determinism contract: for a fixed set of runtimes the engine produces
the same traces regardless of ``sensing`` mode, feature batching, or
how devices are grouped — which is what makes process sharding
(:mod:`repro.exec.sharding`) a pure partitioning concern.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SensorConfig
from repro.core.features import (
    WINDOW_DURATION_S,
    ChunkPartials,
    IncrementalFeatureExtractor,
    WindowGeometry,
)
from repro.core.pipeline import HarPipeline
from repro.datasets.synthetic import ScheduledSignal
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import (
    DEFAULT_INTERNAL_RATE_HZ,
    NoiseModel,
    SimulatedAccelerometer,
    read_windows_stacked,
)
from repro.sim.trace import SimulationTrace, StepRecord
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

#: Feature-extraction modes the engine supports.
FEATURE_MODES: Tuple[str, ...] = ("incremental", "exact")

#: Acquisition modes the engine supports.
SENSING_MODES: Tuple[str, ...] = ("stacked", "per_device")


class DeviceRuntime:
    """Mutable per-device state advanced by :class:`StepEngine`.

    Construction replicates the random-draw order the original
    single-device loop established: one stream per device seeds first
    the signal realisation (when built from a profile), then the sensor
    bias, then every per-step noise draw.
    """

    __slots__ = (
        "signal",
        "sensor",
        "buffer",
        "controller",
        "observe",
        "power_model",
        "rng",
        "trace",
        "active_config",
        "partials",
        "chunks_in_config",
        "previous_config",
    )

    def __init__(
        self,
        signal: ScheduledSignal,
        controller,
        power_model: AccelerometerPowerModel,
        noise: NoiseModel,
        rng,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> None:
        self.signal = signal
        self.rng = as_rng(rng)
        self.sensor = SimulatedAccelerometer(
            signal=signal,
            noise=noise,
            internal_rate_hz=internal_rate_hz,
            seed=self.rng,
        )
        self.buffer = SampleBuffer(window_duration_s=window_duration_s)
        self.controller = controller
        self.controller.reset()
        self.observe: Optional[Callable] = getattr(
            self.controller, "observe_window", None
        )
        self.power_model = power_model
        self.trace = SimulationTrace()
        self.active_config: Optional[SensorConfig] = None
        #: Cached per-chunk feature partials, oldest first.
        self.partials: Deque[ChunkPartials] = deque()
        #: Chunks acquired since the configuration last changed.
        self.chunks_in_config = 0
        self.previous_config: Optional[SensorConfig] = None

    @classmethod
    def from_profile(
        cls,
        profile,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> "DeviceRuntime":
        """Build the runtime of one fleet device from its profile."""
        rng = as_rng(profile.seed)
        signal = ScheduledSignal(list(profile.schedule), seed=rng)
        return cls(
            signal=signal,
            controller=profile.make_controller(),
            power_model=profile.power_model,
            noise=profile.noise,
            rng=rng,
            internal_rate_hz=internal_rate_hz,
            window_duration_s=window_duration_s,
        )


class StepEngine:
    """Advances a set of :class:`DeviceRuntime` states in lock step.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared by every device.
    internal_rate_hz:
        Internal conversion rate of every simulated accelerometer.
    step_s:
        Classification period (one second in the paper).
    window_duration_s:
        Length of the classification buffer (two seconds in the paper).
    features:
        ``"incremental"`` (default) caches per-chunk partial features
        and combines overlapping windows cheaply; ``"exact"`` extracts
        every window from scratch (the pre-refactor behaviour).
    sensing:
        ``"stacked"`` (default) acquires all devices sharing a
        configuration in one vectorised pass; ``"per_device"`` reads
        each sensor individually.  Both produce bit-identical samples.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
    ) -> None:
        check_positive(step_s, "step_s")
        check_positive(window_duration_s, "window_duration_s")
        if window_duration_s < step_s:
            raise ValueError(
                "window_duration_s must be at least step_s, got "
                f"{window_duration_s} < {step_s}"
            )
        if features not in FEATURE_MODES:
            raise ValueError(
                f"features must be one of {FEATURE_MODES}, got {features!r}"
            )
        if sensing not in SENSING_MODES:
            raise ValueError(
                f"sensing must be one of {SENSING_MODES}, got {sensing!r}"
            )
        self._pipeline = pipeline
        self._internal_rate_hz = float(internal_rate_hz)
        self._step_s = float(step_s)
        self._window_duration_s = float(window_duration_s)
        self._features = features
        self._sensing = sensing
        self._incremental = IncrementalFeatureExtractor(pipeline.extractor)
        self._geometries: Dict[SensorConfig, Optional[WindowGeometry]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._pipeline

    @property
    def internal_rate_hz(self) -> float:
        """Internal conversion rate of the simulated accelerometers."""
        return self._internal_rate_hz

    @property
    def step_s(self) -> float:
        """Classification period in seconds."""
        return self._step_s

    @property
    def window_duration_s(self) -> float:
        """Classification-buffer length in seconds."""
        return self._window_duration_s

    @property
    def features(self) -> str:
        """The active feature-extraction mode."""
        return self._features

    @property
    def sensing(self) -> str:
        """The active acquisition mode."""
        return self._sensing

    # ------------------------------------------------------------------
    # Runtime construction
    # ------------------------------------------------------------------
    def make_runtime(
        self,
        signal: ScheduledSignal,
        controller,
        power_model: AccelerometerPowerModel,
        noise: NoiseModel,
        rng,
    ) -> DeviceRuntime:
        """Build a runtime matching this engine's timing parameters."""
        return DeviceRuntime(
            signal=signal,
            controller=controller,
            power_model=power_model,
            noise=noise,
            rng=rng,
            internal_rate_hz=self._internal_rate_hz,
            window_duration_s=self._window_duration_s,
        )

    def runtime_from_profile(self, profile) -> DeviceRuntime:
        """Build a fleet-device runtime matching this engine's timing."""
        return DeviceRuntime.from_profile(
            profile,
            internal_rate_hz=self._internal_rate_hz,
            window_duration_s=self._window_duration_s,
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self, runtimes: Sequence[DeviceRuntime], num_steps: int
    ) -> List[SimulationTrace]:
        """Advance every runtime ``num_steps`` ticks and return the traces."""
        if not runtimes:
            raise ValueError("run needs at least one device runtime")
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        step_s = self._step_s
        # Ground truth is taken at the midpoint of each step's newest
        # second of data; precomputing it per device removes one scalar
        # segment lookup per device per tick from the hot loop.
        midpoints = step_s * np.arange(1, num_steps + 1) - 0.5 * step_s
        truths = [runtime.signal.activities_at(midpoints) for runtime in runtimes]

        for step_index in range(1, num_steps + 1):
            step_end = step_index * step_s

            # Phase 1: group devices by active configuration and acquire.
            groups: Dict[SensorConfig, List[int]] = {}
            for index, runtime in enumerate(runtimes):
                config = runtime.controller.current_config
                runtime.active_config = config
                groups.setdefault(config, []).append(index)

            acquisitions: List = [None] * len(runtimes)
            for config, indices in groups.items():
                if self._sensing == "stacked":
                    windows = read_windows_stacked(
                        [runtimes[i].sensor for i in indices],
                        end_time_s=step_end,
                        duration_s=step_s,
                        config=config,
                        rngs=[runtimes[i].rng for i in indices],
                    )
                else:
                    windows = [
                        runtimes[i].sensor.read_window(
                            end_time_s=step_end,
                            duration_s=step_s,
                            config=config,
                            rng=runtimes[i].rng,
                        )
                        for i in indices
                    ]
                for i, window in zip(indices, windows):
                    acquisitions[i] = window

            # Phase 2: buffers, observe hooks, chunk bookkeeping.
            for index, runtime in enumerate(runtimes):
                runtime.buffer.push(acquisitions[index])
                if runtime.observe is not None:
                    runtime.observe(acquisitions[index])
                if runtime.active_config != runtime.previous_config:
                    runtime.partials.clear()
                    runtime.chunks_in_config = 0
                    runtime.previous_config = runtime.active_config
                runtime.chunks_in_config += 1

            # Phase 3: feature extraction (incremental where possible).
            features = np.empty(
                (len(runtimes), self._pipeline.extractor.num_features)
            )
            for config, indices in groups.items():
                self._extract_group(runtimes, acquisitions, features, config, indices)

            # Phase 4: one batched classification for the whole device set.
            results = self._pipeline.classify_batch(features)

            # Phase 5: controllers advance, traces record.
            for index, runtime in enumerate(runtimes):
                result = results[index]
                runtime.controller.update(result.activity, result.confidence)
                runtime.trace.append(
                    StepRecord(
                        time_s=step_end,
                        true_activity=truths[index][step_index - 1],
                        predicted_activity=result.activity,
                        confidence=result.confidence,
                        config_name=runtime.active_config.name,
                        current_ua=runtime.power_model.current_ua(
                            runtime.active_config
                        ),
                        duration_s=step_s,
                    )
                )
        return [runtime.trace for runtime in runtimes]

    # ------------------------------------------------------------------
    # Feature extraction internals
    # ------------------------------------------------------------------
    def _geometry(self, config: SensorConfig) -> Optional[WindowGeometry]:
        if config not in self._geometries:
            self._geometries[config] = WindowGeometry.for_window(
                config.sampling_hz, self._step_s, self._window_duration_s
            )
        return self._geometries[config]

    def _extract_group(
        self,
        runtimes: Sequence[DeviceRuntime],
        acquisitions: Sequence,
        features: np.ndarray,
        config: SensorConfig,
        indices: List[int],
    ) -> None:
        """Fill the feature rows of one configuration group."""
        geometry = (
            self._geometry(config) if self._features == "incremental" else None
        )
        exact_indices = indices
        if geometry is not None:
            chunks = np.stack([acquisitions[i].samples for i in indices])
            partials = self._incremental.chunk_partials_stacked(chunks, geometry)
            cached = geometry.cached_chunks
            steady: List[int] = []
            exact_indices = []
            for i, chunk_partials in zip(indices, partials):
                runtime = runtimes[i]
                runtime.partials.append(chunk_partials)
                while len(runtime.partials) > cached:
                    runtime.partials.popleft()
                if (
                    runtime.chunks_in_config >= cached
                    and runtime.buffer.num_samples == geometry.window_samples
                ):
                    steady.append(i)
                else:
                    exact_indices.append(i)
            if steady:
                features[steady] = self._incremental.combine_stacked(
                    [runtimes[i].partials for i in steady], geometry
                )
        if exact_indices:
            # Warm-up windows (and the "exact" toggle) take the
            # full-window path; extract_batch stacks equal-shape windows
            # and keeps the input order.
            features[exact_indices] = self._incremental.extractor.extract_batch(
                [
                    (runtimes[i].buffer.window().samples, config.sampling_hz)
                    for i in exact_indices
                ]
            )

"""The shared execution core: one per-tick protocol for every simulator.

Before this module existed the repository carried two parallel
implementations of the sense → classify → adapt loop — the single-device
:class:`repro.sim.runtime.ClosedLoopSimulator` and the fleet-scale
:class:`repro.fleet.engine.FleetSimulator` — each replicating the
other's random-draw order by hand.  :class:`StepEngine` collapses them:
both simulators are now thin facades that build
:class:`DeviceRuntime` states and hand them to one engine.

Per simulated tick the engine performs, for every device:

1. **Sense** — acquire one step of samples under the controller's
   active configuration.  Devices sharing a configuration are read with
   one stacked pass (:func:`repro.sensors.imu.read_windows_stacked`),
   bit-identical to per-device acquisition because every device keeps
   its own noise stream.  With ``noise="batched"`` the whole layer
   vectorises: measurement noise comes from pooled per-device Philox
   streams (:class:`repro.sensors.noise_bank.NoiseBank`), clean
   signals from persistent per-device component tables
   (:class:`repro.datasets.synthetic.StackedEvaluationCache`), and the
   sensor output stage from stacked
   :class:`repro.sensors.imu.SensorStatics` arrays — statistically
   equivalent noise, bit-identical across engines and shard counts
   within the mode.
2. **Buffer** — push the acquisition into the device's classification
   buffer (flushing on configuration change) and feed the controller's
   optional ``observe_window`` hook.  On the raw-stack path the
   buffers are rows of one fleet-wide ring
   (:class:`repro.sensors.buffer.RingBufferBank`): a configuration
   group is buffered with one scatter and window readiness is one
   array comparison.
3. **Extract** — turn buffered windows into feature vectors.  The
   default ``features="incremental"`` path caches each second's partial
   sums and low-frequency DFT coefficients
   (:class:`repro.core.features.IncrementalFeatureExtractor`) so an
   overlapping window costs one new-chunk reduction plus a cheap
   combine; warm-up windows, configuration switches and misaligned
   geometries fall back to the exact full-window path, which
   ``features="exact"`` forces everywhere.
4. **Classify** — one batched classifier call for the whole device set
   (batch-size invariant, so results do not depend on fleet
   composition).
5. **Adapt & record** — advance the controllers and record the step.
   With ``controllers="bank"`` (the default) every supported controller
   family is advanced by **one vectorized array-of-states pass**
   (:class:`repro.exec.controller_bank.ControllerBank`); unsupported
   custom controllers transparently stay on the per-object path.  With
   ``trace="full"`` the step is appended to a
   :class:`repro.sim.trace.StepRecord` trace; with ``trace="summary"``
   it is folded into O(devices) running telemetry accumulators
   (:class:`repro.sim.trace.TraceSummary`) and no per-step state is
   ever stored.

Determinism contract: for a fixed set of runtimes the engine produces
the same traces regardless of ``sensing`` mode, feature batching,
controller banking, or how devices are grouped — which is what makes
process sharding (:mod:`repro.exec.sharding`) a pure partitioning
concern and ``trace="summary"`` a pure memory optimisation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines.intensity_based import stacked_intensities
from repro.core.activities import Activity
from repro.core.config import SensorConfig
from repro.core.features import (
    WINDOW_DURATION_S,
    ChunkPartials,
    IncrementalFeatureExtractor,
    WindowGeometry,
    plan_cache_stats,
)
from repro.core.pipeline import HarPipeline
from repro.datasets.synthetic import ScheduledSignal, StackedEvaluationCache
from repro.exec.controller_bank import ControllerBank
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.obs.metrics import NULL_RECORDER
from repro.sensors.buffer import RingBufferBank, SampleBuffer
from repro.sensors.imu import (
    DEFAULT_INTERNAL_RATE_HZ,
    NoiseModel,
    SensorStatics,
    SensorWindow,
    SimulatedAccelerometer,
    read_windows_stacked,
    read_windows_stacked_raw,
)
from repro.sensors.noise_bank import NoiseBank
from repro.sim.trace import SimulationTrace, StepRecord, TraceSummary
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

#: Feature-extraction modes the engine supports.
FEATURE_MODES: Tuple[str, ...] = ("incremental", "exact")

#: Acquisition modes the engine supports.
SENSING_MODES: Tuple[str, ...] = ("stacked", "per_device")

#: Controller-advance modes the engine supports.
CONTROLLER_MODES: Tuple[str, ...] = ("bank", "per_object")

#: Trace-collection modes the engine supports.
TRACE_MODES: Tuple[str, ...] = ("full", "summary")

#: Measurement-noise / acquisition-layer modes the engine supports.
NOISE_MODES: Tuple[str, ...] = ("per_device", "batched")

#: Compute-lane dtypes the engine supports.
DTYPE_MODES: Tuple[str, ...] = ("float64", "float32")


class DeviceRuntime:
    """Mutable per-device state advanced by :class:`StepEngine`.

    Construction replicates the random-draw order the original
    single-device loop established: one stream per device seeds first
    the signal realisation (when built from a profile), then the sensor
    bias, then every per-step noise draw.
    """

    __slots__ = (
        "signal",
        "sensor",
        "buffer",
        "controller",
        "observe",
        "power_model",
        "rng",
        "trace",
        "active_config",
        "partials",
        "chunks_in_config",
        "previous_config",
    )

    def __init__(
        self,
        signal: ScheduledSignal,
        controller,
        power_model: AccelerometerPowerModel,
        noise: NoiseModel,
        rng,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> None:
        self.signal = signal
        self.rng = as_rng(rng)
        self.sensor = SimulatedAccelerometer(
            signal=signal,
            noise=noise,
            internal_rate_hz=internal_rate_hz,
            seed=self.rng,
        )
        self.buffer = SampleBuffer(window_duration_s=window_duration_s)
        self.controller = controller
        self.controller.reset()
        self.observe: Optional[Callable] = getattr(
            self.controller, "observe_window", None
        )
        self.power_model = power_model
        self.trace = SimulationTrace()
        self.active_config: Optional[SensorConfig] = None
        #: Cached per-chunk feature partials, oldest first.
        self.partials: Deque[ChunkPartials] = deque()
        #: Chunks acquired since the configuration last changed.
        self.chunks_in_config = 0
        self.previous_config: Optional[SensorConfig] = None

    @classmethod
    def from_profile(
        cls,
        profile,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> "DeviceRuntime":
        """Build the runtime of one fleet device from its profile."""
        rng = as_rng(profile.seed)
        signal = ScheduledSignal(list(profile.schedule), seed=rng)
        return cls(
            signal=signal,
            controller=profile.make_controller(),
            power_model=profile.power_model,
            noise=profile.noise,
            rng=rng,
            internal_rate_hz=internal_rate_hz,
            window_duration_s=window_duration_s,
        )


class _StreamingSummary:
    """Vectorized per-tick telemetry fold over a whole fleet.

    Holds the :class:`repro.sim.trace.TraceSummary` accumulators of
    every device as parallel arrays and folds one tick with a handful
    of elementwise operations.  Because the per-device sequence of
    floating-point additions is exactly the sequence
    :meth:`TraceSummary.fold_step` performs, the emitted summaries are
    bit-identical to replaying a full trace through the scalar fold —
    the property the ``trace="summary"`` equivalence tests pin down.

    Configurations are interned to current columns on first sight, so
    each device's per-configuration sensor current is computed once per
    column, not once per tick.  Dwell and switch counts are keyed by
    configuration *name* (a separate interning), matching the
    per-record fold exactly even if two distinct configurations share a
    name.
    """

    def __init__(self, num_devices: int) -> None:
        self._num_devices = num_devices
        self._columns: Dict[SensorConfig, int] = {}
        self._name_columns: Dict[str, int] = {}
        self._names: List[str] = []
        #: Config column -> name column (grows with the config columns).
        self._name_of_column = np.empty(0, dtype=np.int64)
        self._currents = np.empty((num_devices, 0))
        self._dwell = np.empty((num_devices, 0))
        self._steps = 0
        self._duration = np.zeros(num_devices)
        self._correct = np.zeros(num_devices, dtype=np.int64)
        self._charge = np.zeros(num_devices)
        self._switches = np.zeros(num_devices, dtype=np.int64)
        self._previous_names: Optional[np.ndarray] = None

    def column(
        self, config: SensorConfig, runtimes: Sequence["DeviceRuntime"]
    ) -> int:
        """Current column of ``config``, created on first sight."""
        column = self._columns.get(config)
        if column is None:
            column = len(self._columns)
            self._columns[config] = column
            name_column = self._name_columns.get(config.name)
            if name_column is None:
                name_column = len(self._names)
                self._name_columns[config.name] = name_column
                self._names.append(config.name)
                self._dwell = np.column_stack(
                    [self._dwell, np.zeros(self._num_devices)]
                )
            self._name_of_column = np.append(self._name_of_column, name_column)
            currents = np.array(
                [runtime.power_model.current_ua(config) for runtime in runtimes]
            )
            self._currents = np.column_stack([self._currents, currents])
        return column

    def fold_tick(
        self,
        rows: np.ndarray,
        columns: np.ndarray,
        correct: np.ndarray,
        duration_s: float,
    ) -> None:
        """Fold one tick for every device at once."""
        self._steps += 1
        self._duration += duration_s
        self._correct += correct
        self._charge += self._currents[rows, columns] * duration_s
        names = self._name_of_column[columns]
        self._dwell[rows, names] += duration_s
        if self._previous_names is not None:
            self._switches += names != self._previous_names
        self._previous_names = names

    def summaries(self) -> List[TraceSummary]:
        """Emit one :class:`TraceSummary` per device, in device order."""
        result: List[TraceSummary] = []
        for index in range(self._num_devices):
            dwell = {
                name: float(self._dwell[index, column])
                for column, name in enumerate(self._names)
                if self._dwell[index, column] > 0.0
            }
            result.append(
                TraceSummary(
                    steps=self._steps,
                    duration_s=float(self._duration[index]),
                    correct_steps=int(self._correct[index]),
                    charge_uc=float(self._charge[index]),
                    dwell_s=dwell,
                    config_switches=int(self._switches[index]),
                    last_config=(
                        self._names[self._previous_names[index]]
                        if self._previous_names is not None
                        else None
                    ),
                )
            )
        return result


class EngineState:
    """Reusable per-fleet execution state of one :class:`StepEngine`.

    Everything :meth:`StepEngine.run` used to build per call that
    depends only on the runtimes and the engine modes — the controller
    bank, the fleet-wide ring sample storage, the pooled noise streams,
    the persistent signal-table cache and the stacked sensor/signal
    object arrays — lives here, so repeated runs over the same fleet
    can reuse one instance (via :meth:`StepEngine.make_state` +
    :meth:`reset`) instead of reallocating it every run.

    A state is bound to the engine that built it and to one fixed
    runtime list; :meth:`StepEngine.run` rejects mismatches.  Between
    runs, :meth:`reset` rewinds the mutable parts; the signal-table
    cache is deliberately left warm — its rows depend only on the
    immutable signal realisations, so a reused cache revalidates
    instead of rebuilding (that is the point).

    The state also carries the *mid-simulation* accumulators a
    continued run needs — the per-configuration stacked-partials
    history of the ring path and the streaming telemetry fold of
    ``trace="summary"`` runs — so one simulation can be advanced in
    several :meth:`StepEngine.run` segments (``start_step=``) and stay
    bit-identical to a single uninterrupted run.  That is what makes a
    checkpointed shard resumable: serialise the state between rounds,
    restore it, keep stepping.
    """

    __slots__ = (
        "engine",
        "num_devices",
        "controllers",
        "bank",
        "loose",
        "raw_stacks",
        "ring",
        "chunks_in_config",
        "noise_bank",
        "statics",
        "signal_tables",
        "sensor_array",
        "signal_array",
        "table_rows",
        "partials_history",
        "summary",
    )

    def __init__(self, engine: "StepEngine", runtimes: Sequence[DeviceRuntime]) -> None:
        if not runtimes:
            raise ValueError("an engine state needs at least one device runtime")
        self.engine = engine
        self.num_devices = len(runtimes)
        self.controllers = [runtime.controller for runtime in runtimes]
        self.bank: Optional[ControllerBank] = None
        if engine.controllers == "bank":
            candidate = ControllerBank(self.controllers)
            if candidate.num_banked > 0:
                self.bank = candidate
        self.loose = (
            self.bank.loose_indices
            if self.bank is not None
            else tuple(range(self.num_devices))
        )
        # With the bank active, stacked acquisitions stay one array per
        # configuration group end to end (no per-device window objects).
        self.raw_stacks = self.bank is not None and engine.sensing == "stacked"
        self.ring: Optional[RingBufferBank] = None
        self.chunks_in_config: Optional[np.ndarray] = None
        if self.raw_stacks:
            self.ring = RingBufferBank(
                self.num_devices,
                engine.window_duration_s,
                dtype=engine._np_dtype,
            )
            self.chunks_in_config = np.zeros(self.num_devices, dtype=np.int64)
        self.noise_bank: Optional[NoiseBank] = None
        self.statics: Optional[SensorStatics] = None
        self.signal_tables: Optional[StackedEvaluationCache] = None
        self.sensor_array: Optional[np.ndarray] = None
        self.signal_array: Optional[np.ndarray] = None
        self.table_rows: Optional[np.ndarray] = None
        if engine.noise == "batched":
            self.noise_bank = NoiseBank.from_rngs(
                [runtime.rng for runtime in runtimes]
            )
            self.statics = SensorStatics([runtime.sensor for runtime in runtimes])
            self.signal_tables = StackedEvaluationCache(
                self.num_devices, dtype=engine._np_dtype
            )
            self.sensor_array = np.array(
                [runtime.sensor for runtime in runtimes], dtype=object
            )
            self.signal_array = np.array(
                [runtime.signal for runtime in runtimes], dtype=object
            )
            # Signal-table rows are keyed by signal *identity*: fused
            # multi-variant campaigns run several virtual devices that
            # share one physical device's signal object, and mapping
            # them to one row lets the cache rebuild each bout once and
            # serve every variant by gathering.  Ordinary fleets have
            # one signal per device, so the mapping is the identity and
            # is dropped (``None`` keeps the historical call signature
            # on the hot path).
            first_rows: Dict[int, int] = {}
            table_rows = np.empty(self.num_devices, dtype=np.intp)
            for index, runtime in enumerate(runtimes):
                table_rows[index] = first_rows.setdefault(
                    id(runtime.signal), index
                )
            if len(first_rows) < self.num_devices:
                self.table_rows = table_rows
        #: Ring-path per-configuration stacked-partials history (the
        #: last ``cached_chunks`` tick reductions); lives on the state
        #: so a segmented run keeps its incremental-feature warm-up.
        self.partials_history: Dict[SensorConfig, Deque] = {}
        #: Streaming telemetry fold of ``trace="summary"`` runs,
        #: created lazily on the first summary segment.
        self.summary: Optional["_StreamingSummary"] = None

    def reset(self) -> None:
        """Rewind the mutable state for another run over the same fleet.

        The controller bank snaps back to its construction snapshot (the
        caller must have reset any loose controllers, exactly as fresh
        construction requires), the ring empties without releasing its
        arrays, and the noise streams rewind to their origin.  The
        signal-table cache stays warm on purpose — see the class
        docstring.
        """
        if self.bank is not None:
            self.bank.reset()
        if self.ring is not None:
            self.ring.reset()
        if self.chunks_in_config is not None:
            self.chunks_in_config.fill(0)
        if self.noise_bank is not None:
            self.noise_bank.reset()
        self.partials_history.clear()
        self.summary = None


class StepEngine:
    """Advances a set of :class:`DeviceRuntime` states in lock step.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared by every device.
    internal_rate_hz:
        Internal conversion rate of every simulated accelerometer.
    step_s:
        Classification period (one second in the paper).
    window_duration_s:
        Length of the classification buffer (two seconds in the paper).
    features:
        ``"incremental"`` (default) caches per-chunk partial features
        and combines overlapping windows cheaply; ``"exact"`` extracts
        every window from scratch (the pre-refactor behaviour).
    sensing:
        ``"stacked"`` (default) acquires all devices sharing a
        configuration in one vectorised pass; ``"per_device"`` reads
        each sensor individually.  Both produce bit-identical samples.
    controllers:
        ``"bank"`` (default) advances every supported controller family
        through the vectorized array-of-states
        :class:`repro.exec.controller_bank.ControllerBank` (custom
        controller types automatically stay per-object);
        ``"per_object"`` calls every controller's ``update`` in a
        Python loop (the pre-bank behaviour).  Both produce
        bit-identical traces.
    noise:
        Acquisition-layer mode.  ``"per_device"`` (default) draws every
        device's measurement noise from its own master stream exactly
        as v1.3.0 did — the bit-compatible reference.  ``"batched"``
        switches the whole sense path to the vectorized acquisition
        layer: pooled counter-based noise streams
        (:class:`repro.sensors.noise_bank.NoiseBank`, one Philox stream
        per device), fleet-wide ring sample storage
        (:class:`repro.sensors.buffer.RingBufferBank`) and cached
        clean-signal component tables
        (:class:`repro.datasets.synthetic.StackedEvaluationCache`).
        Batched noise *values* differ from the per-device stream (the
        draws come from a different generator family) but are
        statistically equivalent, and runs are bit-identical across
        engines, sensing/controller modes and shard counts within the
        mode.
    dtype:
        Compute-lane precision.  ``"float64"`` (default) is the
        bit-exact reference — identical to the pre-dtype engine in
        every mode.  ``"float32"`` runs signal synthesis, acquisition
        and feature extraction single-precision end to end (complex64
        spectra), converting to float64 only at the classifier
        boundary: features agree with the float64 lane to ~1e-4
        relative, labels match away from decision boundaries, and runs
        stay bit-identical across engines, sensing/controller modes and
        shard counts *within* the lane.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` the engine
        records phase spans, counters and gauges into while running —
        see :mod:`repro.obs` for the metric glossary.  Defaults to the
        no-op :data:`repro.obs.metrics.NULL_RECORDER`: the unmetered
        path takes no clock readings and allocates nothing per tick.
        Metrics are observation only — metered traces are bit-identical
        to unmetered ones in every mode.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
        controllers: str = "bank",
        noise: str = "per_device",
        dtype: str = "float64",
        metrics=None,
    ) -> None:
        check_positive(step_s, "step_s")
        check_positive(window_duration_s, "window_duration_s")
        if window_duration_s < step_s:
            raise ValueError(
                "window_duration_s must be at least step_s, got "
                f"{window_duration_s} < {step_s}"
            )
        if features not in FEATURE_MODES:
            raise ValueError(
                f"features must be one of {FEATURE_MODES}, got {features!r}"
            )
        if sensing not in SENSING_MODES:
            raise ValueError(
                f"sensing must be one of {SENSING_MODES}, got {sensing!r}"
            )
        if controllers not in CONTROLLER_MODES:
            raise ValueError(
                f"controllers must be one of {CONTROLLER_MODES}, got {controllers!r}"
            )
        if noise not in NOISE_MODES:
            raise ValueError(
                f"noise must be one of {NOISE_MODES}, got {noise!r}"
            )
        if dtype not in DTYPE_MODES:
            raise ValueError(
                f"dtype must be one of {DTYPE_MODES}, got {dtype!r}"
            )
        self._pipeline = pipeline
        self._internal_rate_hz = float(internal_rate_hz)
        self._step_s = float(step_s)
        self._window_duration_s = float(window_duration_s)
        self._features = features
        self._sensing = sensing
        self._controllers = controllers
        self._noise = noise
        self._dtype = dtype
        self._np_dtype = np.dtype(np.float32 if dtype == "float32" else np.float64)
        self._incremental = IncrementalFeatureExtractor(
            pipeline.extractor, dtype=self._np_dtype
        )
        self._geometries: Dict[SensorConfig, Optional[WindowGeometry]] = {}
        self._metrics = metrics if metrics is not None else NULL_RECORDER

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._pipeline

    @property
    def internal_rate_hz(self) -> float:
        """Internal conversion rate of the simulated accelerometers."""
        return self._internal_rate_hz

    @property
    def step_s(self) -> float:
        """Classification period in seconds."""
        return self._step_s

    @property
    def window_duration_s(self) -> float:
        """Classification-buffer length in seconds."""
        return self._window_duration_s

    @property
    def features(self) -> str:
        """The active feature-extraction mode."""
        return self._features

    @property
    def sensing(self) -> str:
        """The active acquisition mode."""
        return self._sensing

    @property
    def controllers(self) -> str:
        """The active controller-advance mode."""
        return self._controllers

    @property
    def noise(self) -> str:
        """The active acquisition-layer mode."""
        return self._noise

    @property
    def dtype(self) -> str:
        """The active compute-lane precision (``"float64"``/``"float32"``)."""
        return self._dtype

    @property
    def metrics(self):
        """The metrics recorder (the no-op null recorder by default)."""
        return self._metrics

    # ------------------------------------------------------------------
    # Runtime construction
    # ------------------------------------------------------------------
    def make_runtime(
        self,
        signal: ScheduledSignal,
        controller,
        power_model: AccelerometerPowerModel,
        noise: NoiseModel,
        rng,
    ) -> DeviceRuntime:
        """Build a runtime matching this engine's timing parameters."""
        return DeviceRuntime(
            signal=signal,
            controller=controller,
            power_model=power_model,
            noise=noise,
            rng=rng,
            internal_rate_hz=self._internal_rate_hz,
            window_duration_s=self._window_duration_s,
        )

    def runtime_from_profile(self, profile) -> DeviceRuntime:
        """Build a fleet-device runtime matching this engine's timing."""
        return DeviceRuntime.from_profile(
            profile,
            internal_rate_hz=self._internal_rate_hz,
            window_duration_s=self._window_duration_s,
        )

    def runtimes_from_profiles(self, profiles) -> List[DeviceRuntime]:
        """Build one runtime per profile, sharing synthesis where possible.

        Profiles with the same integer seed and the same schedule draw
        the *same* signal realisation (signal synthesis consumes the
        seed's stream first, before the sensor bias) — the defining
        property of a fused multi-variant campaign, where every variant
        of one physical device differs only in its controller.  Those
        profiles share one :class:`ScheduledSignal` object; each
        runtime after the first gets a fresh generator restored to the
        post-synthesis stream position, so its sensor-bias and
        noise-stream draws replay bit-identically to an independent
        :meth:`DeviceRuntime.from_profile` construction.

        Ordinary fleets (per-device seeds) see exactly the historical
        per-profile construction, object for object.
        """
        runtimes: List[DeviceRuntime] = []
        shared: Dict[Tuple, Tuple[ScheduledSignal, dict]] = {}
        for profile in profiles:
            seed = profile.seed
            key = (
                (int(seed), profile.schedule)
                if isinstance(seed, (int, np.integer))
                else None
            )
            entry = shared.get(key) if key is not None else None
            if entry is None:
                rng = as_rng(seed)
                signal = ScheduledSignal(list(profile.schedule), seed=rng)
                if key is not None:
                    # ``state`` snapshots the generator right after the
                    # signal draws — the position every sibling runtime
                    # must restart its own stream from.
                    shared[key] = (signal, rng.bit_generator.state)
            else:
                signal, state = entry
                rng = as_rng(int(seed))
                rng.bit_generator.state = state
            runtimes.append(
                DeviceRuntime(
                    signal=signal,
                    controller=profile.make_controller(),
                    power_model=profile.power_model,
                    noise=profile.noise,
                    rng=rng,
                    internal_rate_hz=self._internal_rate_hz,
                    window_duration_s=self._window_duration_s,
                )
            )
        return runtimes

    def make_state(self, runtimes: Sequence[DeviceRuntime]) -> "EngineState":
        """Build the reusable per-fleet execution state for ``runtimes``.

        :meth:`run` builds one internally when none is passed; callers
        that re-run the same fleet (the serving and DSE workloads, the
        benchmark harness) build it once, pass it to every run and call
        :meth:`EngineState.reset` between runs — skipping the ring,
        noise-pool, signal-table and controller-array construction.
        """
        return EngineState(self, runtimes)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        runtimes: Sequence[DeviceRuntime],
        num_steps: int,
        trace: str = "full",
        state: Optional[EngineState] = None,
        start_step: int = 0,
    ) -> Union[List[SimulationTrace], List[TraceSummary]]:
        """Advance every runtime ``num_steps`` ticks.

        Parameters
        ----------
        runtimes:
            The device states to advance, in device order.
        num_steps:
            Number of classification ticks to simulate.
        trace:
            ``"full"`` (default) appends one
            :class:`repro.sim.trace.StepRecord` per device per tick and
            returns the accumulated traces; ``"summary"`` folds every
            tick into O(devices) running telemetry accumulators and
            returns one :class:`repro.sim.trace.TraceSummary` per
            device — same aggregate statistics, bit for bit, without
            ever storing per-step state.
        state:
            Optional reusable execution state from :meth:`make_state`
            built over the *same* runtimes.  When omitted a fresh state
            is constructed (the historical behaviour, bit for bit).
            Callers reusing a state must :meth:`EngineState.reset` it
            between runs.
        start_step:
            Ticks already simulated on ``state`` by earlier segments.
            Simulated time continues at ``start_step * step_s``, so a
            run split into consecutive segments over one state (the
            fault-tolerant round loop) is bit-identical to a single
            ``run(..., num_steps=total)`` call.  Continuing requires
            ``state`` to carry the earlier segments' accumulators —
            pass the same state, unreset.
        """
        if not runtimes:
            raise ValueError("run needs at least one device runtime")
        if num_steps < 0:
            raise ValueError(f"num_steps must be non-negative, got {num_steps}")
        if start_step < 0:
            raise ValueError(
                f"start_step must be non-negative, got {start_step}"
            )
        if trace not in TRACE_MODES:
            raise ValueError(f"trace must be one of {TRACE_MODES}, got {trace!r}")
        if state is None:
            state = EngineState(self, runtimes)
        elif state.engine is not self:
            raise ValueError("state was built by a different engine")
        elif state.num_devices != len(runtimes):
            raise ValueError(
                f"state holds {state.num_devices} devices, got "
                f"{len(runtimes)} runtimes"
            )
        num_devices = len(runtimes)
        step_s = self._step_s
        controllers = state.controllers

        # Ground truth is taken at the midpoint of each step's newest
        # second of data; one precomputed (devices, steps) label matrix
        # removes every per-tick segment lookup from the hot loop.  The
        # per-device Activity lists are only kept for full-trace record
        # building — summary mode fills the matrix row by row and holds
        # nothing else per step.
        midpoints = (
            step_s * np.arange(start_step + 1, start_step + num_steps + 1)
            - 0.5 * step_s
        )
        truth_labels = np.empty((num_devices, num_steps), dtype=np.int64)
        truths: Optional[List] = None
        # Ground-truth lookups are cached by signal identity: a fused
        # campaign's variant runtimes share one signal per physical
        # device, so its activity schedule is resolved once, not once
        # per variant.  Ordinary fleets pay one dict probe per device.
        activity_cache: Dict[int, List[Activity]] = {}
        if trace == "full":
            truths = []
            for runtime in runtimes:
                activities = activity_cache.get(id(runtime.signal))
                if activities is None:
                    activities = runtime.signal.activities_at(midpoints)
                    activity_cache[id(runtime.signal)] = activities
                truths.append(activities)
            truth_labels[:] = np.array(truths, dtype=np.int64).reshape(
                num_devices, num_steps
            )
        else:
            for index, runtime in enumerate(runtimes):
                activities = activity_cache.get(id(runtime.signal))
                if activities is None:
                    activities = runtime.signal.activities_at(midpoints)
                    activity_cache[id(runtime.signal)] = activities
                truth_labels[index] = activities

        bank = state.bank
        loose = state.loose
        # Array-returning classification feeds both the bank and the
        # streaming fold; the per-object full-trace path keeps the
        # result-object API.
        use_arrays = bank is not None or trace == "summary"
        # Continuation accumulators live on the state so a segmented
        # run (fault-tolerant round loop) resumes mid-stream exactly.
        if trace == "summary":
            if state.summary is None:
                state.summary = _StreamingSummary(num_devices)
            summary = state.summary
        else:
            summary = None
        raw_stacks = state.raw_stacks
        partials_history = state.partials_history
        # The batched acquisition layer (pooled noise streams, cached
        # clean-signal tables, ring sample storage) now lives on the
        # state so reusable runtimes keep it across runs.
        noise_bank = state.noise_bank
        statics = state.statics
        signal_tables = state.signal_tables
        ring = state.ring
        chunks_in_config = state.chunks_in_config
        sensor_array = state.sensor_array
        signal_array = state.signal_array
        table_rows = state.table_rows
        intensities = (
            np.full(num_devices, np.nan)
            if bank is not None and bank.has_intensity
            else None
        )
        device_rows = np.arange(num_devices)

        # Observability: every update below is guarded by ``metered``,
        # so the disabled (NULL_RECORDER) path takes no clock readings
        # and allocates nothing per tick.  Recording never touches
        # random streams or sample arrays — metered traces are
        # bit-identical to unmetered ones (pinned by the obs tests).
        mx = self._metrics
        metered = mx.enabled
        if metered:
            run_start_ns = mx.now_ns()
            mx.count("engine.runs")
            mx.gauge("engine.devices", float(num_devices))
            # Reused states carry their counters across runs (the
            # signal-table cache is deliberately never reset) and the
            # plan cache is process-global, so every per-run figure is
            # recorded as a delta from a start-of-run snapshot.
            noise_refills_0 = noise_bank.refills if noise_bank is not None else 0
            noise_bypasses_0 = (
                noise_bank.pool_bypasses if noise_bank is not None else 0
            )
            if signal_tables is not None:
                tables_revalidations_0 = signal_tables.revalidations
                tables_rebuilds_0 = signal_tables.rebuilds
                tables_fallbacks_0 = signal_tables.fallbacks
                tables_shared_0 = signal_tables.shared_hits
            plan_hits_0, plan_misses_0 = plan_cache_stats()

        for step_index in range(1, num_steps + 1):
            step_end = (start_step + step_index) * step_s
            if metered:
                tick_start_ns = mx.now_ns()
            switched = 0

            # Phase 1: group devices by active configuration.  The bank
            # path groups from the state arrays; group index vectors
            # stay ndarrays so later per-group scatters need no list
            # round-trips.  On the raw-stack path ``active_config``
            # only feeds full-trace records (phase 2 carries the group
            # config directly), so summary runs skip the stores.
            groups: Dict[SensorConfig, List[int]] = {}
            if bank is not None:
                config_ids = bank.current_config_ids(controllers)
                for config_id in np.unique(config_ids):
                    indices = np.flatnonzero(config_ids == config_id)
                    config = bank.config_for_id(config_id)
                    groups[config] = indices
                    if summary is None or not raw_stacks:
                        for i in indices:
                            runtimes[i].active_config = config
            else:
                for index, runtime in enumerate(runtimes):
                    config = controllers[index].current_config
                    runtime.active_config = config
                    groups.setdefault(config, []).append(index)

            # Phase 1b: acquire, one stacked pass per configuration.  On
            # the banked path the stack itself is the acquisition record:
            # buffers hold row views and feature extraction / intensity
            # switching slice it, so no per-device window objects exist.
            acquisitions: Optional[List] = None
            stacks: Dict[SensorConfig, Tuple[np.ndarray, np.ndarray]] = {}
            if raw_stacks:
                for config, indices in groups.items():
                    if noise_bank is not None:
                        stacks[config] = read_windows_stacked_raw(
                            sensor_array[indices],
                            end_time_s=step_end,
                            duration_s=step_s,
                            config=config,
                            noise_bank=noise_bank,
                            bank_rows=indices,
                            statics=statics,
                            tables=signal_tables,
                            signals=signal_array[indices],
                            table_rows=(
                                table_rows[indices]
                                if table_rows is not None
                                else None
                            ),
                        )
                    else:
                        stacks[config] = read_windows_stacked_raw(
                            [runtimes[i].sensor for i in indices],
                            end_time_s=step_end,
                            duration_s=step_s,
                            config=config,
                            rngs=[runtimes[i].rng for i in indices],
                        )
            else:
                acquisitions = [None] * num_devices
                for config, indices in groups.items():
                    if self._sensing == "stacked":
                        if noise_bank is not None:
                            group_rows = np.asarray(indices)
                            quantised, sample_times = read_windows_stacked_raw(
                                sensor_array[group_rows],
                                end_time_s=step_end,
                                duration_s=step_s,
                                config=config,
                                noise_bank=noise_bank,
                                bank_rows=group_rows,
                                statics=statics,
                                tables=signal_tables,
                                signals=signal_array[group_rows],
                                table_rows=(
                                    table_rows[group_rows]
                                    if table_rows is not None
                                    else None
                                ),
                            )
                            windows = [
                                SensorWindow(
                                    samples=quantised[row],
                                    times_s=sample_times,
                                    config=config,
                                )
                                for row in range(len(indices))
                            ]
                        else:
                            windows = read_windows_stacked(
                                [runtimes[i].sensor for i in indices],
                                end_time_s=step_end,
                                duration_s=step_s,
                                config=config,
                                rngs=[runtimes[i].rng for i in indices],
                            )
                    elif noise_bank is not None:
                        group_rows = np.asarray(indices)
                        stds = statics.noise_stds(config.averaging_window)
                        group_noise = noise_bank.normal(
                            group_rows,
                            config.samples_in(step_s),
                            stds[group_rows],
                        )
                        windows = [
                            runtimes[i].sensor.read_window(
                                end_time_s=step_end,
                                duration_s=step_s,
                                config=config,
                                noise=group_noise[row],
                            )
                            for row, i in enumerate(indices)
                        ]
                    else:
                        windows = [
                            runtimes[i].sensor.read_window(
                                end_time_s=step_end,
                                duration_s=step_s,
                                config=config,
                                rng=runtimes[i].rng,
                            )
                            for i in indices
                        ]
                    for i, window in zip(indices, windows):
                        acquisitions[i] = window

            # Phase 2: buffers, observe hooks, chunk bookkeeping.  With
            # the ring bank the whole phase is three array operations
            # per configuration group (scatter, reset, increment); only
            # loose devices with observe hooks still see Python.
            if ring is not None:
                for config, indices in groups.items():
                    samples, sample_times = stacks[config]
                    changed = ring.push_group(indices, samples, sample_times, config)
                    switched += changed.size
                    chunks_in_config[changed] = 0
                    chunks_in_config[indices] += 1
                    if bank.num_banked < num_devices:
                        for row in np.flatnonzero(~bank.is_banked[indices]):
                            index = indices[row]
                            if runtimes[index].observe is not None:
                                runtimes[index].observe(
                                    SensorWindow(
                                        samples=samples[row],
                                        times_s=sample_times,
                                        config=config,
                                    )
                                )
            else:
                for index, runtime in enumerate(runtimes):
                    runtime.buffer.push(acquisitions[index])
                    if runtime.observe is not None and (
                        bank is None or not bank.is_banked[index]
                    ):
                        runtime.observe(acquisitions[index])
                    if runtime.active_config != runtime.previous_config:
                        switched += 1
                        runtime.partials.clear()
                        runtime.chunks_in_config = 0
                        runtime.previous_config = runtime.active_config
                    runtime.chunks_in_config += 1

            # Banked intensity devices: one stacked derivative pass per
            # configuration replaces their per-object observe hooks.
            if intensities is not None:
                for config, indices in groups.items():
                    if raw_stacks:
                        rows = np.flatnonzero(bank.is_intensity[indices])
                        if rows.size:
                            intensities[indices[rows]] = stacked_intensities(
                                stacks[config][0][rows]
                            )
                    else:
                        observed = [i for i in indices if bank.is_intensity[i]]
                        if observed:
                            chunks = np.stack(
                                [acquisitions[i].samples for i in observed]
                            )
                            intensities[observed] = stacked_intensities(chunks)
                bank.observe_intensities(intensities)

            if metered:
                sense_end_ns = mx.now_ns()
                mx.span("tick.sense", tick_start_ns, sense_end_ns)
                mx.count("engine.ticks")
                mx.count("engine.config_groups", len(groups))
                for group_indices in groups.values():
                    mx.observe("engine.cohort_devices", len(group_indices))
                # The first tick of the whole run assigns every device
                # its initial configuration; only later ticks (counted
                # globally across segments) count as switches.
                if start_step + step_index > 1:
                    mx.count("engine.config_switches", switched)
                if ring is not None:
                    mx.gauge("ring.buffered_samples", float(ring.counts.sum()))

            # Phase 3: feature extraction (incremental where possible).
            features = np.empty(
                (num_devices, self._pipeline.extractor.num_features)
            )
            for config, indices in groups.items():
                if ring is not None:
                    self._extract_group_ring(
                        runtimes,
                        features,
                        config,
                        indices,
                        stacks[config][0],
                        partials_history,
                        ring,
                        chunks_in_config,
                    )
                else:
                    self._extract_group(
                        runtimes, features, config, indices, acquisitions
                    )

            if metered:
                extract_end_ns = mx.now_ns()
                mx.span("tick.extract", sense_end_ns, extract_end_ns)

            # Phase 4: one batched classification for the whole device set.
            if use_arrays:
                labels, confidences = self._pipeline.classify_batch_labels(features)
            else:
                results = self._pipeline.classify_batch(features)

            if metered:
                classify_end_ns = mx.now_ns()
                mx.span("tick.classify", extract_end_ns, classify_end_ns)
                mx.count("engine.windows_classified", num_devices)

            # Phase 5: controllers advance (one vectorized pass for the
            # banked devices), traces record or accumulators fold.
            if bank is not None:
                bank.update(labels, confidences)
            if use_arrays:
                for index in loose:
                    controllers[index].update(
                        Activity(int(labels[index])), float(confidences[index])
                    )
            else:
                for index in loose:
                    result = results[index]
                    controllers[index].update(result.activity, result.confidence)

            if metered:
                adapt_end_ns = mx.now_ns()
                mx.span("tick.adapt", classify_end_ns, adapt_end_ns)

            if summary is not None:
                columns = np.empty(num_devices, dtype=np.int64)
                for config, indices in groups.items():
                    columns[indices] = summary.column(config, runtimes)
                summary.fold_tick(
                    rows=device_rows,
                    columns=columns,
                    correct=truth_labels[:, step_index - 1] == labels,
                    duration_s=step_s,
                )
            else:
                for index, runtime in enumerate(runtimes):
                    if use_arrays:
                        predicted = Activity(int(labels[index]))
                        confidence = float(confidences[index])
                    else:
                        result = results[index]
                        predicted = result.activity
                        confidence = result.confidence
                    runtime.trace.append(
                        StepRecord(
                            time_s=step_end,
                            true_activity=truths[index][step_index - 1],
                            predicted_activity=predicted,
                            confidence=confidence,
                            config_name=runtime.active_config.name,
                            current_ua=runtime.power_model.current_ua(
                                runtime.active_config
                            ),
                            duration_s=step_s,
                        )
                    )

            if metered:
                mx.span("tick.fold", adapt_end_ns, mx.now_ns())

        if metered:
            if noise_bank is not None:
                mx.count("noise.refills", noise_bank.refills - noise_refills_0)
                mx.count(
                    "noise.pool_bypasses",
                    noise_bank.pool_bypasses - noise_bypasses_0,
                )
            if signal_tables is not None:
                mx.count(
                    "signal_cache.revalidations",
                    signal_tables.revalidations - tables_revalidations_0,
                )
                mx.count(
                    "signal_cache.rebuilds",
                    signal_tables.rebuilds - tables_rebuilds_0,
                )
                mx.count(
                    "signal_cache.fallbacks",
                    signal_tables.fallbacks - tables_fallbacks_0,
                )
                mx.count(
                    "campaign.shared_group_hits",
                    signal_tables.shared_hits - tables_shared_0,
                )
            plan_hits_1, plan_misses_1 = plan_cache_stats()
            mx.count("plan_cache.hits", plan_hits_1 - plan_hits_0)
            mx.count("plan_cache.misses", plan_misses_1 - plan_misses_0)
            mx.span("engine.run", run_start_ns, mx.now_ns())
            # Progress tap for the live-telemetry plane: the absolute
            # step cursor after this segment, readable between segments
            # by the heartbeat emitter without touching engine state.
            mx.gauge("engine.steps_done", float(start_step + num_steps))

        if bank is not None:
            bank.write_back(controllers)
        if summary is not None:
            return summary.summaries()
        return [runtime.trace for runtime in runtimes]

    # ------------------------------------------------------------------
    # Feature extraction internals
    # ------------------------------------------------------------------
    def _geometry(self, config: SensorConfig) -> Optional[WindowGeometry]:
        if config not in self._geometries:
            self._geometries[config] = WindowGeometry.for_window(
                config.sampling_hz, self._step_s, self._window_duration_s
            )
        return self._geometries[config]

    def _extract_group(
        self,
        runtimes: Sequence[DeviceRuntime],
        features: np.ndarray,
        config: SensorConfig,
        indices: List[int],
        acquisitions: Sequence,
    ) -> None:
        """Fill the feature rows of one configuration group.

        Per-device spelling: partials are cached on each runtime's
        deque.  The raw-stack path uses :meth:`_extract_group_ring`.
        """
        geometry = (
            self._geometry(config) if self._features == "incremental" else None
        )
        exact_indices = indices
        if geometry is not None:
            chunks = np.stack([acquisitions[i].samples for i in indices])
            partials = self._incremental.chunk_partials_stacked(chunks, geometry)
            cached = geometry.cached_chunks
            steady: List[int] = []
            exact_indices = []
            for i, chunk_partials in zip(indices, partials):
                runtime = runtimes[i]
                runtime.partials.append(chunk_partials)
                while len(runtime.partials) > cached:
                    runtime.partials.popleft()
                if (
                    runtime.chunks_in_config >= cached
                    and runtime.buffer.num_samples == geometry.window_samples
                ):
                    steady.append(i)
                else:
                    exact_indices.append(i)
            if steady:
                features[steady] = self._incremental.combine_stacked(
                    [runtimes[i].partials for i in steady], geometry
                )
                if self._metrics.enabled:
                    self._metrics.count(
                        "features.incremental_windows", len(steady)
                    )
        if len(exact_indices):
            self._extract_exact(runtimes, features, config, exact_indices)

    def _extract_group_ring(
        self,
        runtimes: Sequence[DeviceRuntime],
        features: np.ndarray,
        config: SensorConfig,
        indices: np.ndarray,
        chunk_stack: np.ndarray,
        history: Dict[SensorConfig, Deque],
        ring: RingBufferBank,
        chunks_in_config: np.ndarray,
    ) -> None:
        """Fill the feature rows of one configuration group (ring path).

        Instead of per-device partial deques, each tick's group
        reduction stays one :class:`StackedChunkPartials`, kept in a
        per-configuration history of the last ``cached_chunks`` ticks;
        a steady-state device's window gathers its row from each
        history slot.  The per-device steady/warm-up decision is one array
        comparison against the ring bank's sample counts and the
        engine's chunk counters — feature values are bit-identical to
        both other spellings.
        """
        geometry = (
            self._geometry(config) if self._features == "incremental" else None
        )
        exact_indices: "np.ndarray | List[int]" = indices
        steady = None
        if geometry is not None:
            stacked = self._incremental.chunk_partials_arrays(chunk_stack, geometry)
            rows = np.empty(len(runtimes), dtype=np.intp)
            rows[indices] = np.arange(len(indices))
            entries = history.get(config)
            if entries is None:
                entries = deque(maxlen=geometry.cached_chunks)
                history[config] = entries
            entries.append((stacked, rows))
            cached = geometry.cached_chunks
            if len(entries) == cached:
                steady_mask = (chunks_in_config[indices] >= cached) & (
                    ring.counts[indices] == geometry.window_samples
                )
                steady = indices[steady_mask]
                exact_indices = indices[~steady_mask]
            if steady is not None and steady.size:
                if self._metrics.enabled:
                    self._metrics.count(
                        "features.incremental_windows", int(steady.size)
                    )
                tailed = bool(geometry.tail_samples)
                slots = [
                    slot_partials.slot_arrays(
                        slot_rows[steady], tailed and slot == 0
                    )
                    for slot, (slot_partials, slot_rows) in enumerate(entries)
                ]
                features[steady] = self._incremental.combine_slot_arrays(
                    slots, geometry
                )
        if len(exact_indices):
            self._extract_exact(runtimes, features, config, exact_indices, ring)

    def _extract_exact(
        self,
        runtimes: Sequence[DeviceRuntime],
        features: np.ndarray,
        config: SensorConfig,
        exact_indices: "List[int] | np.ndarray",
        ring: Optional[RingBufferBank] = None,
    ) -> None:
        """Exact full-window extraction for warm-up windows and the
        ``features="exact"`` toggle; extract_batch stacks equal-shape
        windows and keeps the input order."""
        if self._metrics.enabled:
            self._metrics.count("features.exact_windows", len(exact_indices))
        if ring is not None:
            windows = [
                (ring.window(i)[0], config.sampling_hz) for i in exact_indices
            ]
        else:
            windows = [
                (runtimes[i].buffer.window().samples, config.sampling_hz)
                for i in exact_indices
            ]
        features[exact_indices] = self._incremental.extractor.extract_batch(
            windows, dtype=self._np_dtype
        )

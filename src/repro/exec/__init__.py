"""Shared execution core for single-device and fleet simulation.

:mod:`repro.exec.engine` owns the per-tick sense → classify → adapt
protocol (:class:`~repro.exec.engine.StepEngine` advancing
:class:`~repro.exec.engine.DeviceRuntime` states);
:mod:`repro.exec.sharding` scales it across worker processes
(:class:`~repro.exec.sharding.ShardedFleetSimulator`).  The simulators
in :mod:`repro.sim.runtime` and :mod:`repro.fleet.engine` are facades
over this package.

``ShardedFleetSimulator`` is exported lazily because the sharding
module sits *above* the fleet layer (it merges fleet telemetry), while
the engine sits below it — an eager import here would cycle.
"""

from repro.exec.controller_bank import ConfigTable, ControllerBank
from repro.exec.engine import (
    CONTROLLER_MODES,
    DTYPE_MODES,
    FEATURE_MODES,
    NOISE_MODES,
    SENSING_MODES,
    TRACE_MODES,
    DeviceRuntime,
    EngineState,
    StepEngine,
)
from repro.exec.resilience import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PayloadCorruptionError,
    RetryPolicy,
    ShardExecutionError,
    ShardSupervisor,
    SupervisorStats,
)

__all__ = [
    "CONTROLLER_MODES",
    "DTYPE_MODES",
    "FEATURE_MODES",
    "NOISE_MODES",
    "SENSING_MODES",
    "TRACE_MODES",
    "ConfigTable",
    "ControllerBank",
    "DeviceRuntime",
    "EngineState",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "PayloadCorruptionError",
    "RetryPolicy",
    "ShardExecutionError",
    "ShardSupervisor",
    "StepEngine",
    "SupervisorStats",
    "ShardedFleetRun",
    "ShardedFleetSimulator",
]


def __getattr__(name: str):
    if name in ("ShardedFleetSimulator", "ShardedFleetRun"):
        from repro.exec import sharding

        return getattr(sharding, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Process-sharded fleet simulation.

A :class:`repro.fleet.population.DevicePopulation` is embarrassingly
parallel: every device owns a private random stream derived from the
population's master seed, so a device's trace depends only on its own
profile — never on which other devices happen to share its batch.  The
execution core is additionally batch-size invariant, which makes
sharding a pure partitioning concern: split the population into
contiguous shards, simulate each shard with a full
:class:`repro.fleet.engine.FleetSimulator` in its own worker process,
and merge the per-shard traces and :class:`repro.fleet.telemetry.FleetTelemetry`
reports back in device-id order.  The merged result is bit-identical to
a single-process run — and to the per-device sequential reference —
for any shard count, which the shard-invariance tests pin down.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing
import time

from repro.core.features import WINDOW_DURATION_S, clear_plan_cache
from repro.core.pipeline import HarPipeline
from repro.fleet.engine import FleetResult, FleetSimulator, resolve_fleet_duration
from repro.fleet.population import DeviceProfile, DevicePopulation
from repro.fleet.telemetry import FleetTelemetry
from repro.obs.logsetup import shard_logger
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ
from repro.utils.validation import check_positive_int


def _run_shard(
    payload,
) -> Tuple[int, FleetResult, FleetTelemetry, Optional[MetricsSnapshot]]:
    """Simulate one shard (executed inside a worker process)."""
    (
        shard_index,
        pipeline,
        profiles,
        duration_s,
        settings,
        trace,
        collect_metrics,
        trace_events,
    ) = payload
    if multiprocessing.parent_process() is not None:
        # Forked workers inherit the parent's process-wide spectral plan
        # cache.  Drop it so a pre-warmed parent can neither leak stale
        # tables into the worker nor pollute the worker's plan-cache
        # metrics with hits it never earned.  The inline fallback (no
        # parent process) must NOT clear — it runs in the coordinator.
        clear_plan_cache()
    logger = shard_logger(shard_index)
    metrics = (
        MetricsRegistry(trace_events=trace_events, tid=shard_index)
        if collect_metrics
        else None
    )
    simulator = FleetSimulator(pipeline, metrics=metrics, **settings)
    logger.debug("simulating %d devices", len(profiles))
    result = simulator.run(profiles, duration_s=duration_s, trace=trace)
    logger.debug(
        "finished %d devices in %.3f s", len(profiles), result.elapsed_s
    )
    snapshot = metrics.snapshot() if metrics is not None else None
    return shard_index, result, FleetTelemetry.from_result(result), snapshot


@dataclass(frozen=True)
class ShardedFleetRun:
    """Outcome of one sharded fleet simulation.

    Attributes
    ----------
    result:
        The merged :class:`FleetResult` (``mode="sharded"``), traces in
        device-id order and bit-identical to a single-process run.
    telemetry:
        Fleet telemetry merged from the per-shard reports.
    shard_sizes:
        Devices per shard, in shard order.
    used_processes:
        Whether worker processes were actually used (single shards and
        pool-creation failures run inline).
    shard_elapsed_s:
        Per-shard simulation wall-clock, in shard order.  With worker
        processes the shards run concurrently, so the spread between
        entries is straggler skew, not serial cost.
    shard_metrics:
        One :class:`repro.obs.metrics.MetricsSnapshot` per shard when
        the run was metered, ``()`` otherwise.
    metrics:
        The coordinator's merged snapshot (worker snapshots folded with
        the coordinator's own shard heartbeat metrics), ``None`` when
        the run was unmetered.
    """

    result: FleetResult
    telemetry: FleetTelemetry
    shard_sizes: Tuple[int, ...]
    used_processes: bool
    shard_elapsed_s: Tuple[float, ...] = ()
    shard_metrics: Tuple[MetricsSnapshot, ...] = ()
    metrics: Optional[MetricsSnapshot] = None

    @property
    def num_shards(self) -> int:
        """Number of shards the population was split into."""
        return len(self.shard_sizes)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock time of the whole sharded run."""
        return self.result.elapsed_s

    def straggler_stats(self) -> Dict[str, float]:
        """Wall-clock skew across shards (empty without per-shard times).

        ``skew`` is max/mean shard elapsed — 1.0 means perfectly
        balanced shards; the merge barrier waits on the ``straggler``
        shard for ``spread_s`` seconds longer than the fastest one.
        """
        if not self.shard_elapsed_s:
            return {}
        elapsed = self.shard_elapsed_s
        mean = sum(elapsed) / len(elapsed)
        slowest = max(elapsed)
        return {
            "min_s": min(elapsed),
            "max_s": slowest,
            "mean_s": mean,
            "spread_s": slowest - min(elapsed),
            "skew": slowest / mean if mean > 0.0 else float("nan"),
            "straggler": float(elapsed.index(slowest)),
        }


class ShardedFleetSimulator:
    """Splits a device population across worker processes.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline; shipped to every worker.
    num_shards:
        Default shard count for :meth:`run`; ``None`` uses the machine's
        CPU count.
    internal_rate_hz, step_s, window_duration_s, features, sensing, controllers, noise, dtype:
        Forwarded to the per-shard :class:`FleetSimulator` (and through
        it to the shared :class:`repro.exec.engine.StepEngine`).  The
        ``noise="batched"`` acquisition layer derives every device's
        stream from the device's own seed, so sharded results stay
        invariant to the shard count in either mode.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` for the
        coordinator.  When given (and enabled), every worker builds its
        own registry with ``tid`` set to its shard index (inheriting
        the coordinator's ``trace_events`` setting), the coordinator
        records shard heartbeats (``shard.elapsed_s`` /
        ``shard.devices`` histograms, ``shard.count`` gauge) and
        :attr:`ShardedFleetRun.metrics` carries the merged snapshot.
        Merging is associative and shard-count invariant for every
        device-attributable metric.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        num_shards: Optional[int] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
        controllers: str = "bank",
        noise: str = "per_device",
        dtype: str = "float64",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_shards is not None:
            check_positive_int(num_shards, "num_shards")
        self._pipeline = pipeline
        self._num_shards = num_shards
        self._metrics = metrics
        self._settings: Dict[str, object] = {
            "internal_rate_hz": internal_rate_hz,
            "step_s": step_s,
            "window_duration_s": window_duration_s,
            "features": features,
            "sensing": sensing,
            "controllers": controllers,
            "noise": noise,
            "dtype": dtype,
        }
        # Validate the engine settings eagerly (in the parent process)
        # instead of deep inside the first worker.
        FleetSimulator(pipeline, **self._settings)

    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._pipeline

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        num_shards: Optional[int] = None,
    ) -> List[Tuple[DeviceProfile, ...]]:
        """Split a population into contiguous, near-equal shards.

        Contiguous splitting preserves device-id order, so merging shard
        outputs is a plain concatenation.  The shard count is capped at
        the population size.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        requested = num_shards if num_shards is not None else self._num_shards
        if requested is None:
            requested = os.cpu_count() or 1
        check_positive_int(requested, "num_shards")
        count = min(requested, len(profiles))
        base, extra = divmod(len(profiles), count)
        shards: List[Tuple[DeviceProfile, ...]] = []
        cursor = 0
        for shard_index in range(count):
            size = base + (1 if shard_index < extra else 0)
            shards.append(profiles[cursor : cursor + size])
            cursor += size
        return shards

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
        num_shards: Optional[int] = None,
        trace: str = "full",
    ) -> ShardedFleetRun:
        """Simulate the population across worker processes and merge.

        Parameters
        ----------
        population:
            The devices to simulate.
        duration_s:
            Simulated seconds per device (defaults to the shortest
            schedule, as in :meth:`FleetSimulator.run`).
        num_shards:
            Overrides the simulator's default shard count for this run.
        trace:
            ``"full"`` (default) or ``"summary"`` (streaming
            accumulators only; also shrinks the per-shard payload the
            workers ship back to O(devices)).

        Returns
        -------
        ShardedFleetRun
            Merged traces and telemetry, invariant to the shard count.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        duration = resolve_fleet_duration(profiles, duration_s)
        shards = self.plan(profiles, num_shards)

        collect_metrics = self._metrics is not None and self._metrics.enabled
        trace_events = bool(self._metrics.trace_events) if collect_metrics else False
        start = time.perf_counter()
        payloads = [
            (
                index,
                self._pipeline,
                shard,
                duration,
                self._settings,
                trace,
                collect_metrics,
                trace_events,
            )
            for index, shard in enumerate(shards)
        ]
        outcomes, used_processes = self._execute(payloads)
        outcomes.sort(key=lambda outcome: outcome[0])
        traces = tuple(
            trace for _, result, _, _ in outcomes for trace in result.traces
        )
        telemetry = FleetTelemetry.merge(
            [shard_telemetry for _, _, shard_telemetry, _ in outcomes]
        )
        elapsed = time.perf_counter() - start
        merged = FleetResult(
            profiles=profiles,
            traces=traces,
            elapsed_s=elapsed,
            mode="sharded",
            trace_mode=trace,
        )
        shard_elapsed = tuple(result.elapsed_s for _, result, _, _ in outcomes)
        shard_metrics: Tuple[MetricsSnapshot, ...] = ()
        merged_metrics: Optional[MetricsSnapshot] = None
        if collect_metrics:
            shard_metrics = tuple(
                snapshot for _, _, _, snapshot in outcomes if snapshot is not None
            )
            # Coordinator-level heartbeats: one observation per shard so
            # the merged snapshot carries balance/straggler information
            # alongside the device-attributable engine metrics.
            self._metrics.gauge("shard.count", float(len(shards)))
            for (_, result, _, _), shard in zip(outcomes, shards):
                self._metrics.observe("shard.elapsed_s", result.elapsed_s)
                self._metrics.observe("shard.devices", float(len(shard)))
            merged_metrics = MetricsSnapshot.merge_all(
                (self._metrics.snapshot(),) + shard_metrics
            )
        return ShardedFleetRun(
            result=merged,
            telemetry=telemetry,
            shard_sizes=tuple(len(shard) for shard in shards),
            used_processes=used_processes,
            shard_elapsed_s=shard_elapsed,
            shard_metrics=shard_metrics,
            metrics=merged_metrics,
        )

    def _execute(self, payloads) -> Tuple[List, bool]:
        """Run shard payloads, in worker processes when it makes sense."""
        if len(payloads) == 1:
            return [_run_shard(payloads[0])], False
        try:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            max_workers = min(len(payloads), os.cpu_count() or 1)
            with ProcessPoolExecutor(
                max_workers=max_workers, mp_context=context
            ) as executor:
                return list(executor.map(_run_shard, payloads)), True
        except OSError:
            # Restricted environments (no process spawning) still get
            # correct results — shards are independent either way.
            return [_run_shard(payload) for payload in payloads], False

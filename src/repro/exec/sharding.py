"""Process-sharded fleet simulation with fault-tolerant supervision.

A :class:`repro.fleet.population.DevicePopulation` is embarrassingly
parallel: every device owns a private random stream derived from the
population's master seed, so a device's trace depends only on its own
profile — never on which other devices happen to share its batch.  The
execution core is additionally batch-size invariant, which makes
sharding a pure partitioning concern: split the population into
contiguous shards, simulate each shard with the shared
:class:`repro.exec.engine.StepEngine` in its own worker process, and
merge the per-shard traces and
:class:`repro.fleet.telemetry.FleetTelemetry` reports back in
device-id order.  The merged result is bit-identical to a
single-process run — and to the per-device sequential reference — for
any shard count, which the shard-invariance tests pin down.

Execution is supervised (see :mod:`repro.exec.resilience`): every
shard attempt runs in its own worker process, dead or hung workers are
retried with exponential backoff (falling back to an in-process
attempt as a last resort), and shards optionally simulate in fixed
**rounds** of simulated seconds, checkpointing their engine state via
:mod:`repro.ml.persistence` after every round.  A retried — or
resumed — shard reloads the last complete round and continues
mid-stream; because the engine's segmented runs are bit-identical to
unsegmented ones, recovery never changes a single trace bit.  The
deterministic failure modes themselves are injectable
(:class:`repro.exec.resilience.FaultInjector`), so every recovery path
stays testable in CI.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.core.features import WINDOW_DURATION_S, clear_plan_cache
from repro.core.pipeline import HarPipeline
from repro.exec.engine import StepEngine
from repro.exec.resilience import (
    FaultInjector,
    FaultPlan,
    PayloadCorruptionError,
    RetryPolicy,
    ShardSupervisor,
)
from repro.fleet.engine import FleetResult, FleetSimulator, resolve_fleet_duration
from repro.fleet.population import DeviceProfile, DevicePopulation
from repro.fleet.telemetry import FleetTelemetry
from repro.ml.persistence import load_checkpoint, save_checkpoint
from repro.obs.live import RunMonitor, build_heartbeat, current_rss_bytes
from repro.obs.logsetup import shard_logger
from repro.obs.metrics import NULL_RECORDER, MetricsRegistry, MetricsSnapshot
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ
from repro.utils.validation import check_positive, check_positive_int

#: Schema version of the checkpoint-directory manifest.
MANIFEST_VERSION = 1

#: Checkpoint files kept per shard (the latest plus one fallback, so a
#: crash mid-write of the newest round never strands the campaign).
KEPT_CHECKPOINTS = 2


@dataclass(frozen=True)
class _ShardTask:
    """Everything one shard worker needs for one (re-)attempt."""

    shard_index: int
    pipeline: HarPipeline
    profiles: Tuple[DeviceProfile, ...]
    duration_s: float
    settings: Dict[str, object]
    trace: str
    collect_metrics: bool
    trace_events: bool
    round_steps: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    injector: Optional[FaultInjector] = None
    heartbeat_steps: Optional[int] = None


def _shard_checkpoint_dir(root: str, shard_index: int) -> Path:
    return Path(root) / f"shard_{shard_index:04d}"


def _checkpoint_path(directory: Path, rounds_done: int) -> Path:
    return directory / f"round_{rounds_done:06d}.ckpt"


def _load_latest_checkpoint(directory: Path, logger) -> Optional[dict]:
    """Newest loadable checkpoint bundle in ``directory`` (or ``None``).

    Corrupt or truncated files fall back to the next-newest; a shard
    with no loadable checkpoint starts from scratch, which is exactly
    the resume semantics for a shard killed before its first round
    completed.
    """
    candidates = sorted(directory.glob("round_*.ckpt"), reverse=True)
    for path in candidates:
        try:
            return load_checkpoint(path)
        except Exception as exc:  # noqa: BLE001 - any bad file falls back
            logger.warning("skipping unreadable checkpoint %s: %s", path, exc)
    return None


def _run_shard_attempt(
    task: _ShardTask, attempt: int, emit=None
) -> Tuple[int, FleetResult, FleetTelemetry, Optional[MetricsSnapshot]]:
    """Simulate one shard attempt (worker process or inline).

    The shard advances in rounds of ``task.round_steps`` engine ticks.
    With a checkpoint directory the engine state is serialised after
    every completed round, and a retry (``attempt > 0``) or an explicit
    resume reloads the newest complete round and continues mid-stream —
    bit-identical to an uninterrupted run because the engine's
    segmented runs are (pinned by the resilience tests).

    ``emit`` (injected by the supervisor when a run monitor is
    attached) ships in-flight events back over the result pipe: attempt
    and round starts, checkpoints, and — when ``task.heartbeat_steps``
    is set — periodic heartbeats, for which rounds are sub-segmented at
    the heartbeat cadence.  Sub-segmentation reuses the engine's
    segmented-run path, so a monitored run's traces stay bit-identical;
    fault injection and checkpointing still happen only at round
    boundaries, so recovery semantics are unchanged too.
    """
    in_worker = multiprocessing.parent_process() is not None
    if in_worker:
        # Forked workers inherit the parent's process-wide spectral plan
        # cache.  Drop it so a pre-warmed parent can neither leak stale
        # tables into the worker nor pollute the worker's plan-cache
        # metrics with hits it never earned.  Inline attempts (no
        # parent process) must NOT clear — they run in the coordinator.
        clear_plan_cache()
    logger = shard_logger(task.shard_index)
    metrics = (
        MetricsRegistry(trace_events=task.trace_events, tid=task.shard_index)
        if task.collect_metrics
        else None
    )
    recorder = metrics if metrics is not None else NULL_RECORDER
    beat_steps = task.heartbeat_steps if emit is not None else None
    # Heartbeats carry per-phase span deltas.  An unmetered monitored
    # run taps them through a private registry that feeds the engine's
    # spans but is never returned in the outcome, so the reported
    # metrics (none) match an unmonitored run exactly.
    tap = (
        MetricsRegistry()
        if beat_steps is not None and metrics is None
        else None
    )
    engine_metrics = metrics if metrics is not None else tap

    ckpt_dir: Optional[Path] = None
    if task.checkpoint_dir is not None:
        ckpt_dir = _shard_checkpoint_dir(task.checkpoint_dir, task.shard_index)

    bundle: Optional[dict] = None
    if ckpt_dir is not None and (attempt > 0 or task.resume):
        bundle = _load_latest_checkpoint(ckpt_dir, logger)

    start = time.perf_counter()
    if bundle is None:
        engine = StepEngine(
            pipeline=task.pipeline, metrics=engine_metrics, **task.settings
        )
        runtimes = engine.runtimes_from_profiles(task.profiles)
        state = engine.make_state(runtimes)
        steps_done = 0
    else:
        # The single-dump checkpoint preserves the aliasing between the
        # engine state, its runtimes and the engine itself, so resuming
        # means picking up the unpickled engine — only its metrics
        # recorder is rebound to this attempt's fresh registry (or the
        # heartbeat tap when the run is monitored but unmetered).
        runtimes = bundle["runtimes"]
        state = bundle["engine_state"]
        steps_done = bundle["steps_done"]
        engine = state.engine
        engine._metrics = (
            engine_metrics if engine_metrics is not None else NULL_RECORDER
        )
        if metrics is not None:
            metrics.count("checkpoint.loads")
        logger.info(
            "resumed %d devices from step %d", len(runtimes), steps_done
        )

    num_steps = int(round(task.duration_s / engine.step_s))
    round_steps = task.round_steps if task.round_steps else num_steps
    round_steps = max(1, round_steps)
    if steps_done > num_steps:
        raise ValueError(
            f"checkpoint is ahead of the requested run: {steps_done} steps "
            f"done, {num_steps} requested"
        )
    injector = task.injector
    if beat_steps is not None:
        beat_steps = max(1, min(int(beat_steps), round_steps))

    logger.debug(
        "simulating %d devices (%d/%d steps done, attempt %d)",
        len(task.profiles), steps_done, num_steps, attempt,
    )
    if emit is not None:
        emit(
            {
                "event": "attempt_start",
                "shard": task.shard_index,
                "attempt": attempt,
                "steps_done": steps_done,
                "num_steps": num_steps,
                "devices": len(task.profiles),
                "round_steps": round_steps,
            }
        )
    phase_prev: Dict[str, float] = (
        engine_metrics.phase_totals()
        if beat_steps is not None and engine_metrics is not None
        else {}
    )
    beat_wall = start
    beat_cursor = steps_done
    traces = None
    while steps_done < num_steps:
        # Checkpoints only land on round boundaries (or at the end of
        # the run), so a loop entry — fresh or resumed — always sits on
        # one; the first segment of a round emits its round_start and
        # consults the fault injector exactly once, heartbeats or not.
        if steps_done % round_steps == 0:
            round_index = steps_done // round_steps
            if emit is not None:
                emit(
                    {
                        "event": "round_start",
                        "shard": task.shard_index,
                        "attempt": attempt,
                        "round": round_index,
                        "steps_done": steps_done,
                    }
                )
            if injector is not None:
                injector.on_round(task.shard_index, round_index, attempt)
        round_end = min(
            ((steps_done // round_steps) + 1) * round_steps, num_steps
        )
        segment = round_end - steps_done
        if beat_steps is not None:
            segment = min(segment, beat_steps)
        traces = engine.run(
            runtimes,
            segment,
            trace=task.trace,
            state=state,
            start_step=steps_done,
        )
        steps_done += segment
        if beat_steps is not None:
            beat_now = time.perf_counter()
            totals = engine_metrics.phase_totals()
            emit(
                build_heartbeat(
                    shard=task.shard_index,
                    attempt=attempt,
                    round_index=(steps_done - 1) // round_steps,
                    steps_done=steps_done,
                    num_steps=num_steps,
                    devices=len(task.profiles),
                    elapsed_s=beat_now - start,
                    interval_s=beat_now - beat_wall,
                    steps_delta=steps_done - beat_cursor,
                    phase_s={
                        name: totals[name] - phase_prev.get(name, 0.0)
                        for name in totals
                    },
                    rss_bytes=current_rss_bytes(),
                )
            )
            recorder.count("heartbeat.emitted")
            phase_prev = totals
            beat_wall = beat_now
            beat_cursor = steps_done
        if steps_done % round_steps != 0 and steps_done < num_steps:
            # Mid-round heartbeat segment: no round accounting yet.
            continue
        recorder.count("shard.rounds")
        if ckpt_dir is not None:
            rounds_done = (steps_done + round_steps - 1) // round_steps
            saved_metrics = engine._metrics
            engine._metrics = NULL_RECORDER
            try:
                written = save_checkpoint(
                    _checkpoint_path(ckpt_dir, rounds_done),
                    {
                        "shard_index": task.shard_index,
                        "steps_done": steps_done,
                        "runtimes": runtimes,
                        "engine_state": state,
                    },
                )
            finally:
                engine._metrics = saved_metrics
            recorder.count("checkpoint.saves")
            recorder.count("checkpoint.bytes", written)
            if emit is not None:
                emit(
                    {
                        "event": "checkpoint",
                        "shard": task.shard_index,
                        "attempt": attempt,
                        "rounds_done": rounds_done,
                        "steps_done": steps_done,
                        "bytes": written,
                    }
                )
            stale = sorted(ckpt_dir.glob("round_*.ckpt"))[:-KEPT_CHECKPOINTS]
            for path in stale:
                path.unlink(missing_ok=True)
    if traces is None:
        # Nothing left to simulate (fully-resumed shard or zero-length
        # run): a zero-step engine call still yields the trace/summary
        # objects from the state, so this path merges like any other.
        traces = engine.run(
            runtimes, 0, trace=task.trace, state=state, start_step=steps_done
        )
    elapsed = time.perf_counter() - start

    result = FleetResult(
        profiles=task.profiles,
        traces=tuple(traces),
        elapsed_s=elapsed,
        mode="batched",
        trace_mode=task.trace,
    )
    if injector is not None and injector.corrupts(task.shard_index, attempt):
        # Deterministic payload corruption: drop the last device so the
        # coordinator's validation hook has something real to catch.
        result = FleetResult(
            profiles=result.profiles[:-1],
            traces=result.traces[:-1],
            elapsed_s=result.elapsed_s,
            mode=result.mode,
            trace_mode=result.trace_mode,
        )
    logger.debug(
        "finished %d devices in %.3f s", len(result.profiles), elapsed
    )
    snapshot = metrics.snapshot() if metrics is not None else None
    return (
        task.shard_index,
        result,
        FleetTelemetry.from_result(result),
        snapshot,
    )


def _run_shard(payload):
    """Single-attempt worker entry kept for API compatibility."""
    return _run_shard_attempt(payload, 0)


@dataclass(frozen=True)
class ShardedFleetRun:
    """Outcome of one sharded fleet simulation.

    Attributes
    ----------
    result:
        The merged :class:`FleetResult` (``mode="sharded"``), traces in
        device-id order and bit-identical to a single-process run.
    telemetry:
        Fleet telemetry merged from the per-shard reports.
    shard_sizes:
        Devices per shard, in shard order.
    used_processes:
        Whether worker processes were actually used (single shards and
        platforms without process spawning run inline).
    shard_elapsed_s:
        Per-shard simulation wall-clock, in shard order.  With worker
        processes the shards run concurrently, so the spread between
        entries is straggler skew, not serial cost.
    shard_metrics:
        One :class:`repro.obs.metrics.MetricsSnapshot` per shard when
        the run was metered, ``()`` otherwise.
    metrics:
        The coordinator's merged snapshot (worker snapshots folded with
        the coordinator's own shard heartbeat metrics), ``None`` when
        the run was unmetered.
    shard_attempts:
        Attempts each shard consumed, in shard order (all ``1`` on a
        fault-free run).
    retries:
        Shard re-attempts across the whole run.
    failures:
        Failed shard attempts across the whole run (worker deaths,
        raised exceptions, timeouts and corrupt payloads).
    timeouts:
        Attempts terminated for exceeding the per-shard timeout.
    stragglers:
        Shards still flagged by the run monitor's online straggler
        detector when the run finished (``()`` when unmonitored or
        when every shard kept pace) — the hook a future elastic
        rebalancer consumes.
    """

    result: FleetResult
    telemetry: FleetTelemetry
    shard_sizes: Tuple[int, ...]
    used_processes: bool
    shard_elapsed_s: Tuple[float, ...] = ()
    shard_metrics: Tuple[MetricsSnapshot, ...] = ()
    metrics: Optional[MetricsSnapshot] = None
    shard_attempts: Tuple[int, ...] = ()
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    stragglers: Tuple[int, ...] = ()

    @property
    def num_shards(self) -> int:
        """Number of shards the population was split into."""
        return len(self.shard_sizes)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock time of the whole sharded run."""
        return self.result.elapsed_s

    def straggler_stats(self) -> Dict[str, float]:
        """Wall-clock skew across shards (empty without per-shard times).

        ``skew`` is max/mean shard elapsed — 1.0 means perfectly
        balanced shards; the merge barrier waits on the ``straggler``
        shard for ``spread_s`` seconds longer than the fastest one.
        Degenerate all-zero timings (clock resolution on trivial
        shards) report the balanced value 1.0 rather than NaN.
        """
        if not self.shard_elapsed_s:
            return {}
        elapsed = self.shard_elapsed_s
        mean = sum(elapsed) / len(elapsed)
        slowest = max(elapsed)
        return {
            "min_s": min(elapsed),
            "max_s": slowest,
            "mean_s": mean,
            "spread_s": slowest - min(elapsed),
            "skew": slowest / mean if mean > 0.0 else 1.0,
            "straggler": float(elapsed.index(slowest)),
        }


class ShardedFleetSimulator:
    """Splits a device population across supervised worker processes.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline; shipped to every worker.
    num_shards:
        Default shard count for :meth:`run`; ``None`` uses the machine's
        CPU count.
    internal_rate_hz, step_s, window_duration_s, features, sensing, controllers, noise, dtype:
        Forwarded to the per-shard :class:`repro.exec.engine.StepEngine`.
        The ``noise="batched"`` acquisition layer derives every device's
        stream from the device's own seed, so sharded results stay
        invariant to the shard count in either mode.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` for the
        coordinator.  When given (and enabled), every worker builds its
        own registry with ``tid`` set to its shard index (inheriting
        the coordinator's ``trace_events`` setting), the coordinator
        records shard heartbeats (``shard.elapsed_s`` /
        ``shard.devices`` histograms, ``shard.count`` gauge) plus the
        failure counters (``shard.retries`` / ``shard.failures`` /
        ``shard.timeouts`` / ``shard.corrupt_payloads``), and
        :attr:`ShardedFleetRun.metrics` carries the merged snapshot.
        Merging is associative and shard-count invariant for every
        device-attributable metric on fault-free runs; runs that
        recovered from faults may repeat or resume engine work, so
        engine-side *effort* counters can legitimately differ from a
        fault-free run even though traces and telemetry never do.
    max_retries:
        Worker re-attempts per shard after its first try (default 2).
    shard_timeout_s:
        Wall-clock budget per shard attempt; ``None`` (default) never
        times out.  Timeouts require worker processes, so a
        single-shard run with a timeout leaves the historical inline
        path.
    backoff_base_s, backoff_factor, backoff_max_s:
        Exponential backoff between attempts (see
        :class:`repro.exec.resilience.RetryPolicy`).
    inline_last_resort:
        Run one final in-coordinator attempt after every process
        attempt failed (default ``True``).
    checkpoint_dir:
        Directory for round checkpoints and the campaign manifest.
        Enables round-based execution: shards checkpoint after every
        round, retries resume from the last complete round, and a
        killed campaign can be resumed with ``resume=True``.
    round_s:
        Simulated seconds per round (default 60 when checkpointing is
        enabled, otherwise the whole run is one round).
    resume:
        Resume a previous campaign from ``checkpoint_dir``.  The
        directory's manifest must match this run's geometry exactly;
        shards restart from their newest complete round (or from
        scratch if they never finished one).  Bit-identical to an
        uninterrupted run.
    fault_plan:
        A :class:`repro.exec.resilience.FaultPlan`, a spec string for
        :meth:`FaultPlan.parse`, or ``None`` (default) to read the
        ``REPRO_FAULT_PLAN`` environment variable.  Injected faults are
        deterministic, so chaos runs replay identically.
    monitor:
        Optional :class:`repro.obs.live.RunMonitor`.  When given, shard
        workers emit in-flight heartbeats (progress, device-steps/s,
        per-phase span deltas, RSS) at the monitor's cadence and the
        coordinator folds them into live progress/ETA, straggler flags
        (:attr:`ShardedFleetRun.stragglers`) and the monitor's
        ``--watch`` / NDJSON outputs.  Monitored runs stay bit-identical
        to unmonitored ones: heartbeat pacing only re-segments the
        engine loop, and monitoring reads clocks and counters only.
    heartbeat_s:
        Override the monitor's heartbeat interval (simulated seconds)
        for runs through this simulator.
    flight_dir:
        Directory for flight-recorder crash dumps.  Defaults to
        ``checkpoint_dir`` when one is set; checkpointed runs therefore
        get crash dumps even without an explicit monitor, via an
        internal flight-only monitor (no heartbeats, no watch line).
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        num_shards: Optional[int] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
        controllers: str = "bank",
        noise: str = "per_device",
        dtype: str = "float64",
        metrics: Optional[MetricsRegistry] = None,
        max_retries: int = 2,
        shard_timeout_s: Optional[float] = None,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        inline_last_resort: bool = True,
        checkpoint_dir: "Optional[str | os.PathLike]" = None,
        round_s: Optional[float] = None,
        resume: bool = False,
        fault_plan: "FaultPlan | str | None" = None,
        monitor: Optional[RunMonitor] = None,
        heartbeat_s: Optional[float] = None,
        flight_dir: "Optional[str | os.PathLike]" = None,
    ) -> None:
        if num_shards is not None:
            check_positive_int(num_shards, "num_shards")
        self._pipeline = pipeline
        self._num_shards = num_shards
        self._metrics = metrics
        self._settings: Dict[str, object] = {
            "internal_rate_hz": internal_rate_hz,
            "step_s": step_s,
            "window_duration_s": window_duration_s,
            "features": features,
            "sensing": sensing,
            "controllers": controllers,
            "noise": noise,
            "dtype": dtype,
        }
        # Validate the engine settings eagerly (in the parent process)
        # instead of deep inside the first worker.
        FleetSimulator(pipeline, **self._settings)
        self._policy = RetryPolicy(
            max_retries=max_retries,
            backoff_base_s=backoff_base_s,
            backoff_factor=backoff_factor,
            backoff_max_s=backoff_max_s,
            shard_timeout_s=shard_timeout_s,
            inline_last_resort=inline_last_resort,
        )
        self._checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if resume and self._checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        self._resume = bool(resume)
        if round_s is not None:
            check_positive(round_s, "round_s")
        elif self._checkpoint_dir is not None:
            round_s = 60.0
        self._round_s = round_s
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        elif isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self._fault_plan: Optional[FaultPlan] = fault_plan
        self._injector = (
            FaultInjector(fault_plan)
            if fault_plan is not None and not fault_plan.is_empty
            else None
        )
        self._monitor = monitor
        if heartbeat_s is not None:
            check_positive(heartbeat_s, "heartbeat_s")
        self._heartbeat_s = heartbeat_s
        self._flight_dir = (
            os.fspath(flight_dir) if flight_dir is not None else None
        )

    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._pipeline

    @property
    def retry_policy(self) -> RetryPolicy:
        """The supervision policy shard attempts run under."""
        return self._policy

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        """The active fault-injection plan (``None`` when faultless)."""
        return self._fault_plan

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        num_shards: Optional[int] = None,
    ) -> List[Tuple[DeviceProfile, ...]]:
        """Split a population into contiguous, near-equal shards.

        Contiguous splitting preserves device-id order, so merging shard
        outputs is a plain concatenation.  The shard count is capped at
        the population size.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        requested = num_shards if num_shards is not None else self._num_shards
        if requested is None:
            requested = os.cpu_count() or 1
        check_positive_int(requested, "num_shards")
        count = min(requested, len(profiles))
        base, extra = divmod(len(profiles), count)
        shards: List[Tuple[DeviceProfile, ...]] = []
        cursor = 0
        for shard_index in range(count):
            size = base + (1 if shard_index < extra else 0)
            shards.append(profiles[cursor : cursor + size])
            cursor += size
        return shards

    # ------------------------------------------------------------------
    # Checkpoint campaign manifest
    # ------------------------------------------------------------------
    def _round_steps(self, num_steps: int) -> Optional[int]:
        if self._round_s is None:
            return None
        step_s = float(self._settings["step_s"])
        return max(1, int(round(self._round_s / step_s)))

    def _manifest(
        self, num_devices: int, duration: float, num_shards: int, trace: str
    ) -> Dict[str, object]:
        return {
            "version": MANIFEST_VERSION,
            "num_devices": num_devices,
            "duration_s": duration,
            "num_shards": num_shards,
            "trace": trace,
            "round_s": self._round_s,
            "settings": {
                key: value for key, value in self._settings.items()
            },
        }

    def _prepare_campaign(
        self, num_devices: int, duration: float, num_shards: int, trace: str
    ) -> None:
        """Create or validate the checkpoint directory's manifest."""
        assert self._checkpoint_dir is not None
        root = Path(self._checkpoint_dir)
        manifest_path = root / "manifest.json"
        manifest = self._manifest(num_devices, duration, num_shards, trace)
        if self._resume:
            if not manifest_path.is_file():
                raise ValueError(
                    f"cannot resume: no campaign manifest at {manifest_path}"
                )
            stored = json.loads(manifest_path.read_text())
            if stored != manifest:
                raise ValueError(
                    "cannot resume: checkpoint directory holds a different "
                    f"campaign ({manifest_path}); population, duration, "
                    "shard count, trace mode, round length and engine "
                    "settings must all match"
                )
            return
        if manifest_path.is_file():
            raise ValueError(
                f"checkpoint directory {root} already holds a campaign; "
                "pass resume=True to continue it or point at a fresh "
                "directory"
            )
        root.mkdir(parents=True, exist_ok=True)
        manifest_path.write_text(json.dumps(manifest, sort_keys=True))

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
        num_shards: Optional[int] = None,
        trace: str = "full",
    ) -> ShardedFleetRun:
        """Simulate the population across supervised workers and merge.

        Parameters
        ----------
        population:
            The devices to simulate.
        duration_s:
            Simulated seconds per device (defaults to the shortest
            schedule, as in :meth:`FleetSimulator.run`).
        num_shards:
            Overrides the simulator's default shard count for this run.
        trace:
            ``"full"`` (default) or ``"summary"`` (streaming
            accumulators only; also shrinks the per-shard payload the
            workers ship back to O(devices)).

        Returns
        -------
        ShardedFleetRun
            Merged traces and telemetry, invariant to the shard count,
            the fault pattern, the retry schedule and fresh-vs-resumed
            execution.

        Raises
        ------
        repro.exec.resilience.ShardExecutionError
            When a shard fails every attempt the retry policy allows.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        duration = resolve_fleet_duration(profiles, duration_s)
        shards = self.plan(profiles, num_shards)

        step_s = float(self._settings["step_s"])
        num_steps = int(round(duration / step_s))
        round_steps = self._round_steps(num_steps)
        if self._checkpoint_dir is not None:
            self._prepare_campaign(len(profiles), duration, len(shards), trace)

        collect_metrics = self._metrics is not None and self._metrics.enabled
        trace_events = bool(self._metrics.trace_events) if collect_metrics else False
        # Resolve the live-telemetry plane.  An explicit monitor gets
        # heartbeats at its (or the simulator's) cadence; checkpointed
        # runs without one still get a silent flight-only monitor, so
        # chaos failures always leave crash dumps next to the
        # checkpoints.
        monitor = self._monitor
        flight_root = self._flight_dir or self._checkpoint_dir
        if monitor is None and flight_root is not None:
            monitor = RunMonitor(heartbeat_s=None, flight_dir=flight_root)
        elif monitor is not None and flight_root is not None:
            monitor.ensure_flight_dir(flight_root)
        heartbeat_steps: Optional[int] = None
        if monitor is not None:
            beat_s = (
                self._heartbeat_s
                if self._heartbeat_s is not None
                else monitor.heartbeat_s
            )
            if beat_s is not None:
                heartbeat_steps = max(1, int(round(float(beat_s) / step_s)))
        start = time.perf_counter()
        tasks = [
            _ShardTask(
                shard_index=index,
                pipeline=self._pipeline,
                profiles=shard,
                duration_s=duration,
                settings=self._settings,
                trace=trace,
                collect_metrics=collect_metrics,
                trace_events=trace_events,
                round_steps=round_steps,
                checkpoint_dir=self._checkpoint_dir,
                resume=self._resume,
                injector=self._injector,
                heartbeat_steps=heartbeat_steps,
            )
            for index, shard in enumerate(shards)
        ]

        expected_ids = [
            tuple(profile.device_id for profile in shard) for shard in shards
        ]

        def validate(outcome) -> None:
            shard_index, result, telemetry, _ = outcome
            ids = tuple(profile.device_id for profile in result.profiles)
            if ids != expected_ids[shard_index]:
                raise PayloadCorruptionError(
                    f"shard {shard_index} returned {len(ids)} devices, "
                    f"expected {len(expected_ids[shard_index])}"
                )
            if len(result.traces) != len(ids):
                raise PayloadCorruptionError(
                    f"shard {shard_index} returned {len(result.traces)} "
                    f"traces for {len(ids)} devices"
                )

        # Single shards never paid process overhead historically; keep
        # that unless a timeout demands a killable worker.
        inline_only = (
            len(tasks) == 1 and self._policy.shard_timeout_s is None
        )
        supervisor = ShardSupervisor(
            _run_shard_attempt,
            policy=self._policy,
            validate=validate,
            metrics=self._metrics if collect_metrics else None,
            inline_only=inline_only,
            monitor=monitor,
        )
        if monitor is not None:
            monitor.begin_run(
                [len(shard) for shard in shards], num_steps, step_s
            )
        run_ok = False
        try:
            outcomes, stats = supervisor.run(tasks)
            run_ok = True
        finally:
            if monitor is not None:
                monitor.end_run(run_ok)
        outcomes.sort(key=lambda outcome: outcome[0])
        traces = tuple(
            trace for _, result, _, _ in outcomes for trace in result.traces
        )
        telemetry = FleetTelemetry.merge(
            [shard_telemetry for _, _, shard_telemetry, _ in outcomes]
        )
        elapsed = time.perf_counter() - start
        merged = FleetResult(
            profiles=profiles,
            traces=traces,
            elapsed_s=elapsed,
            mode="sharded",
            trace_mode=trace,
        )
        shard_elapsed = tuple(result.elapsed_s for _, result, _, _ in outcomes)
        shard_metrics: Tuple[MetricsSnapshot, ...] = ()
        merged_metrics: Optional[MetricsSnapshot] = None
        if collect_metrics:
            shard_metrics = tuple(
                snapshot for _, _, _, snapshot in outcomes if snapshot is not None
            )
            # Coordinator-level heartbeats: one observation per shard so
            # the merged snapshot carries balance/straggler information
            # alongside the device-attributable engine metrics.
            self._metrics.gauge("shard.count", float(len(shards)))
            for (_, result, _, _), shard in zip(outcomes, shards):
                self._metrics.observe("shard.elapsed_s", result.elapsed_s)
                self._metrics.observe("shard.devices", float(len(shard)))
            if monitor is not None:
                # Fold the monitor-side live-telemetry counters
                # (heartbeat.received, straggler.flags, flight.*) into
                # the coordinator registry so they reach the merged
                # snapshot and every exporter.
                for name, value in sorted(monitor.counters.items()):
                    self._metrics.count(name, value)
            merged_metrics = MetricsSnapshot.merge_all(
                (self._metrics.snapshot(),) + shard_metrics
            )
        return ShardedFleetRun(
            result=merged,
            telemetry=telemetry,
            shard_sizes=tuple(len(shard) for shard in shards),
            used_processes=stats.used_processes,
            shard_elapsed_s=shard_elapsed,
            shard_metrics=shard_metrics,
            metrics=merged_metrics,
            shard_attempts=stats.attempts,
            retries=stats.retries,
            failures=stats.failures,
            timeouts=stats.timeouts,
            stragglers=monitor.stragglers() if monitor is not None else (),
        )

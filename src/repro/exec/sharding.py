"""Process-sharded fleet simulation.

A :class:`repro.fleet.population.DevicePopulation` is embarrassingly
parallel: every device owns a private random stream derived from the
population's master seed, so a device's trace depends only on its own
profile — never on which other devices happen to share its batch.  The
execution core is additionally batch-size invariant, which makes
sharding a pure partitioning concern: split the population into
contiguous shards, simulate each shard with a full
:class:`repro.fleet.engine.FleetSimulator` in its own worker process,
and merge the per-shard traces and :class:`repro.fleet.telemetry.FleetTelemetry`
reports back in device-id order.  The merged result is bit-identical to
a single-process run — and to the per-device sequential reference —
for any shard count, which the shard-invariance tests pin down.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing
import time

from repro.core.features import WINDOW_DURATION_S
from repro.core.pipeline import HarPipeline
from repro.fleet.engine import FleetResult, FleetSimulator, resolve_fleet_duration
from repro.fleet.population import DeviceProfile, DevicePopulation
from repro.fleet.telemetry import FleetTelemetry
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ
from repro.utils.validation import check_positive_int


def _run_shard(payload) -> Tuple[int, FleetResult, FleetTelemetry]:
    """Simulate one shard (executed inside a worker process)."""
    shard_index, pipeline, profiles, duration_s, settings, trace = payload
    simulator = FleetSimulator(pipeline, **settings)
    result = simulator.run(profiles, duration_s=duration_s, trace=trace)
    return shard_index, result, FleetTelemetry.from_result(result)


@dataclass(frozen=True)
class ShardedFleetRun:
    """Outcome of one sharded fleet simulation.

    Attributes
    ----------
    result:
        The merged :class:`FleetResult` (``mode="sharded"``), traces in
        device-id order and bit-identical to a single-process run.
    telemetry:
        Fleet telemetry merged from the per-shard reports.
    shard_sizes:
        Devices per shard, in shard order.
    used_processes:
        Whether worker processes were actually used (single shards and
        pool-creation failures run inline).
    """

    result: FleetResult
    telemetry: FleetTelemetry
    shard_sizes: Tuple[int, ...]
    used_processes: bool

    @property
    def num_shards(self) -> int:
        """Number of shards the population was split into."""
        return len(self.shard_sizes)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock time of the whole sharded run."""
        return self.result.elapsed_s


class ShardedFleetSimulator:
    """Splits a device population across worker processes.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline; shipped to every worker.
    num_shards:
        Default shard count for :meth:`run`; ``None`` uses the machine's
        CPU count.
    internal_rate_hz, step_s, window_duration_s, features, sensing, controllers, noise:
        Forwarded to the per-shard :class:`FleetSimulator` (and through
        it to the shared :class:`repro.exec.engine.StepEngine`).  The
        ``noise="batched"`` acquisition layer derives every device's
        stream from the device's own seed, so sharded results stay
        invariant to the shard count in either mode.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        num_shards: Optional[int] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
        controllers: str = "bank",
        noise: str = "per_device",
    ) -> None:
        if num_shards is not None:
            check_positive_int(num_shards, "num_shards")
        self._pipeline = pipeline
        self._num_shards = num_shards
        self._settings: Dict[str, object] = {
            "internal_rate_hz": internal_rate_hz,
            "step_s": step_s,
            "window_duration_s": window_duration_s,
            "features": features,
            "sensing": sensing,
            "controllers": controllers,
            "noise": noise,
        }
        # Validate the engine settings eagerly (in the parent process)
        # instead of deep inside the first worker.
        FleetSimulator(pipeline, **self._settings)

    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._pipeline

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        num_shards: Optional[int] = None,
    ) -> List[Tuple[DeviceProfile, ...]]:
        """Split a population into contiguous, near-equal shards.

        Contiguous splitting preserves device-id order, so merging shard
        outputs is a plain concatenation.  The shard count is capped at
        the population size.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        requested = num_shards if num_shards is not None else self._num_shards
        if requested is None:
            requested = os.cpu_count() or 1
        check_positive_int(requested, "num_shards")
        count = min(requested, len(profiles))
        base, extra = divmod(len(profiles), count)
        shards: List[Tuple[DeviceProfile, ...]] = []
        cursor = 0
        for shard_index in range(count):
            size = base + (1 if shard_index < extra else 0)
            shards.append(profiles[cursor : cursor + size])
            cursor += size
        return shards

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
        num_shards: Optional[int] = None,
        trace: str = "full",
    ) -> ShardedFleetRun:
        """Simulate the population across worker processes and merge.

        Parameters
        ----------
        population:
            The devices to simulate.
        duration_s:
            Simulated seconds per device (defaults to the shortest
            schedule, as in :meth:`FleetSimulator.run`).
        num_shards:
            Overrides the simulator's default shard count for this run.
        trace:
            ``"full"`` (default) or ``"summary"`` (streaming
            accumulators only; also shrinks the per-shard payload the
            workers ship back to O(devices)).

        Returns
        -------
        ShardedFleetRun
            Merged traces and telemetry, invariant to the shard count.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        duration = resolve_fleet_duration(profiles, duration_s)
        shards = self.plan(profiles, num_shards)

        start = time.perf_counter()
        payloads = [
            (index, self._pipeline, shard, duration, self._settings, trace)
            for index, shard in enumerate(shards)
        ]
        outcomes, used_processes = self._execute(payloads)
        outcomes.sort(key=lambda outcome: outcome[0])
        traces = tuple(
            trace for _, result, _ in outcomes for trace in result.traces
        )
        telemetry = FleetTelemetry.merge(
            [shard_telemetry for _, _, shard_telemetry in outcomes]
        )
        elapsed = time.perf_counter() - start
        merged = FleetResult(
            profiles=profiles,
            traces=traces,
            elapsed_s=elapsed,
            mode="sharded",
            trace_mode=trace,
        )
        return ShardedFleetRun(
            result=merged,
            telemetry=telemetry,
            shard_sizes=tuple(len(shard) for shard in shards),
            used_processes=used_processes,
        )

    def _execute(self, payloads) -> Tuple[List, bool]:
        """Run shard payloads, in worker processes when it makes sense."""
        if len(payloads) == 1:
            return [_run_shard(payloads[0])], False
        try:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            max_workers = min(len(payloads), os.cpu_count() or 1)
            with ProcessPoolExecutor(
                max_workers=max_workers, mp_context=context
            ) as executor:
                return list(executor.map(_run_shard, payloads)), True
        except OSError:
            # Restricted environments (no process spawning) still get
            # correct results — shards are independent either way.
            return [_run_shard(payload) for payload in payloads], False

"""Fault-tolerant shard execution: supervision, retry and fault injection.

The sharded fleet coordinator used to submit every shard to one
:class:`~concurrent.futures.ProcessPoolExecutor` and hope — a single
dead worker raised ``BrokenProcessPool`` out of the pool and lost the
whole campaign.  This module replaces that with an explicit supervisor
built on raw :class:`multiprocessing.Process` workers:

* each shard **attempt** runs in its own process with its own result
  pipe, so a hung or dead worker can be timed out and terminated
  without disturbing the other shards;
* failed attempts (worker death, raised exceptions, timeouts, corrupt
  payloads) are retried with exponential backoff up to a configurable
  budget, with an optional in-process last-resort attempt;
* a shard that exhausts every attempt raises a clean
  :class:`ShardExecutionError` naming the shard, the attempt count and
  (when a monitor with a flight recorder is attached) the crash dump;
* workers can interleave in-flight ``("event", payload)`` messages —
  heartbeats, round starts, checkpoints — with the terminal
  ``("ok", ...)`` / ``("error", ...)`` result protocol on the same
  pipe; the supervisor forwards them to an optional run monitor
  (:class:`repro.obs.live.RunMonitor`) without disturbing supervision;
* failures are observable: the supervisor counts ``shard.retries`` /
  ``shard.failures`` / ``shard.timeouts`` / ``shard.corrupt_payloads``
  on the coordinator's :class:`repro.obs.metrics.MetricsRegistry`.

Because every recovery path must be testable in CI, the module also
provides a deterministic :class:`FaultInjector` driven by a parsed
:class:`FaultPlan` (constructor argument or the ``REPRO_FAULT_PLAN``
environment variable): kill shard *k* at round *r*, delay shard *k* by
*d* seconds, or corrupt one result payload.  Injection is a pure
function of ``(kind, shard, round, attempt)``, so a fault schedule
replays identically on every run.

The supervisor is deliberately agnostic of what a "shard" computes: it
runs ``worker(payload, attempt)`` callables and hands back their return
values in task order.  Round-based checkpointing lives in the worker
(see :mod:`repro.exec.sharding`); the attempt index threaded through
here is what lets a retried worker resume from its checkpoint.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "PayloadCorruptionError",
    "RetryPolicy",
    "ShardExecutionError",
    "ShardSupervisor",
    "SupervisorStats",
]

_LOGGER = logging.getLogger("repro.exec.resilience")

#: Exit code used by injected worker kills, chosen to be recognisable
#: in process tables and test assertions.
FAULT_EXIT_CODE = 23

#: Environment variable holding a fault-plan spec (see
#: :meth:`FaultPlan.parse`).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultInjector` for kills in in-process runs.

    Worker processes die via ``os._exit`` (simulating a hard crash);
    inline attempts cannot take the whole coordinator down, so the
    injector raises this instead and the retry machinery treats it
    like any other attempt failure.
    """


class PayloadCorruptionError(RuntimeError):
    """A shard returned a structurally invalid result payload."""


class ShardExecutionError(RuntimeError):
    """A shard failed every attempt the retry policy allowed.

    Attributes
    ----------
    shard_index:
        The shard that could not be completed.
    attempts:
        Total attempts made (first try plus retries).
    last_error:
        Human-readable description of the final attempt's failure.
    flight_path:
        Path of the shard's newest flight-recorder dump, when a run
        monitor with a flight directory was attached (``None``
        otherwise) — the artifact to open first when debugging.
    """

    def __init__(
        self,
        shard_index: int,
        attempts: int,
        last_error: str,
        flight_path: Optional[str] = None,
    ) -> None:
        message = (
            f"shard {shard_index} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''} (last error: {last_error})"
        )
        if flight_path is not None:
            message += f"; flight recording: {flight_path}"
        super().__init__(message)
        self.shard_index = shard_index
        self.attempts = attempts
        self.last_error = last_error
        self.flight_path = flight_path


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor tries before giving up on a shard.

    Attributes
    ----------
    max_retries:
        Process re-attempts after the first try (so a shard gets
        ``1 + max_retries`` process attempts).
    backoff_base_s, backoff_factor, backoff_max_s:
        Exponential backoff between attempts: retry *n* (0-based) waits
        ``min(backoff_base_s * backoff_factor ** n, backoff_max_s)``
        seconds before resubmitting.
    shard_timeout_s:
        Wall-clock budget per attempt; a worker still running at the
        deadline is terminated and the attempt counts as a timeout
        failure.  ``None`` (default) never times out.
    inline_last_resort:
        After every process attempt fails, run one final attempt in the
        coordinator process itself (no timeout enforcement there).  The
        last line of defence for environments where process spawning is
        broken entirely.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    shard_timeout_s: Optional[float] = None
    inline_last_resort: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base_s < 0.0:
            raise ValueError(
                f"backoff_base_s must be non-negative, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < 0.0:
            raise ValueError(
                f"backoff_max_s must be non-negative, got {self.backoff_max_s}"
            )
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0.0:
            raise ValueError(
                f"shard_timeout_s must be positive, got {self.shard_timeout_s}"
            )

    def backoff_s(self, retry_index: int) -> float:
        """Delay before the ``retry_index``-th retry (0-based)."""
        return min(
            self.backoff_base_s * self.backoff_factor**retry_index,
            self.backoff_max_s,
        )


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: ``kind`` at a (shard, round, attempt) site.

    ``None`` fields are wildcards.  ``attempt_range`` is an inclusive
    ``(lo, hi)`` pair; ``None`` matches every attempt.
    """

    kind: str
    shard: Optional[int] = None
    round_index: Optional[int] = 0
    attempt_range: Optional[Tuple[int, int]] = (0, 0)
    seconds: float = 0.25

    KINDS = ("kill", "delay", "corrupt")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(
                f"fault kind must be one of {self.KINDS}, got {self.kind!r}"
            )
        if self.seconds < 0.0:
            raise ValueError(f"seconds must be non-negative, got {self.seconds}")
        if self.attempt_range is not None:
            lo, hi = self.attempt_range
            if lo < 0 or hi < lo:
                raise ValueError(
                    f"attempt range must satisfy 0 <= lo <= hi, got {lo}-{hi}"
                )

    def matches(
        self, shard: int, round_index: Optional[int], attempt: int
    ) -> bool:
        """Does this rule fire at the given site?

        ``round_index=None`` (used for result-time faults like
        ``corrupt``) only matches rules whose round is a wildcard or 0
        — corruption is a property of the attempt, not of a round.
        """
        if self.shard is not None and self.shard != shard:
            return False
        if self.round_index is not None:
            site_round = 0 if round_index is None else round_index
            if self.round_index != site_round:
                return False
        if self.attempt_range is not None:
            lo, hi = self.attempt_range
            if not lo <= attempt <= hi:
                return False
        return True


def _parse_site(value: str, key: str) -> Optional[int]:
    if value == "*":
        return None
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(f"fault plan {key} must be an int or '*', got {value!r}")
    if parsed < 0:
        raise ValueError(f"fault plan {key} must be non-negative, got {parsed}")
    return parsed


def _parse_attempts(value: str) -> Optional[Tuple[int, int]]:
    if value == "*":
        return None
    if "-" in value:
        lo_text, _, hi_text = value.partition("-")
        lo, hi = int(lo_text), int(hi_text)
    else:
        lo = hi = int(value)
    if lo < 0 or hi < lo:
        raise ValueError(
            f"fault plan attempts must satisfy 0 <= lo <= hi, got {value!r}"
        )
    return (lo, hi)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultRule` entries.

    Specs are ``;``-separated rules of the form
    ``KIND:key=value,key=value`` where ``KIND`` is ``kill`` / ``delay``
    / ``corrupt`` and the keys are:

    ``shard``
        Shard index or ``*`` (any shard).  Default ``*``.
    ``round``
        Round index or ``*`` (any round).  Default ``0``.
    ``attempts``
        Attempt index, inclusive range ``lo-hi``, or ``*``.
        Default ``0`` — by default a fault hits only the first attempt,
        so the retry succeeds.
    ``seconds``
        Delay duration (``delay`` rules only).  Default ``0.25``.

    Examples: ``kill:shard=1,round=0`` (kill shard 1's first attempt in
    round 0), ``delay:shard=*,seconds=0.5,attempts=*`` (slow every
    attempt of every shard), ``kill:shard=2,attempts=0-3`` (keep
    killing shard 2 until its fourth attempt).
    """

    rules: Tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see class docstring for the grammar)."""
        rules: List[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, arg_text = chunk.partition(":")
            kind = kind.strip()
            kwargs: Dict[str, Any] = {
                "shard": None,
                "round_index": 0,
                "attempt_range": (0, 0),
            }
            for item in arg_text.split(","):
                item = item.strip()
                if not item:
                    continue
                key, sep, value = item.partition("=")
                key, value = key.strip(), value.strip()
                if not sep or not value:
                    raise ValueError(
                        f"fault plan entry {item!r} is not key=value"
                    )
                if key == "shard":
                    kwargs["shard"] = _parse_site(value, "shard")
                elif key == "round":
                    kwargs["round_index"] = _parse_site(value, "round")
                elif key == "attempts":
                    kwargs["attempt_range"] = _parse_attempts(value)
                elif key == "seconds":
                    kwargs["seconds"] = float(value)
                else:
                    raise ValueError(f"unknown fault plan key {key!r}")
            rules.append(FaultRule(kind=kind, **kwargs))
        return cls(rules=tuple(rules))

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """Build a plan from ``REPRO_FAULT_PLAN``; ``None`` when unset."""
        env = os.environ if environ is None else environ
        spec = env.get(FAULT_PLAN_ENV, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    @property
    def is_empty(self) -> bool:
        return not self.rules

    def first_match(
        self, kind: str, shard: int, round_index: Optional[int], attempt: int
    ) -> Optional[FaultRule]:
        """First rule of ``kind`` firing at the site, or ``None``."""
        for rule in self.rules:
            if rule.kind == kind and rule.matches(shard, round_index, attempt):
                return rule
        return None


class FaultInjector:
    """Executes a :class:`FaultPlan` inside shard workers.

    The injector travels to the worker in the shard payload and is
    consulted at deterministic points: :meth:`on_round` before each
    simulated round (delays sleep, kills die) and :meth:`corrupts`
    when the result payload is assembled.  A worker-process kill uses
    ``os._exit`` — no cleanup, no exception propagation — to model a
    hard crash; inline attempts raise :class:`InjectedFault` instead.
    """

    def __init__(self, plan: FaultPlan, exit_code: int = FAULT_EXIT_CODE) -> None:
        self._plan = plan
        self._exit_code = exit_code

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def on_round(self, shard: int, round_index: int, attempt: int) -> None:
        """Apply round-start faults for the site (delay, then kill)."""
        delay = self._plan.first_match("delay", shard, round_index, attempt)
        if delay is not None and delay.seconds > 0.0:
            time.sleep(delay.seconds)
        kill = self._plan.first_match("kill", shard, round_index, attempt)
        if kill is not None:
            if multiprocessing.parent_process() is not None:
                os._exit(self._exit_code)
            raise InjectedFault(
                f"injected kill: shard {shard}, round {round_index}, "
                f"attempt {attempt}"
            )

    def corrupts(self, shard: int, attempt: int) -> bool:
        """Should this attempt's result payload be corrupted?"""
        return self._plan.first_match("corrupt", shard, None, attempt) is not None


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorStats:
    """Aggregate outcome bookkeeping of one supervised run.

    Attributes
    ----------
    attempts:
        Attempts consumed per task (1 = first try succeeded), in task
        order.
    retries:
        Re-attempts scheduled across all tasks (including inline
        last-resort attempts).
    failures:
        Failed attempts across all tasks (worker deaths, raised
        exceptions, timeouts and corrupt payloads all count).
    timeouts:
        Attempts terminated for exceeding the per-shard timeout.
    corrupt_payloads:
        Results rejected by the validation hook.
    used_processes:
        Whether any attempt ran in a worker process.
    """

    attempts: Tuple[int, ...]
    retries: int
    failures: int
    timeouts: int
    corrupt_payloads: int
    used_processes: bool


def _supervised_entry(
    worker: Callable[..., Any],
    payload: Any,
    attempt: int,
    conn: multiprocessing.connection.Connection,
    send_events: bool = False,
) -> None:
    """Process entry point: run the worker, ship outcome over the pipe.

    With ``send_events`` the worker receives an ``emit`` callable that
    ships ``("event", payload)`` messages over the same pipe, ahead of
    the terminal ``("ok", ...)`` / ``("error", ...)`` message — the
    in-flight heartbeat channel the supervisor's event loop folds into
    its run monitor.  Emission is best-effort: a closed pipe must never
    take the simulation down.
    """
    try:
        if send_events:

            def emit(event: Any) -> None:
                try:
                    conn.send(("event", event))
                except Exception:  # noqa: BLE001 - monitoring only
                    pass

            result = worker(payload, attempt, emit)
        else:
            result = worker(payload, attempt)
    except BaseException as exc:  # noqa: BLE001 - forwarded to supervisor
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    except Exception as exc:  # result not picklable / pipe gone
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class _Attempt:
    """One in-flight or queued shard attempt."""

    __slots__ = ("task_index", "attempt", "ready_at", "inline", "process",
                 "conn", "deadline")

    def __init__(
        self,
        task_index: int,
        attempt: int,
        ready_at: float = 0.0,
        inline: bool = False,
    ) -> None:
        self.task_index = task_index
        self.attempt = attempt
        self.ready_at = ready_at
        self.inline = inline
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[multiprocessing.connection.Connection] = None
        self.deadline: Optional[float] = None


class ShardSupervisor:
    """Runs shard payloads under retry/timeout/fault supervision.

    Parameters
    ----------
    worker:
        ``worker(payload, attempt) -> result`` callable.  Must be
        picklable (a module-level function) so spawn-based contexts can
        ship it to worker processes.
    policy:
        The :class:`RetryPolicy`; defaults to ``RetryPolicy()``.
    validate:
        Optional hook called with every successful result; raise
        :class:`PayloadCorruptionError` to reject it and trigger a
        retry.
    metrics:
        Optional coordinator :class:`MetricsRegistry` receiving the
        ``shard.retries`` / ``shard.failures`` / ``shard.timeouts`` /
        ``shard.corrupt_payloads`` counters.
    inline_only:
        Run every attempt in the current process (no workers, no
        timeout enforcement).  Used for single-shard runs, which never
        paid process overhead historically, and as the global fallback
        when the platform cannot spawn processes at all.
    monitor:
        Optional live-run monitor (duck-typed after
        :class:`repro.obs.live.RunMonitor`).  When set, workers are
        invoked as ``worker(payload, attempt, emit)`` and their emitted
        events are interleaved with the result protocol and forwarded
        to ``monitor.handle_event``; the supervisor additionally calls
        ``on_attempt_start`` / ``on_attempt_failure`` /
        ``on_task_complete`` and consults ``flight_path`` when raising
        :class:`ShardExecutionError`.  Every monitor call is
        exception-guarded: monitoring may degrade, execution may not.
    """

    def __init__(
        self,
        worker: Callable[..., Any],
        policy: Optional[RetryPolicy] = None,
        validate: Optional[Callable[[Any], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        inline_only: bool = False,
        monitor: Optional[Any] = None,
    ) -> None:
        self._worker = worker
        self._policy = policy if policy is not None else RetryPolicy()
        self._validate = validate
        self._metrics = metrics
        self._inline_only = inline_only
        self._monitor = monitor
        self._retries = 0
        self._failures = 0
        self._timeouts = 0
        self._corrupt = 0

    # -- counter helpers ------------------------------------------------
    def _count(self, name: str) -> None:
        if self._metrics is not None and self._metrics.enabled:
            self._metrics.count(name)

    def _note_failure(
        self, task_index: int, attempt: int, reason: str, kind: str = "error"
    ) -> None:
        self._failures += 1
        self._count("shard.failures")
        _LOGGER.warning(
            "shard %d attempt %d failed: %s", task_index, attempt, reason
        )
        self._notify("on_attempt_failure", task_index, attempt, kind, reason)

    # -- monitor plumbing ------------------------------------------------
    def _notify(self, hook: str, *args: Any) -> None:
        """Call a monitor hook, swallowing (but logging) its failures."""
        if self._monitor is None:
            return
        method = getattr(self._monitor, hook, None)
        if method is None:
            return
        try:
            method(*args)
        except Exception:  # noqa: BLE001 - monitoring must not fail runs
            _LOGGER.exception("run monitor hook %s failed", hook)

    def _dispatch_event(self, task_index: int, attempt: int, event: Any) -> None:
        """Forward one in-flight worker event to the monitor."""
        self._notify("handle_event", task_index, attempt, event)

    def _inline_emit(self, task_index: int, attempt: int):
        """The ``emit`` callable handed to inline worker attempts."""
        if self._monitor is None:
            return None

        def emit(event: Any) -> None:
            self._dispatch_event(task_index, attempt, event)

        return emit

    def _flight_path(self, task_index: int) -> Optional[str]:
        if self._monitor is None:
            return None
        method = getattr(self._monitor, "flight_path", None)
        if method is None:
            return None
        try:
            return method(task_index)
        except Exception:  # noqa: BLE001 - monitoring must not fail runs
            _LOGGER.exception("run monitor flight_path failed")
            return None

    # -- public API -----------------------------------------------------
    def run(self, payloads: Sequence[Any]) -> Tuple[List[Any], SupervisorStats]:
        """Run every payload to completion (or raise).

        Returns results in task order plus the run's
        :class:`SupervisorStats`.  Raises :class:`ShardExecutionError`
        as soon as any shard exhausts its attempt budget; remaining
        workers are terminated first.
        """
        self._retries = self._failures = self._timeouts = self._corrupt = 0
        tasks = list(payloads)
        results: List[Any] = [None] * len(tasks)
        attempts_used = [0] * len(tasks)
        if not tasks:
            return results, self._stats(attempts_used, used_processes=False)
        if self._inline_only:
            for index, payload in enumerate(tasks):
                results[index], attempts_used[index] = self._run_task_inline(
                    index, payload
                )
            return results, self._stats(attempts_used, used_processes=False)
        used = self._run_supervised(tasks, results, attempts_used)
        return results, self._stats(attempts_used, used_processes=used)

    def _stats(
        self, attempts_used: List[int], used_processes: bool
    ) -> SupervisorStats:
        return SupervisorStats(
            attempts=tuple(attempts_used),
            retries=self._retries,
            failures=self._failures,
            timeouts=self._timeouts,
            corrupt_payloads=self._corrupt,
            used_processes=used_processes,
        )

    # -- inline path ----------------------------------------------------
    def _attempt_inline(self, task_index: int, payload: Any, attempt: int):
        """One inline attempt.  Returns ``(ok, result_or_reason, kind)``."""
        self._notify("on_attempt_start", task_index, attempt, True)
        emit = self._inline_emit(task_index, attempt)
        try:
            if emit is not None:
                result = self._worker(payload, attempt, emit)
            else:
                result = self._worker(payload, attempt)
            if self._validate is not None:
                self._validate(result)
        except PayloadCorruptionError as exc:
            self._corrupt += 1
            self._count("shard.corrupt_payloads")
            return False, f"{type(exc).__name__}: {exc}", "corrupt"
        except Exception as exc:  # noqa: BLE001 - retried below
            return False, f"{type(exc).__name__}: {exc}", "error"
        return True, result, "ok"

    def _run_task_inline(self, task_index: int, payload: Any) -> Tuple[Any, int]:
        """Run one task fully inline with the policy's retry budget."""
        total_attempts = 1 + self._policy.max_retries
        last_reason = "unknown"
        for attempt in range(total_attempts):
            if attempt > 0:
                self._retries += 1
                self._count("shard.retries")
                backoff = self._policy.backoff_s(attempt - 1)
                if backoff > 0.0:
                    time.sleep(backoff)
            ok, outcome, kind = self._attempt_inline(task_index, payload, attempt)
            if ok:
                self._notify("on_task_complete", task_index, attempt + 1)
                return outcome, attempt + 1
            last_reason = outcome
            self._note_failure(task_index, attempt, outcome, kind)
        raise ShardExecutionError(
            task_index, total_attempts, last_reason,
            flight_path=self._flight_path(task_index),
        )

    # -- supervised (process) path --------------------------------------
    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def _launch(
        self, context, entry: _Attempt, payload: Any
    ) -> None:
        """Start a worker process for an attempt (raises OSError on
        platforms that cannot spawn)."""
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_supervised_entry,
            args=(
                self._worker, payload, entry.attempt, sender,
                self._monitor is not None,
            ),
            daemon=True,
        )
        try:
            process.start()
        except BaseException:
            receiver.close()
            sender.close()
            raise
        sender.close()
        entry.process = process
        entry.conn = receiver
        if self._policy.shard_timeout_s is not None:
            entry.deadline = time.monotonic() + self._policy.shard_timeout_s
        self._notify("on_attempt_start", entry.task_index, entry.attempt, False)

    def _reap(self, entry: _Attempt) -> None:
        """Terminate and clean up an attempt's process, if any."""
        if entry.process is not None:
            if entry.process.is_alive():
                entry.process.terminate()
            entry.process.join()
        if entry.conn is not None:
            entry.conn.close()

    def _schedule_retry(
        self,
        entry: _Attempt,
        pending: List[_Attempt],
        now: float,
        reason: str,
    ) -> Optional[Tuple[int, int, str]]:
        """Queue the next attempt for a failed one.

        Returns ``None`` when a retry (or the inline last resort) was
        scheduled, otherwise ``(task_index, attempts, reason)`` meaning
        the shard is out of budget.
        """
        next_attempt = entry.attempt + 1
        if entry.attempt < self._policy.max_retries:
            self._retries += 1
            self._count("shard.retries")
            pending.append(
                _Attempt(
                    entry.task_index,
                    next_attempt,
                    ready_at=now + self._policy.backoff_s(entry.attempt),
                )
            )
            return None
        if not entry.inline and self._policy.inline_last_resort:
            self._retries += 1
            self._count("shard.retries")
            _LOGGER.warning(
                "shard %d: process attempts exhausted, falling back inline",
                entry.task_index,
            )
            pending.append(
                _Attempt(entry.task_index, next_attempt, inline=True)
            )
            return None
        return entry.task_index, next_attempt, reason

    def _run_supervised(
        self,
        tasks: List[Any],
        results: List[Any],
        attempts_used: List[int],
    ) -> bool:
        policy = self._policy
        context = self._context()
        max_workers = min(len(tasks), os.cpu_count() or 1)
        pending: List[_Attempt] = [
            _Attempt(index, 0) for index in range(len(tasks))
        ]
        running: Dict[Any, _Attempt] = {}
        used_processes = False
        inline_mode = False
        fatal: Optional[Tuple[int, int, str]] = None

        def fail_attempt(
            entry: _Attempt, reason: str, now: float, kind: str = "error"
        ) -> None:
            nonlocal fatal
            self._note_failure(entry.task_index, entry.attempt, reason, kind)
            exhausted = self._schedule_retry(entry, pending, now, reason)
            if exhausted is not None and fatal is None:
                fatal = exhausted

        def finish_attempt(entry: _Attempt, result: Any, now: float) -> None:
            try:
                if self._validate is not None:
                    self._validate(result)
            except PayloadCorruptionError as exc:
                self._corrupt += 1
                self._count("shard.corrupt_payloads")
                fail_attempt(entry, f"{type(exc).__name__}: {exc}", now,
                             kind="corrupt")
                return
            results[entry.task_index] = result
            attempts_used[entry.task_index] = entry.attempt + 1
            self._notify(
                "on_task_complete", entry.task_index, entry.attempt + 1
            )

        try:
            while (pending or running) and fatal is None:
                now = time.monotonic()
                # Launch every due attempt the worker budget allows.
                # Inline attempts (last resort or global fallback) run
                # synchronously right here.
                for entry in list(pending):
                    if fatal is not None:
                        break
                    if entry.ready_at > now:
                        continue
                    if entry.inline or inline_mode:
                        pending.remove(entry)
                        ok, outcome, kind = self._attempt_inline(
                            entry.task_index, tasks[entry.task_index],
                            entry.attempt,
                        )
                        now = time.monotonic()
                        if ok:
                            results[entry.task_index] = outcome
                            attempts_used[entry.task_index] = entry.attempt + 1
                            self._notify(
                                "on_task_complete",
                                entry.task_index, entry.attempt + 1,
                            )
                        else:
                            entry.inline = True
                            fail_attempt(entry, outcome, now, kind)
                        continue
                    if len(running) >= max_workers:
                        continue
                    pending.remove(entry)
                    try:
                        self._launch(context, entry, tasks[entry.task_index])
                    except OSError as exc:
                        # Restricted environment: no process spawning at
                        # all.  Finish everything inline (the historical
                        # fallback), starting with this attempt.
                        _LOGGER.warning(
                            "cannot spawn shard workers (%s); running inline",
                            exc,
                        )
                        inline_mode = True
                        pending.append(entry)
                        continue
                    used_processes = True
                    running[entry.conn] = entry
                if fatal is not None or (not pending and not running):
                    break
                if not running:
                    # Everything queued is backing off; sleep to the
                    # earliest ready time.
                    wake = min(entry.ready_at for entry in pending)
                    delay = wake - time.monotonic()
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                # Wait for a result, a worker death, a deadline or a
                # backoff expiry — whichever comes first.
                timeout: Optional[float] = None
                bounds = [
                    entry.deadline
                    for entry in running.values()
                    if entry.deadline is not None
                ]
                bounds.extend(
                    entry.ready_at for entry in pending if entry.ready_at > now
                )
                if bounds:
                    timeout = max(0.0, min(bounds) - time.monotonic())
                ready = multiprocessing.connection.wait(
                    list(running.keys()), timeout=timeout
                )
                now = time.monotonic()
                for conn in ready:
                    entry = running[conn]
                    try:
                        kind, value = conn.recv()
                    except (EOFError, OSError):
                        kind, value = "died", None
                    if kind == "event":
                        # In-flight heartbeat/progress message: fold it
                        # and keep the attempt registered — only the
                        # terminal ok/error/death messages retire it.
                        self._dispatch_event(
                            entry.task_index, entry.attempt, value
                        )
                        continue
                    del running[conn]
                    self._reap(entry)
                    if kind == "died":
                        fail_attempt(
                            entry,
                            "worker died before reporting "
                            f"(exit code {entry.process.exitcode})",
                            now,
                            kind="died",
                        )
                    elif kind == "ok":
                        finish_attempt(entry, value, now)
                    else:
                        fail_attempt(entry, str(value), now)
                # Deadline sweep.
                for conn, entry in list(running.items()):
                    if entry.deadline is not None and now >= entry.deadline:
                        del running[conn]
                        self._reap(entry)
                        self._timeouts += 1
                        self._count("shard.timeouts")
                        fail_attempt(
                            entry,
                            f"timed out after {policy.shard_timeout_s} s",
                            now,
                            kind="timeout",
                        )
        finally:
            for entry in running.values():
                self._reap(entry)
        if fatal is not None:
            task_index, attempts, reason = fatal
            raise ShardExecutionError(
                task_index, attempts, reason,
                flight_path=self._flight_path(task_index),
            )
        return used_processes

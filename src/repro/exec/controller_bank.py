"""Vectorized controller bank: array-of-states adaptive controllers.

The execution core batches sensing, feature extraction and
classification, but before this module every SPOT / confidence /
intensity state machine was still advanced one Python call per device
per tick — the last per-device loop on the fleet hot path.
:class:`ControllerBank` collapses it: the states of every supported
controller (static, SPOT, SPOT-with-confidence, intensity-switching)
are held as NumPy arrays — state index, stability counter, remembered
activity, thresholds — grouped into one *sub-bank* per controller
family, and one :meth:`ControllerBank.update` call advances the whole
fleet with a handful of array operations.

The bank is a pure state-machine transliteration: every branch of
:meth:`repro.core.controller.SpotController.update` (conditions C1-C4
plus the confidence gate) and of
:class:`repro.baselines.intensity_based.IntensityController` maps to a
boolean mask, so banked updates are **bit-identical** to calling each
controller object in a loop — the equivalence tests sweep mixed
populations of all four kinds to pin that down.  Controllers of any
other type (user subclasses, custom policies) are simply left out of
the bank; the engine keeps driving them per object, so heterogeneous
fleets mixing banked and custom controllers stay supported.

Configurations are interned into small integer ids
(:class:`ConfigTable`), which is also what lets the engine group
devices per tick without touching controller objects, and what the
streaming-telemetry accumulator keys its dwell matrix on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.intensity_based import IntensityController
from repro.core.activities import Activity
from repro.core.config import SensorConfig
from repro.core.controller import (
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)

#: Sentinel stored in the ``last activity`` array before the first update
#: (the per-object controllers use ``None``; activities are >= 0).
NO_ACTIVITY: int = -1


class ConfigTable:
    """Interns :class:`SensorConfig` objects to dense integer ids."""

    def __init__(self) -> None:
        self._configs: List[SensorConfig] = []
        self._ids: Dict[SensorConfig, int] = {}

    def intern(self, config: SensorConfig) -> int:
        """Return the id of ``config``, registering it on first sight."""
        config_id = self._ids.get(config)
        if config_id is None:
            config_id = len(self._configs)
            self._ids[config] = config_id
            self._configs.append(config)
        return config_id

    def config(self, config_id: int) -> SensorConfig:
        """The configuration registered under ``config_id``."""
        return self._configs[config_id]

    def __len__(self) -> int:
        return len(self._configs)


class _StaticBank:
    """Devices whose configuration never changes."""

    def __init__(
        self,
        indices: Sequence[int],
        controllers: Sequence[StaticController],
        table: ConfigTable,
    ) -> None:
        self.indices = np.asarray(indices, dtype=np.intp)
        self._config_ids = np.array(
            [table.intern(controller.current_config) for controller in controllers],
            dtype=np.int64,
        )

    def current_config_ids(self) -> np.ndarray:
        return self._config_ids

    def update(self, labels: np.ndarray, confidences: np.ndarray) -> None:
        """Static devices ignore the classification result."""

    def write_back(self, controllers: Sequence) -> None:
        """Static controllers carry no mutable state."""

    def reset(self) -> None:
        """Static devices carry no mutable state."""


class _SpotBank:
    """SPOT and SPOT-with-confidence machines as parallel arrays.

    Plain SPOT is the ``confidence_threshold = -inf`` special case: with
    an always-satisfied gate no change is ever frozen and every change
    escalates, which is exactly
    :meth:`repro.core.controller.SpotController.update`.
    """

    def __init__(
        self,
        indices: Sequence[int],
        controllers: Sequence[SpotController],
        table: ConfigTable,
    ) -> None:
        self.indices = np.asarray(indices, dtype=np.intp)
        count = len(controllers)

        # Distinct state lists are interned into rows of one padded
        # (rows, max_states) table of config ids; a device's current
        # configuration is then table[row, state_index].
        row_ids: Dict[Tuple[SensorConfig, ...], int] = {}
        rows: List[Tuple[int, ...]] = []
        device_rows = np.empty(count, dtype=np.int64)
        for position, controller in enumerate(controllers):
            states = controller.states
            row = row_ids.get(states)
            if row is None:
                row = len(rows)
                row_ids[states] = row
                rows.append(tuple(table.intern(config) for config in states))
            device_rows[position] = row
        max_states = max(len(row) for row in rows)
        self._state_table = np.array(
            [row + (row[-1],) * (max_states - len(row)) for row in rows],
            dtype=np.int64,
        )
        self._rows = device_rows
        self.num_states = np.array(
            [len(controller.states) for controller in controllers], dtype=np.int64
        )
        self.stability_threshold = np.array(
            [controller.stability_threshold for controller in controllers],
            dtype=np.int64,
        )
        self.confidence_threshold = np.array(
            [
                controller.confidence_threshold
                if isinstance(controller, SpotWithConfidenceController)
                else -np.inf
                for controller in controllers
            ],
            dtype=float,
        )
        self.state_index = np.array(
            [controller.state_index for controller in controllers], dtype=np.int64
        )
        self.counter = np.array(
            [controller.counter for controller in controllers], dtype=np.int64
        )
        self.last_activity = np.array(
            [
                NO_ACTIVITY
                if controller.last_activity is None
                else int(controller.last_activity)
                for controller in controllers
            ],
            dtype=np.int64,
        )
        # Construction-time snapshot of the mutable machine state, so a
        # reusable runtime can rewind the bank without rebuilding it.
        self._initial = (
            self.state_index.copy(),
            self.counter.copy(),
            self.last_activity.copy(),
        )

    def reset(self) -> None:
        state_index, counter, last_activity = self._initial
        self.state_index = state_index.copy()
        self.counter = counter.copy()
        self.last_activity = last_activity.copy()

    def current_config_ids(self) -> np.ndarray:
        return self._state_table[self._rows, self.state_index]

    def update(self, labels: np.ndarray, confidences: np.ndarray) -> None:
        activity = labels[self.indices]
        confidence = confidences[self.indices]

        stable = (self.last_activity == NO_ACTIVITY) | (
            activity == self.last_activity
        )
        changed = ~stable
        # The confidence gate of Section IV-E: an untrusted change
        # freezes the machine entirely (state, counter and remembered
        # activity all stay put).  Plain SPOT has gate -inf, so nothing
        # ever freezes and every change escalates.
        frozen = changed & (confidence < self.confidence_threshold)
        escalate = changed & ~frozen

        # C1/C2/C4: a matching classification counts towards stability
        # unless the machine already sits at its lowest-power state.
        counting = stable & (self.state_index < self.num_states - 1)
        counter = np.where(counting, self.counter + 1, self.counter)
        step_down = counting & (counter >= self.stability_threshold)
        state_index = np.where(step_down, self.state_index + 1, self.state_index)
        counter = np.where(step_down, 0, counter)

        # C3: a trusted change snaps back to the high-power state.
        state_index = np.where(escalate, 0, state_index)
        counter = np.where(escalate, 0, counter)

        self.state_index = state_index
        self.counter = counter
        self.last_activity = np.where(frozen, self.last_activity, activity)

    def write_back(self, controllers: Sequence) -> None:
        for position, index in enumerate(self.indices):
            last = int(self.last_activity[position])
            controllers[index].restore_state(
                state_index=int(self.state_index[position]),
                counter=int(self.counter[position]),
                last_activity=None if last == NO_ACTIVITY else Activity(last),
            )


class _IntensityBank:
    """Intensity-switching devices: one boolean (low power?) per device.

    The switching rule is signal-driven: the engine computes every
    intensity device's batch derivative with one stacked pass
    (:func:`repro.baselines.intensity_based.stacked_intensities`) and
    stages it via :meth:`observe`; :meth:`update` then applies the
    staged decision, mirroring the per-object
    ``observe_window``/``update`` protocol.
    """

    def __init__(
        self,
        indices: Sequence[int],
        controllers: Sequence[IntensityController],
        table: ConfigTable,
    ) -> None:
        self.indices = np.asarray(indices, dtype=np.intp)
        self._high_ids = np.array(
            [table.intern(controller.high_config) for controller in controllers],
            dtype=np.int64,
        )
        self._low_ids = np.array(
            [table.intern(controller.low_config) for controller in controllers],
            dtype=np.int64,
        )
        self._threshold_high = np.array(
            [
                controller.thresholds.for_config(controller.high_config)
                for controller in controllers
            ],
            dtype=float,
        )
        self._threshold_low = np.array(
            [
                controller.thresholds.for_config(controller.low_config)
                for controller in controllers
            ],
            dtype=float,
        )
        self.is_low = np.array(
            [
                controller.current_config == controller.low_config
                and controller.low_config != controller.high_config
                for controller in controllers
            ],
            dtype=bool,
        )
        self._pending_low: Optional[np.ndarray] = None
        self._initial_is_low = self.is_low.copy()

    def reset(self) -> None:
        self.is_low = self._initial_is_low.copy()
        self._pending_low = None

    def current_config_ids(self) -> np.ndarray:
        return np.where(self.is_low, self._low_ids, self._high_ids)

    def observe(self, intensities: np.ndarray) -> None:
        """Stage the switching decision from this tick's intensities.

        ``intensities`` is fleet-length; only this bank's entries are
        read.  The threshold is the one calibrated for the configuration
        the batch was acquired under — the active configuration.
        """
        values = intensities[self.indices]
        threshold = np.where(self.is_low, self._threshold_low, self._threshold_high)
        self._pending_low = values < threshold

    def update(self, labels: np.ndarray, confidences: np.ndarray) -> None:
        if self._pending_low is not None:
            self.is_low = self._pending_low
            self._pending_low = None

    def write_back(self, controllers: Sequence) -> None:
        for position, index in enumerate(self.indices):
            controller = controllers[index]
            controller.restore_state(
                controller.low_config
                if self.is_low[position]
                else controller.high_config
            )


class ControllerBank:
    """Array-of-states bank over a fleet's adaptive controllers.

    Parameters
    ----------
    controllers:
        One controller per device, in device order.  Exact instances of
        the four supported families (:class:`StaticController`,
        :class:`SpotController`, :class:`SpotWithConfidenceController`,
        :class:`IntensityController`) are absorbed into vectorized
        sub-banks; anything else — including subclasses, whose
        overridden behaviour the bank cannot replicate — is reported in
        :attr:`loose_indices` for the engine to keep driving per object.
    """

    #: Controller families the bank can vectorise (exact types only).
    SUPPORTED_TYPES: Tuple[type, ...] = (
        StaticController,
        SpotController,
        SpotWithConfidenceController,
        IntensityController,
    )

    def __init__(self, controllers: Sequence) -> None:
        self._num_devices = len(controllers)
        self._table = ConfigTable()

        grouped: Dict[type, Tuple[List[int], List]] = {}
        loose: List[int] = []
        for index, controller in enumerate(controllers):
            kind = type(controller)
            if kind in (SpotController, SpotWithConfidenceController):
                kind = SpotController
            elif kind not in (StaticController, IntensityController):
                loose.append(index)
                continue
            indices, members = grouped.setdefault(kind, ([], []))
            indices.append(index)
            members.append(controller)

        self._banks: List = []
        self._intensity: Optional[_IntensityBank] = None
        if StaticController in grouped:
            self._banks.append(_StaticBank(*grouped[StaticController], self._table))
        if SpotController in grouped:
            self._banks.append(_SpotBank(*grouped[SpotController], self._table))
        if IntensityController in grouped:
            self._intensity = _IntensityBank(
                *grouped[IntensityController], self._table
            )
            self._banks.append(self._intensity)

        self.loose_indices: Tuple[int, ...] = tuple(loose)
        self.is_banked = np.ones(self._num_devices, dtype=bool)
        self.is_banked[list(loose)] = False
        self.is_intensity = np.zeros(self._num_devices, dtype=bool)
        if self._intensity is not None:
            self.is_intensity[self._intensity.indices] = True
        self._config_ids = np.empty(self._num_devices, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        """Number of devices the bank was built over (banked + loose)."""
        return self._num_devices

    @property
    def num_banked(self) -> int:
        """Number of devices advanced by vectorized sub-banks."""
        return self._num_devices - len(self.loose_indices)

    @property
    def has_intensity(self) -> bool:
        """Whether any banked device runs the intensity-switching policy."""
        return self._intensity is not None

    @property
    def table(self) -> ConfigTable:
        """The configuration interning table shared by all sub-banks."""
        return self._table

    def config_for_id(self, config_id: int) -> SensorConfig:
        """The configuration behind an interned id."""
        return self._table.config(int(config_id))

    # ------------------------------------------------------------------
    # Per-tick protocol
    # ------------------------------------------------------------------
    def current_config_ids(self, controllers: Sequence) -> np.ndarray:
        """Interned active-configuration id of every device.

        Banked devices are read straight from the state arrays; loose
        devices are asked per object (``controllers`` is only indexed at
        the loose positions).
        """
        ids = self._config_ids
        for bank in self._banks:
            ids[bank.indices] = bank.current_config_ids()
        for index in self.loose_indices:
            ids[index] = self._table.intern(controllers[index].current_config)
        return ids

    def observe_intensities(self, intensities: np.ndarray) -> None:
        """Stage this tick's stacked intensities for the intensity bank."""
        if self._intensity is not None:
            self._intensity.observe(intensities)

    def update(self, labels: np.ndarray, confidences: np.ndarray) -> None:
        """Advance every banked state machine with one vectorized pass.

        Parameters
        ----------
        labels:
            Predicted class index per device (fleet order).
        confidences:
            Softmax confidence per device (fleet order).
        """
        for bank in self._banks:
            bank.update(labels, confidences)

    def write_back(self, controllers: Sequence) -> None:
        """Copy the final array states into the controller objects.

        Called once at the end of a run so that code inspecting a
        controller afterwards (or reusing it for another run) sees the
        exact state a per-object run would have produced.
        """
        for bank in self._banks:
            bank.write_back(controllers)

    def reset(self) -> None:
        """Rewind every banked state machine to its construction state.

        Reusable fleet runtimes call this between runs instead of
        rebuilding the bank.  The snapshot restored here is the state
        the controllers held when the bank was built — the caller must
        reset any *loose* (unbanked) controllers itself, exactly as it
        must when constructing a bank from scratch.
        """
        for bank in self._banks:
            bank.reset()

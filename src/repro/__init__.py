"""AdaSense reproduction: adaptive low-power sensing and activity recognition.

This package reproduces the system described in

    Neseem, Nelson, Reda — "AdaSense: Adaptive Low-Power Sensing and
    Activity Recognition for Wearable Devices", DAC 2020.

It contains the paper's contribution (unified feature extraction, a
shared activity classifier, the SPOT adaptive sensing controllers and
the sensor-configuration design-space exploration) together with every
substrate the evaluation needs in a laptop-only environment: a synthetic
activity-signal generator, a behavioural accelerometer simulator, energy
and memory models, a from-scratch NumPy ML stack, comparison baselines
and a closed-loop simulator.

Quickstart
----------
>>> from repro import AdaSense, make_fig5_schedule
>>> system = AdaSense.train(windows_per_activity_per_config=20, seed=0)
>>> trace = system.simulate(make_fig5_schedule(), seed=1)
>>> round(trace.accuracy, 2) >= 0.5
True

Fleet simulation
----------------
The :mod:`repro.fleet` subsystem scales the closed loop from one device
to whole populations.  A :class:`~repro.fleet.DevicePopulation` samples
N heterogeneous devices (behaviour scenarios from the Fig. 7 settings
plus lifestyle archetypes, mixed controllers, per-device noise, power
and battery variation) deterministically from a master seed; the
:class:`~repro.fleet.FleetSimulator` advances every device in lock step,
classifying the whole fleet with **one batched pipeline call per
simulated second** — bit-identical to, and much faster than, running the
per-device loop N times; :class:`~repro.fleet.FleetTelemetry` turns the
traces into fleet-level distributions with JSON export.

>>> from repro import DevicePopulation, FleetSimulator, FleetTelemetry
>>> population = DevicePopulation.generate(4, duration_s=30.0, master_seed=1)
>>> result = FleetSimulator(system.pipeline).run(population)
>>> FleetTelemetry.from_result(result).num_devices
4

Every simulation path runs on one shared execution core
(:mod:`repro.exec`): stacked multi-device sensing, incremental
(chunk-cached) feature extraction and one batched classifier call per
tick, with :class:`~repro.fleet.ShardedFleetSimulator` splitting a
population across worker processes — all bit-identical to the
per-device sequential reference.

The same study is available from the command line::

    repro fleet --devices 500 --duration 600 --out fleet.json
    repro fleet --devices 500 --duration 600 --engine sharded

See ``examples/`` for complete, commented scenarios (including
``examples/fleet_report.py``) and ``benchmarks/`` for the scripts that
regenerate every table and figure of the paper.
"""

from repro.core.activities import Activity
from repro.core.adasense import AdaSense
from repro.core.config import (
    DEFAULT_SPOT_STATES,
    HIGH_POWER_CONFIG,
    LOW_POWER_CONFIG,
    TABLE1_CONFIGS,
    SensorConfig,
)
from repro.core.controller import (
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.core.dse import DesignSpaceExplorer
from repro.core.features import (
    FeatureExtractor,
    IncrementalFeatureExtractor,
    WindowGeometry,
)
from repro.core.pipeline import HarPipeline
from repro.exec.engine import DeviceRuntime, StepEngine
from repro.baselines.intensity_based import IntensityBasedApproach
from repro.baselines.static import AlwaysHighPowerBaseline
from repro.datasets.scenarios import (
    ActivitySetting,
    ScenarioArchetype,
    make_archetype_schedule,
    make_fig5_schedule,
    make_setting_schedule,
)
from repro.datasets.windows import WindowDataset, WindowDatasetBuilder
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.energy.mcu import McuModel
from repro.fleet import (
    DevicePopulation,
    DeviceProfile,
    FleetResult,
    FleetSimulator,
    FleetTelemetry,
    PopulationSpec,
    ShardedFleetRun,
    ShardedFleetSimulator,
)
from repro.sim.runtime import ClosedLoopSimulator
from repro.sim.trace import SimulationTrace

__version__ = "1.9.0"

__all__ = [
    "__version__",
    "Activity",
    "AdaSense",
    "SensorConfig",
    "TABLE1_CONFIGS",
    "DEFAULT_SPOT_STATES",
    "HIGH_POWER_CONFIG",
    "LOW_POWER_CONFIG",
    "SpotController",
    "SpotWithConfidenceController",
    "StaticController",
    "DesignSpaceExplorer",
    "FeatureExtractor",
    "HarPipeline",
    "IntensityBasedApproach",
    "AlwaysHighPowerBaseline",
    "ActivitySetting",
    "make_fig5_schedule",
    "make_setting_schedule",
    "WindowDataset",
    "WindowDatasetBuilder",
    "AccelerometerPowerModel",
    "McuModel",
    "ClosedLoopSimulator",
    "SimulationTrace",
    "ScenarioArchetype",
    "make_archetype_schedule",
    "DevicePopulation",
    "DeviceProfile",
    "DeviceRuntime",
    "FleetResult",
    "FleetSimulator",
    "FleetTelemetry",
    "IncrementalFeatureExtractor",
    "PopulationSpec",
    "ShardedFleetRun",
    "ShardedFleetSimulator",
    "StepEngine",
    "WindowGeometry",
]

"""Multinomial logistic regression (softmax regression).

A lighter-weight alternative to the MLP used in two places:

* as the classifier in ablation benchmarks that ask how much the hidden
  layer actually buys on the unified feature set, and
* as a fast stand-in classifier in tests that only need *a* probabilistic
  classifier rather than the best one.

The optimiser is plain full-batch gradient descent with an optional
learning-rate decay; the feature vectors involved are 15-dimensional, so
nothing fancier is required.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


class LogisticRegressionClassifier:
    """Softmax regression trained with full-batch gradient descent.

    Parameters
    ----------
    input_dim:
        Number of input features.
    num_classes:
        Number of output classes.
    learning_rate:
        Initial gradient-descent step size.
    max_iterations:
        Number of gradient steps.
    l2_penalty:
        L2 regularisation strength on the weight matrix.
    seed:
        Seed for the (small, random) weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        learning_rate: float = 0.5,
        max_iterations: int = 500,
        l2_penalty: float = 1e-4,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(input_dim, "input_dim")
        check_positive_int(num_classes, "num_classes")
        check_positive(learning_rate, "learning_rate")
        check_positive_int(max_iterations, "max_iterations")
        check_non_negative(l2_penalty, "l2_penalty")

        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        self.learning_rate = float(learning_rate)
        self.max_iterations = int(max_iterations)
        self.l2_penalty = float(l2_penalty)

        rng = as_rng(seed)
        self.weights = rng.normal(0.0, 0.01, size=(self.input_dim, self.num_classes))
        self.bias = np.zeros(self.num_classes)
        self._is_fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._is_fitted

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters."""
        return int(self.weights.size + self.bias.size)

    def _probabilities(self, features: np.ndarray) -> np.ndarray:
        logits = features @ self.weights + self.bias
        shifted = logits - logits.max(axis=1, keepdims=True)
        exponentials = np.exp(shifted)
        return exponentials / exponentials.sum(axis=1, keepdims=True)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionClassifier":
        """Fit the model on integer-labelled training data."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2 or features.shape[1] != self.input_dim:
            raise ValueError(
                f"features must have shape (n, {self.input_dim}), got {features.shape}"
            )
        if labels.shape != (features.shape[0],):
            raise ValueError("labels must be 1-D and match features in length")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError(f"labels must lie in [0, {self.num_classes})")

        one_hot = np.zeros((labels.shape[0], self.num_classes))
        one_hot[np.arange(labels.shape[0]), labels] = 1.0
        n_samples = features.shape[0]

        for iteration in range(self.max_iterations):
            probabilities = self._probabilities(features)
            error = (probabilities - one_hot) / n_samples
            weight_grad = features.T @ error + self.l2_penalty * self.weights
            bias_grad = error.sum(axis=0)
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            self.weights -= step * weight_grad
            self.bias -= step * bias_grad

        self._is_fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for each row of ``features``."""
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        if features.shape[1] != self.input_dim:
            raise ValueError(
                f"features must have {self.input_dim} columns, got {features.shape[1]}"
            )
        probabilities = self._probabilities(features)
        return probabilities[0] if single else probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class index for each row of ``features``."""
        probabilities = self.predict_proba(features)
        if probabilities.ndim == 1:
            return int(np.argmax(probabilities))
        return probabilities.argmax(axis=1)

    def predict_with_confidence(self, features: np.ndarray) -> Tuple[int, float]:
        """Predict a single sample, returning ``(class_index, confidence)``."""
        probabilities = np.atleast_2d(self.predict_proba(features))
        if probabilities.shape[0] != 1:
            raise ValueError("predict_with_confidence expects a single sample")
        index = int(np.argmax(probabilities[0]))
        return index, float(probabilities[0, index])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on ``(features, labels)``."""
        labels = np.asarray(labels, dtype=int)
        predictions = np.atleast_1d(self.predict(features))
        return float(np.mean(predictions == labels))

    def to_dict(self) -> dict:
        """Serialisable description of the model."""
        return {
            "kind": "logistic",
            "input_dim": self.input_dim,
            "num_classes": self.num_classes,
            "weights": self.weights.tolist(),
            "bias": self.bias.tolist(),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "LogisticRegressionClassifier":
        """Rebuild a classifier from :meth:`to_dict` output."""
        model = cls(input_dim=state["input_dim"], num_classes=state["num_classes"])
        model.weights = np.asarray(state["weights"], dtype=float)
        model.bias = np.asarray(state["bias"], dtype=float)
        model._is_fitted = True
        return model

"""A small multi-layer perceptron classifier implemented with NumPy.

This is the reproduction of the paper's activity classifier: "one hidden
layer with RELU activation function and an output layer with 6 neurons
and a softmax" (Section III-C), trained on feature vectors from all the
sensor configurations the adaptive controller may select.

The implementation is intentionally compact but complete: dense layers
with He initialisation, softmax cross-entropy loss with L2
regularisation, Adam optimisation over mini-batches, an optional
validation split with early stopping, and serialisation hooks used by
:mod:`repro.ml.persistence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


@dataclass
class TrainingHistory:
    """Per-epoch statistics recorded during :meth:`MLPClassifier.fit`."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        """Number of completed training epochs."""
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        """Best validation accuracy seen (NaN when no validation split)."""
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


def _softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax computed **in place** on ``logits``.

    The caller always passes a freshly materialised logit matrix, so
    reusing it as the output buffer saves three temporaries per call
    (the shifted logits, the exponentials and the quotient) — on the
    fleet hot path that is three fewer ``(devices, classes)``
    allocations per simulated second.  The operation sequence (shift by
    the row maximum, exponentiate, normalise) is unchanged, so results
    are bit-identical to the allocating spelling.
    """
    logits -= logits.max(axis=1, keepdims=True)
    np.exp(logits, out=logits)
    logits /= logits.sum(axis=1, keepdims=True)
    return logits


class MLPClassifier:
    """Dense neural network with ReLU hidden layers and a softmax output.

    Parameters
    ----------
    input_dim:
        Number of input features.
    num_classes:
        Number of output classes (6 for the AdaSense activity set).
    hidden_units:
        Sizes of the hidden layers; the paper uses a single hidden
        layer, so the default is one layer of 32 units.
    learning_rate:
        Adam step size.
    batch_size:
        Mini-batch size used during training.
    max_epochs:
        Upper bound on training epochs.
    l2_penalty:
        L2 regularisation strength applied to the weight matrices.
    label_smoothing:
        Amount of probability mass moved from the true class to the
        others during training.  A small value keeps the softmax output
        calibrated instead of saturating at 1.0, which matters because
        SPOT-with-confidence thresholds that probability.
    validation_fraction:
        Fraction of the training data held out for early stopping; set
        to 0 to disable the validation split.
    early_stopping_patience:
        Number of epochs without validation-loss improvement tolerated
        before training stops (ignored when there is no validation
        split).
    seed:
        Seed controlling weight initialisation, the validation split and
        mini-batch shuffling.
    """

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_units: Sequence[int] = (32,),
        learning_rate: float = 5e-3,
        batch_size: int = 64,
        max_epochs: int = 200,
        l2_penalty: float = 1e-4,
        label_smoothing: float = 0.1,
        validation_fraction: float = 0.15,
        early_stopping_patience: int = 25,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(input_dim, "input_dim")
        check_positive_int(num_classes, "num_classes")
        if not hidden_units:
            raise ValueError("hidden_units must contain at least one layer size")
        for size in hidden_units:
            check_positive_int(size, "hidden layer size")
        check_positive(learning_rate, "learning_rate")
        check_positive_int(batch_size, "batch_size")
        check_positive_int(max_epochs, "max_epochs")
        check_non_negative(l2_penalty, "l2_penalty")
        check_probability(label_smoothing, "label_smoothing")
        if label_smoothing >= 1.0:
            raise ValueError("label_smoothing must be strictly below 1.0")
        if validation_fraction != 0.0:
            check_fraction(validation_fraction, "validation_fraction")
        check_positive_int(early_stopping_patience, "early_stopping_patience")

        self.input_dim = int(input_dim)
        self.num_classes = int(num_classes)
        self.hidden_units = tuple(int(size) for size in hidden_units)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.max_epochs = int(max_epochs)
        self.l2_penalty = float(l2_penalty)
        self.label_smoothing = float(label_smoothing)
        self.validation_fraction = float(validation_fraction)
        self.early_stopping_patience = int(early_stopping_patience)

        self._rng = as_rng(seed)
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._initialize_parameters()
        self.history: Optional[TrainingHistory] = None
        self._is_fitted = False

    # ------------------------------------------------------------------
    # Parameter handling
    # ------------------------------------------------------------------
    def _initialize_parameters(self) -> None:
        layer_sizes = (self.input_dim, *self.hidden_units, self.num_classes)
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(self._rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._is_fitted

    @property
    def num_parameters(self) -> int:
        """Total number of trainable parameters (weights plus biases)."""
        return int(
            sum(weight.size for weight in self._weights)
            + sum(bias.size for bias in self._biases)
        )

    def get_parameters(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters keyed ``W0, b0, W1, b1, ...``."""
        parameters: Dict[str, np.ndarray] = {}
        for index, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            parameters[f"W{index}"] = weight.copy()
            parameters[f"b{index}"] = bias.copy()
        return parameters

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_parameters`."""
        num_layers = len(self._weights)
        for index in range(num_layers):
            weight = np.asarray(parameters[f"W{index}"], dtype=float)
            bias = np.asarray(parameters[f"b{index}"], dtype=float)
            if weight.shape != self._weights[index].shape:
                raise ValueError(
                    f"W{index} has shape {weight.shape}, expected "
                    f"{self._weights[index].shape}"
                )
            if bias.shape != self._biases[index].shape:
                raise ValueError(
                    f"b{index} has shape {bias.shape}, expected "
                    f"{self._biases[index].shape}"
                )
            self._weights[index] = weight
            self._biases[index] = bias
        self._is_fitted = True

    # ------------------------------------------------------------------
    # Forward / backward passes
    # ------------------------------------------------------------------
    def _forward(self, features: np.ndarray) -> Tuple[List[np.ndarray], np.ndarray]:
        """Return hidden activations (post-ReLU) and output probabilities.

        Each layer's pre-activation matrix is the only allocation per
        layer: the bias add and the ReLU run in place on it
        (``np.maximum(..., out=...)``), and the softmax reuses the logit
        buffer.  All values are bit-identical to the allocating
        spelling; only allocation churn changes.
        """
        activations: List[np.ndarray] = [features]
        current = features
        for index in range(len(self._weights) - 1):
            current = current @ self._weights[index]
            current += self._biases[index]
            np.maximum(current, 0.0, out=current)
            activations.append(current)
        logits = current @ self._weights[-1]
        logits += self._biases[-1]
        return activations, _softmax(logits)

    def _loss(self, probabilities: np.ndarray, one_hot_labels: np.ndarray) -> float:
        eps = 1e-12
        data_loss = -np.mean(
            np.sum(one_hot_labels * np.log(probabilities + eps), axis=1)
        )
        reg_loss = 0.5 * self.l2_penalty * sum(
            float(np.sum(weight**2)) for weight in self._weights
        )
        return float(data_loss + reg_loss)

    def _backward(
        self,
        activations: List[np.ndarray],
        probabilities: np.ndarray,
        one_hot_labels: np.ndarray,
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        batch_size = probabilities.shape[0]
        weight_grads: List[np.ndarray] = [np.empty(0)] * len(self._weights)
        bias_grads: List[np.ndarray] = [np.empty(0)] * len(self._biases)

        delta = (probabilities - one_hot_labels) / batch_size
        for index in range(len(self._weights) - 1, -1, -1):
            weight_grads[index] = (
                activations[index].T @ delta + self.l2_penalty * self._weights[index]
            )
            bias_grads[index] = delta.sum(axis=0)
            if index > 0:
                delta = delta @ self._weights[index].T
                delta = delta * (activations[index] > 0.0)
        return weight_grads, bias_grads

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> TrainingHistory:
        """Train the network with Adam and optional early stopping.

        Parameters
        ----------
        features:
            Array of shape ``(n_samples, input_dim)``.
        labels:
            Integer class labels in ``[0, num_classes)``.

        Returns
        -------
        TrainingHistory
            Loss/accuracy per epoch; also stored on :attr:`history`.
        """
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2 or features.shape[1] != self.input_dim:
            raise ValueError(
                f"features must have shape (n, {self.input_dim}), got {features.shape}"
            )
        if labels.shape != (features.shape[0],):
            raise ValueError("labels must be 1-D and match features in length")
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError(
                f"labels must lie in [0, {self.num_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )

        # Optional validation split for early stopping.
        if self.validation_fraction > 0.0 and features.shape[0] >= 10:
            order = self._rng.permutation(features.shape[0])
            n_val = max(1, int(round(self.validation_fraction * features.shape[0])))
            val_idx, train_idx = order[:n_val], order[n_val:]
            train_x, train_y = features[train_idx], labels[train_idx]
            val_x, val_y = features[val_idx], labels[val_idx]
        else:
            train_x, train_y = features, labels
            val_x = val_y = None

        train_one_hot = np.zeros((train_y.shape[0], self.num_classes))
        train_one_hot[np.arange(train_y.shape[0]), train_y] = 1.0
        if self.label_smoothing > 0.0:
            train_one_hot = (
                (1.0 - self.label_smoothing) * train_one_hot
                + self.label_smoothing / self.num_classes
            )

        history = TrainingHistory()
        adam_m = [np.zeros_like(w) for w in self._weights] + [
            np.zeros_like(b) for b in self._biases
        ]
        adam_v = [np.zeros_like(w) for w in self._weights] + [
            np.zeros_like(b) for b in self._biases
        ]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        best_val_loss = np.inf
        best_parameters = self.get_parameters()
        epochs_without_improvement = 0

        for _ in range(self.max_epochs):
            order = self._rng.permutation(train_x.shape[0])
            for start in range(0, train_x.shape[0], self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                activations, probabilities = self._forward(train_x[batch_idx])
                weight_grads, bias_grads = self._backward(
                    activations, probabilities, train_one_hot[batch_idx]
                )
                gradients = weight_grads + bias_grads
                parameters = self._weights + self._biases
                step += 1
                for param, grad, m, v in zip(parameters, gradients, adam_m, adam_v):
                    m *= beta1
                    m += (1.0 - beta1) * grad
                    v *= beta2
                    v += (1.0 - beta2) * grad**2
                    m_hat = m / (1.0 - beta1**step)
                    v_hat = v / (1.0 - beta2**step)
                    param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

            _, train_probabilities = self._forward(train_x)
            history.train_loss.append(self._loss(train_probabilities, train_one_hot))
            history.train_accuracy.append(
                float(np.mean(train_probabilities.argmax(axis=1) == train_y))
            )

            if val_x is not None:
                _, val_probabilities = self._forward(val_x)
                val_one_hot = np.zeros((val_y.shape[0], self.num_classes))
                val_one_hot[np.arange(val_y.shape[0]), val_y] = 1.0
                val_loss = self._loss(val_probabilities, val_one_hot)
                history.val_loss.append(val_loss)
                history.val_accuracy.append(
                    float(np.mean(val_probabilities.argmax(axis=1) == val_y))
                )
                if val_loss < best_val_loss - 1e-6:
                    best_val_loss = val_loss
                    best_parameters = self.get_parameters()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= self.early_stopping_patience:
                        break

        if val_x is not None:
            self.set_parameters(best_parameters)
        self.history = history
        self._is_fitted = True
        return history

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for each row of ``features``."""
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        if features.shape[1] != self.input_dim:
            raise ValueError(
                f"features must have {self.input_dim} columns, got {features.shape[1]}"
            )
        _, probabilities = self._forward(features)
        return probabilities[0] if single else probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most likely class index for each row of ``features``."""
        probabilities = self.predict_proba(features)
        if probabilities.ndim == 1:
            return int(np.argmax(probabilities))
        return probabilities.argmax(axis=1)

    def predict_with_confidence(self, features: np.ndarray) -> Tuple[int, float]:
        """Predict a single sample, returning ``(class_index, confidence)``.

        The confidence is the softmax probability of the chosen class,
        which is exactly the quantity SPOT-with-confidence thresholds.
        """
        probabilities = np.atleast_2d(self.predict_proba(features))
        if probabilities.shape[0] != 1:
            raise ValueError("predict_with_confidence expects a single sample")
        index = int(np.argmax(probabilities[0]))
        return index, float(probabilities[0, index])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the classifier on ``(features, labels)``."""
        labels = np.asarray(labels, dtype=int)
        predictions = np.atleast_1d(self.predict(features))
        return float(np.mean(predictions == labels))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialisable description of the architecture and parameters."""
        return {
            "kind": "mlp",
            "input_dim": self.input_dim,
            "num_classes": self.num_classes,
            "hidden_units": list(self.hidden_units),
            "parameters": {
                key: value.tolist() for key, value in self.get_parameters().items()
            },
        }

    @classmethod
    def from_dict(cls, state: dict) -> "MLPClassifier":
        """Rebuild a classifier from :meth:`to_dict` output."""
        model = cls(
            input_dim=state["input_dim"],
            num_classes=state["num_classes"],
            hidden_units=tuple(state["hidden_units"]),
        )
        parameters = {
            key: np.asarray(value, dtype=float)
            for key, value in state["parameters"].items()
        }
        model.set_parameters(parameters)
        return model

"""Feature scaling, dataset splitting and label utilities.

These are the standard preprocessing pieces the HAR pipeline needs.
They intentionally mirror the scikit-learn API surface (``fit`` /
``transform`` / ``fit_transform``) so that readers familiar with that
library can follow the examples, but the implementations are small,
NumPy-only and fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_fraction, check_positive_int


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Features with zero variance are left unscaled (divided by one) so
    that constant features do not produce NaNs.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.mean_ is not None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Learn per-feature mean and standard deviation.

        Parameters
        ----------
        features:
            Array of shape ``(n_samples, n_features)``.
        """
        features = _as_feature_matrix(features)
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        if not self.is_fitted:
            raise RuntimeError("StandardScaler must be fitted before transform")
        features = _as_feature_matrix(features)
        if features.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {features.shape[1]}"
            )
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` then return the transformed array."""
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        if not self.is_fitted:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        features = _as_feature_matrix(features)
        return features * self.scale_ + self.mean_

    def to_dict(self) -> dict:
        """Serialisable state (used by model persistence)."""
        if not self.is_fitted:
            raise RuntimeError("cannot serialise an unfitted StandardScaler")
        return {"mean": self.mean_.tolist(), "scale": self.scale_.tolist()}

    @classmethod
    def from_dict(cls, state: dict) -> "StandardScaler":
        """Rebuild a fitted scaler from :meth:`to_dict` output."""
        scaler = cls()
        scaler.mean_ = np.asarray(state["mean"], dtype=float)
        scaler.scale_ = np.asarray(state["scale"], dtype=float)
        return scaler


def _as_feature_matrix(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features[None, :]
    if features.ndim != 2:
        raise ValueError(
            f"features must be a 2-D array of shape (n_samples, n_features), "
            f"got shape {features.shape}"
        )
    return features


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer class labels as one-hot rows.

    Parameters
    ----------
    labels:
        Integer labels in ``[0, num_classes)``.
    num_classes:
        Number of columns of the output.
    """
    check_positive_int(num_classes, "num_classes")
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=float)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a dataset into train and test partitions.

    Parameters
    ----------
    features, labels:
        Dataset arrays with matching first dimension.
    test_fraction:
        Fraction of samples assigned to the test partition (strictly
        between 0 and 1).
    seed:
        Seed controlling the shuffle.
    stratify:
        When true (the default) the split preserves each class's
        proportion, which keeps small synthetic datasets balanced.

    Returns
    -------
    tuple
        ``(train_features, test_features, train_labels, test_labels)``.
    """
    check_fraction(test_fraction, "test_fraction")
    features = _as_feature_matrix(features)
    labels = np.asarray(labels, dtype=int)
    if labels.shape[0] != features.shape[0]:
        raise ValueError(
            f"features and labels disagree on sample count: "
            f"{features.shape[0]} vs {labels.shape[0]}"
        )
    rng = as_rng(seed)
    n_samples = features.shape[0]
    test_mask = np.zeros(n_samples, dtype=bool)

    if stratify:
        for label in np.unique(labels):
            indices = np.flatnonzero(labels == label)
            rng.shuffle(indices)
            n_test = int(round(len(indices) * test_fraction))
            n_test = min(max(n_test, 1 if len(indices) > 1 else 0), len(indices) - 1)
            test_mask[indices[:n_test]] = True
    else:
        indices = rng.permutation(n_samples)
        n_test = int(round(n_samples * test_fraction))
        n_test = min(max(n_test, 1), n_samples - 1)
        test_mask[indices[:n_test]] = True

    train_mask = ~test_mask
    return (
        features[train_mask],
        features[test_mask],
        labels[train_mask],
        labels[test_mask],
    )


def shuffle_in_unison(
    features: np.ndarray, labels: np.ndarray, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffle features and labels with the same permutation."""
    features = _as_feature_matrix(features)
    labels = np.asarray(labels)
    if labels.shape[0] != features.shape[0]:
        raise ValueError("features and labels disagree on sample count")
    rng = as_rng(seed)
    order = rng.permutation(features.shape[0])
    return features[order], labels[order]

"""k-nearest-neighbour classifier.

Not part of the AdaSense system itself; it serves as an independent
sanity check in tests (a non-parametric method should also separate the
synthetic activities on the unified feature set) and as an extra point
of comparison in the classifier ablation benchmark.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive_int


class KNeighborsClassifier:
    """Majority-vote k-NN with Euclidean distances.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours consulted per query.
    num_classes:
        Number of classes; needed so that probability vectors have a
        fixed width even when a class is absent from the neighbourhood.
    """

    def __init__(self, n_neighbors: int = 5, num_classes: int = 6) -> None:
        check_positive_int(n_neighbors, "n_neighbors")
        check_positive_int(num_classes, "num_classes")
        self.n_neighbors = int(n_neighbors)
        self.num_classes = int(num_classes)
        self._train_features: np.ndarray | None = None
        self._train_labels: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether training data has been stored."""
        return self._train_features is not None

    @property
    def num_parameters(self) -> int:
        """Stored values (k-NN "parameters" are the training set itself)."""
        if self._train_features is None:
            return 0
        return int(self._train_features.size + self._train_labels.size)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNeighborsClassifier":
        """Store the training set."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if labels.shape != (features.shape[0],):
            raise ValueError("labels must be 1-D and match features in length")
        if features.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} training samples, "
                f"got {features.shape[0]}"
            )
        self._train_features = features
        self._train_labels = labels
        return self

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("KNeighborsClassifier must be fitted before prediction")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Neighbourhood class frequencies for each query row."""
        self._require_fitted()
        features = np.asarray(features, dtype=float)
        single = features.ndim == 1
        if single:
            features = features[None, :]
        distances = np.linalg.norm(
            features[:, None, :] - self._train_features[None, :, :], axis=2
        )
        neighbor_indices = np.argsort(distances, axis=1)[:, : self.n_neighbors]
        probabilities = np.zeros((features.shape[0], self.num_classes))
        for row, indices in enumerate(neighbor_indices):
            votes = self._train_labels[indices]
            counts = np.bincount(votes, minlength=self.num_classes)
            probabilities[row] = counts / counts.sum()
        return probabilities[0] if single else probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority-vote class index for each query row."""
        probabilities = self.predict_proba(features)
        if probabilities.ndim == 1:
            return int(np.argmax(probabilities))
        return probabilities.argmax(axis=1)

    def predict_with_confidence(self, features: np.ndarray) -> Tuple[int, float]:
        """Predict one sample, returning ``(class_index, vote_fraction)``."""
        probabilities = np.atleast_2d(self.predict_proba(features))
        if probabilities.shape[0] != 1:
            raise ValueError("predict_with_confidence expects a single sample")
        index = int(np.argmax(probabilities[0]))
        return index, float(probabilities[0, index])

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on ``(features, labels)``."""
        labels = np.asarray(labels, dtype=int)
        predictions = np.atleast_1d(self.predict(features))
        return float(np.mean(predictions == labels))

"""Classification metrics used throughout the evaluation.

The paper reports recognition accuracy; the reproduction additionally
exposes confusion matrices and per-class precision/recall/F1 because
they are useful when diagnosing why a particular sensor configuration
loses accuracy (e.g. stair ascent and descent collapsing into walking at
very low sampling rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive_int


def _validate_label_arrays(
    true_labels: np.ndarray, predicted_labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    true_labels = np.asarray(true_labels, dtype=int)
    predicted_labels = np.asarray(predicted_labels, dtype=int)
    if true_labels.ndim != 1 or predicted_labels.ndim != 1:
        raise ValueError("labels must be 1-D arrays")
    if true_labels.shape != predicted_labels.shape:
        raise ValueError(
            f"label arrays must have the same length, got {true_labels.shape} "
            f"and {predicted_labels.shape}"
        )
    if true_labels.size == 0:
        raise ValueError("label arrays must not be empty")
    return true_labels, predicted_labels


def accuracy_score(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Fraction of predictions matching the ground truth."""
    true_labels, predicted_labels = _validate_label_arrays(true_labels, predicted_labels)
    return float(np.mean(true_labels == predicted_labels))


def confusion_matrix(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Confusion matrix with true classes on rows and predictions on columns."""
    true_labels, predicted_labels = _validate_label_arrays(true_labels, predicted_labels)
    if num_classes is None:
        num_classes = int(max(true_labels.max(), predicted_labels.max())) + 1
    check_positive_int(num_classes, "num_classes")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for true, predicted in zip(true_labels, predicted_labels):
        if true >= num_classes or predicted >= num_classes:
            raise ValueError(
                f"label {max(true, predicted)} out of range for {num_classes} classes"
            )
        matrix[true, predicted] += 1
    return matrix


@dataclass(frozen=True)
class ClassReport:
    """Precision, recall, F1 and support for one class."""

    precision: float
    recall: float
    f1: float
    support: int


def per_class_report(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    num_classes: Optional[int] = None,
) -> Dict[int, ClassReport]:
    """Per-class precision/recall/F1 derived from the confusion matrix."""
    matrix = confusion_matrix(true_labels, predicted_labels, num_classes)
    reports: Dict[int, ClassReport] = {}
    for index in range(matrix.shape[0]):
        true_positive = float(matrix[index, index])
        predicted_positive = float(matrix[:, index].sum())
        actual_positive = float(matrix[index, :].sum())
        precision = true_positive / predicted_positive if predicted_positive else 0.0
        recall = true_positive / actual_positive if actual_positive else 0.0
        denominator = precision + recall
        f1 = 2.0 * precision * recall / denominator if denominator else 0.0
        reports[index] = ClassReport(
            precision=precision,
            recall=recall,
            f1=f1,
            support=int(actual_positive),
        )
    return reports


def macro_f1(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    num_classes: Optional[int] = None,
) -> float:
    """Unweighted mean of per-class F1 scores."""
    reports = per_class_report(true_labels, predicted_labels, num_classes)
    return float(np.mean([report.f1 for report in reports.values()]))


def classification_report(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    class_names: Optional[Sequence[str]] = None,
    num_classes: Optional[int] = None,
) -> str:
    """Human-readable table of per-class metrics plus overall accuracy."""
    reports = per_class_report(true_labels, predicted_labels, num_classes)
    accuracy = accuracy_score(true_labels, predicted_labels)
    lines = [f"{'class':>16}  {'precision':>9}  {'recall':>9}  {'f1':>9}  {'support':>7}"]
    for index, report in sorted(reports.items()):
        if class_names is not None and index < len(class_names):
            name = class_names[index]
        else:
            name = str(index)
        lines.append(
            f"{name:>16}  {report.precision:9.3f}  {report.recall:9.3f}  "
            f"{report.f1:9.3f}  {report.support:7d}"
        )
    lines.append("")
    lines.append(f"overall accuracy: {accuracy:.3f}")
    return "\n".join(lines)

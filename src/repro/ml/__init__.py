"""From-scratch machine-learning substrate.

The paper's classifier is a small neural network: one hidden layer with
ReLU activations and a six-way softmax output.  Because this
reproduction runs in an offline environment without scikit-learn or a
deep-learning framework, the subpackage implements everything the HAR
pipeline needs on top of NumPy:

* :mod:`repro.ml.mlp` — the multi-layer perceptron (dense layers, ReLU,
  softmax cross-entropy, Adam, mini-batch training, early stopping);
* :mod:`repro.ml.linear` — multinomial logistic regression, used as a
  lighter-weight alternative classifier and in ablations;
* :mod:`repro.ml.neighbors` — a k-nearest-neighbour classifier used as a
  sanity-check baseline in tests;
* :mod:`repro.ml.preprocessing` — feature scaling, train/test splitting
  and label utilities;
* :mod:`repro.ml.metrics` — accuracy, confusion matrices and per-class
  precision/recall/F1;
* :mod:`repro.ml.persistence` — saving/loading trained models,
  computing their memory footprint, and atomic checkpoint files for
  the fault-tolerant execution layer.
"""

from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.metrics import accuracy_score, classification_report, confusion_matrix
from repro.ml.mlp import MLPClassifier, TrainingHistory
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import StandardScaler, one_hot, train_test_split
from repro.ml.persistence import (
    load_checkpoint,
    load_model,
    model_memory_bytes,
    save_checkpoint,
    save_model,
)

__all__ = [
    "MLPClassifier",
    "TrainingHistory",
    "LogisticRegressionClassifier",
    "KNeighborsClassifier",
    "StandardScaler",
    "one_hot",
    "train_test_split",
    "accuracy_score",
    "confusion_matrix",
    "classification_report",
    "save_model",
    "load_model",
    "save_checkpoint",
    "load_checkpoint",
    "model_memory_bytes",
]

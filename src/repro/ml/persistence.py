"""Saving, loading and sizing trained models.

The memory-requirements comparison in Section V-D hinges on how many
bytes of classifier weights the device must store, so the persistence
layer exposes :func:`model_memory_bytes` alongside plain JSON-based
save/load helpers.  JSON (rather than ``numpy.savez``) keeps the stored
artefacts human-inspectable and avoids pickle entirely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import StandardScaler

#: Classifier types the persistence layer understands.
SupportedModel = Union[MLPClassifier, LogisticRegressionClassifier]

_MODEL_KINDS = {
    "mlp": MLPClassifier,
    "logistic": LogisticRegressionClassifier,
}


def save_model(
    path: Union[str, Path],
    model: SupportedModel,
    scaler: Optional[StandardScaler] = None,
    metadata: Optional[dict] = None,
) -> Path:
    """Serialise a trained model (and optionally its scaler) to JSON.

    Parameters
    ----------
    path:
        Destination file; parent directories are created as needed.
    model:
        A fitted :class:`MLPClassifier` or
        :class:`LogisticRegressionClassifier`.
    scaler:
        Optional fitted :class:`StandardScaler` stored alongside the
        model so inference pipelines can be reconstructed exactly.
    metadata:
        Arbitrary JSON-serialisable metadata (training configurations,
        dataset seeds, accuracy figures, ...).

    Returns
    -------
    pathlib.Path
        The path written.
    """
    path = Path(path)
    payload = {
        "model": model.to_dict(),
        "scaler": scaler.to_dict() if scaler is not None else None,
        "metadata": metadata or {},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def load_model(
    path: Union[str, Path],
) -> tuple[SupportedModel, Optional[StandardScaler], dict]:
    """Load a model saved with :func:`save_model`.

    Returns
    -------
    tuple
        ``(model, scaler_or_None, metadata)``.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    model_state = payload["model"]
    kind = model_state.get("kind")
    if kind not in _MODEL_KINDS:
        raise ValueError(f"unknown model kind {kind!r} in {path}")
    model = _MODEL_KINDS[kind].from_dict(model_state)
    scaler = (
        StandardScaler.from_dict(payload["scaler"])
        if payload.get("scaler") is not None
        else None
    )
    return model, scaler, payload.get("metadata", {})


def model_memory_bytes(model: SupportedModel, bytes_per_weight: int = 4) -> int:
    """Storage footprint of a classifier's parameters in bytes.

    Parameters
    ----------
    model:
        Any classifier exposing ``num_parameters``.
    bytes_per_weight:
        Bytes per stored parameter (4 for float32 weights, 1 for an
        8-bit quantised deployment).
    """
    if bytes_per_weight <= 0:
        raise ValueError(f"bytes_per_weight must be positive, got {bytes_per_weight}")
    return int(model.num_parameters * bytes_per_weight)

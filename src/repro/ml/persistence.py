"""Saving, loading and sizing trained models and execution checkpoints.

The memory-requirements comparison in Section V-D hinges on how many
bytes of classifier weights the device must store, so the persistence
layer exposes :func:`model_memory_bytes` alongside plain JSON-based
save/load helpers.  JSON (rather than ``numpy.savez``) keeps the stored
artefacts human-inspectable and avoids pickle entirely for *model*
artefacts, which may travel between machines and trust domains.

Execution checkpoints (:func:`save_checkpoint` / :func:`load_checkpoint`)
are different: they snapshot live simulation state — numpy generators,
ring buffers, controller banks — mid-run so a killed shard can resume
bit-identically.  That state is written and read by the same trusted
process tree on the same host within one campaign, so pickle is the
appropriate format there: it round-trips arbitrary object graphs
(including shared references, which the engine state relies on)
exactly.  Never load a checkpoint from an untrusted source.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import Any, Optional, Union

from repro.ml.linear import LogisticRegressionClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import StandardScaler

#: Classifier types the persistence layer understands.
SupportedModel = Union[MLPClassifier, LogisticRegressionClassifier]

_MODEL_KINDS = {
    "mlp": MLPClassifier,
    "logistic": LogisticRegressionClassifier,
}


def save_model(
    path: Union[str, Path],
    model: SupportedModel,
    scaler: Optional[StandardScaler] = None,
    metadata: Optional[dict] = None,
) -> Path:
    """Serialise a trained model (and optionally its scaler) to JSON.

    Parameters
    ----------
    path:
        Destination file; parent directories are created as needed.
    model:
        A fitted :class:`MLPClassifier` or
        :class:`LogisticRegressionClassifier`.
    scaler:
        Optional fitted :class:`StandardScaler` stored alongside the
        model so inference pipelines can be reconstructed exactly.
    metadata:
        Arbitrary JSON-serialisable metadata (training configurations,
        dataset seeds, accuracy figures, ...).

    Returns
    -------
    pathlib.Path
        The path written.
    """
    path = Path(path)
    payload = {
        "model": model.to_dict(),
        "scaler": scaler.to_dict() if scaler is not None else None,
        "metadata": metadata or {},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def load_model(
    path: Union[str, Path],
) -> tuple[SupportedModel, Optional[StandardScaler], dict]:
    """Load a model saved with :func:`save_model`.

    Returns
    -------
    tuple
        ``(model, scaler_or_None, metadata)``.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    model_state = payload["model"]
    kind = model_state.get("kind")
    if kind not in _MODEL_KINDS:
        raise ValueError(f"unknown model kind {kind!r} in {path}")
    model = _MODEL_KINDS[kind].from_dict(model_state)
    scaler = (
        StandardScaler.from_dict(payload["scaler"])
        if payload.get("scaler") is not None
        else None
    )
    return model, scaler, payload.get("metadata", {})


#: Format marker stored in every checkpoint so stale or foreign files
#: fail loudly instead of resuming from garbage.
CHECKPOINT_MAGIC = "repro-checkpoint"

#: Bumped whenever the checkpoint payload layout changes incompatibly.
CHECKPOINT_VERSION = 1


def save_checkpoint(path: Union[str, Path], payload: Any) -> int:
    """Atomically serialise one execution checkpoint to ``path``.

    The payload is pickled in a **single** dump so shared references
    inside it (e.g. the engine state's device arrays aliasing runtime
    attributes) survive the round trip — restoring from two separate
    dumps would silently sever that aliasing and break bit-identical
    resume.  The file is written to a sibling temp path and moved into
    place with :func:`os.replace`, so a crash mid-write never leaves a
    truncated checkpoint under the final name.

    Returns
    -------
    int
        Bytes written (the checkpoint file size).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps(
        {
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "payload": payload,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return len(blob)


def load_checkpoint(path: Union[str, Path]) -> Any:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Only load files produced by a trusted local run — this unpickles.

    Raises
    ------
    ValueError
        If the file is not a repro checkpoint or was written by an
        incompatible version of the format.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        record = pickle.load(handle)
    if (
        not isinstance(record, dict)
        or record.get("magic") != CHECKPOINT_MAGIC
    ):
        raise ValueError(f"{path} is not a repro checkpoint")
    version = record.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path} uses checkpoint format version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return record["payload"]


def model_memory_bytes(model: SupportedModel, bytes_per_weight: int = 4) -> int:
    """Storage footprint of a classifier's parameters in bytes.

    Parameters
    ----------
    model:
        Any classifier exposing ``num_parameters``.
    bytes_per_weight:
        Bytes per stored parameter (4 for float32 weights, 1 for an
        8-bit quantised deployment).
    """
    if bytes_per_weight <= 0:
        raise ValueError(f"bytes_per_weight must be positive, got {bytes_per_weight}")
    return int(model.num_parameters * bytes_per_weight)

"""Processing-cost and memory models for the wearable's microcontroller.

The paper's platform is a TI CC2640R2F (ARM Cortex-M3 at 48 MHz).  Two
of its comparisons rely on MCU-side costs rather than sensor current:

* **Memory requirements** (Section V-D): storing one shared classifier
  versus one classifier per sensor configuration.
* **Data-processing overhead** (Section V-D): AdaSense's controller only
  compares classifier outputs, whereas the intensity-based baseline must
  additionally compute the derivative of the raw accelerometer stream
  every second.

The cycle counts below are simple analytic estimates (multiply-accumulate
counts with a small constant overhead), not measurements; they are used
for *relative* comparisons only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.utils.validation import check_non_negative, check_positive, check_positive_int


@dataclass(frozen=True)
class McuModel:
    """Analytic cycle/energy/memory model of the host microcontroller.

    Parameters
    ----------
    clock_hz:
        CPU clock frequency.
    active_current_ma:
        Current drawn while the CPU is running, in milliamperes.
    supply_voltage_v:
        Supply voltage used to convert charge into energy.
    cycles_per_mac:
        Cycles charged per multiply-accumulate (covers the arithmetic
        plus loop overhead on a Cortex-M3 class core).
    bytes_per_weight:
        Storage cost of one classifier parameter.
    """

    clock_hz: float = 48e6
    active_current_ma: float = 1.45
    supply_voltage_v: float = 3.0
    cycles_per_mac: int = 2
    bytes_per_weight: int = 4

    def __post_init__(self) -> None:
        check_positive(self.clock_hz, "clock_hz")
        check_positive(self.active_current_ma, "active_current_ma")
        check_positive(self.supply_voltage_v, "supply_voltage_v")
        check_positive_int(self.cycles_per_mac, "cycles_per_mac")
        check_positive_int(self.bytes_per_weight, "bytes_per_weight")

    @classmethod
    def cc2640r2f(cls) -> "McuModel":
        """The default CC2640R2F-flavoured parameterisation."""
        return cls()

    # ------------------------------------------------------------------
    # Cycle models
    # ------------------------------------------------------------------
    def feature_extraction_cycles(
        self, num_samples: int, num_fourier_features: int = 3
    ) -> int:
        """Cycles to extract the unified feature vector from one batch.

        Statistical features need one pass for the mean and one for the
        standard deviation (two MACs per sample per axis); each Fourier
        feature is computed with a Goertzel-style recurrence costing two
        MACs per sample per axis per coefficient.
        """
        check_non_negative(num_samples, "num_samples")
        check_non_negative(num_fourier_features, "num_fourier_features")
        stats_macs = 2 * num_samples * 3
        fourier_macs = 2 * num_samples * 3 * num_fourier_features
        return int(self.cycles_per_mac * (stats_macs + fourier_macs))

    def derivative_cycles(self, num_samples: int) -> int:
        """Cycles to compute the first derivative of a raw sample batch.

        This is the extra per-batch work the intensity-based baseline
        performs to estimate activity intensity (one subtract plus one
        absolute-value accumulate per sample per axis).
        """
        check_non_negative(num_samples, "num_samples")
        return int(self.cycles_per_mac * 2 * num_samples * 3)

    def inference_cycles(self, num_parameters: int) -> int:
        """Cycles for one forward pass of a dense classifier."""
        check_non_negative(num_parameters, "num_parameters")
        return int(self.cycles_per_mac * num_parameters)

    # ------------------------------------------------------------------
    # Energy / memory
    # ------------------------------------------------------------------
    def cycles_to_energy_uj(self, cycles: int) -> float:
        """Convert a cycle count into microjoules of CPU energy."""
        check_non_negative(cycles, "cycles")
        seconds = cycles / self.clock_hz
        current_a = self.active_current_ma * 1e-3
        return current_a * self.supply_voltage_v * seconds * 1e6

    def classifier_memory_bytes(self, num_parameters: int) -> int:
        """Bytes of storage needed for a classifier's parameters."""
        check_non_negative(num_parameters, "num_parameters")
        return int(num_parameters * self.bytes_per_weight)

    def processing_summary(
        self,
        num_samples: int,
        num_parameters: int,
        include_derivative: bool = False,
        num_fourier_features: int = 3,
    ) -> Mapping[str, float]:
        """Cycle and energy breakdown for one classification step.

        Parameters
        ----------
        num_samples:
            Samples in the classification batch.
        num_parameters:
            Parameters of the classifier evaluated on the batch.
        include_derivative:
            Whether the per-batch derivative of the raw data is also
            computed (the intensity-based baseline does; AdaSense does
            not).
        num_fourier_features:
            Number of Fourier features extracted per axis.
        """
        feature_cycles = self.feature_extraction_cycles(
            num_samples, num_fourier_features
        )
        inference = self.inference_cycles(num_parameters)
        derivative = self.derivative_cycles(num_samples) if include_derivative else 0
        total = feature_cycles + inference + derivative
        return {
            "feature_cycles": float(feature_cycles),
            "inference_cycles": float(inference),
            "derivative_cycles": float(derivative),
            "total_cycles": float(total),
            "energy_uj": self.cycles_to_energy_uj(total),
        }

"""Battery-lifetime estimation from average current draw.

The paper reports sensor current in microamperes; what a product team
ultimately cares about is how many days a coin cell or small LiPo pack
lasts.  This module provides the straightforward conversion used by the
example applications: lifetime = capacity / average current, with an
optional derating factor for cell ageing and cutoff voltage.

The estimate deliberately covers only the component whose current is
passed in.  To estimate whole-device lifetime, add the MCU and radio
budgets to the average current before calling these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.constants import SECONDS_PER_HOUR
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class Battery:
    """A simple battery model.

    Parameters
    ----------
    capacity_mah:
        Nominal capacity in milliampere-hours.
    usable_fraction:
        Fraction of the nominal capacity actually available before the
        device browns out (covers ageing, temperature and cutoff
        voltage).  Must lie strictly between 0 and 1.
    """

    capacity_mah: float
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        check_positive(self.capacity_mah, "capacity_mah")
        check_fraction(self.usable_fraction, "usable_fraction")

    @classmethod
    def coin_cell_cr2032(cls) -> "Battery":
        """A CR2032 coin cell (~225 mAh), a common wearable power source."""
        return cls(capacity_mah=225.0)

    @classmethod
    def small_lipo_100mah(cls) -> "Battery":
        """A small 100 mAh LiPo pouch cell (wristband form factor)."""
        return cls(capacity_mah=100.0)

    @property
    def usable_capacity_mah(self) -> float:
        """Capacity available after derating, in mAh."""
        return self.capacity_mah * self.usable_fraction

    def lifetime_hours(self, average_current_ua: float) -> float:
        """Hours of operation sustained at ``average_current_ua``."""
        check_positive(average_current_ua, "average_current_ua")
        average_current_ma = average_current_ua / 1000.0
        return self.usable_capacity_mah / average_current_ma

    def lifetime_days(self, average_current_ua: float) -> float:
        """Days of operation sustained at ``average_current_ua``."""
        return self.lifetime_hours(average_current_ua) / 24.0

    def lifetime_extension(
        self, baseline_current_ua: float, improved_current_ua: float
    ) -> float:
        """How many times longer the battery lasts after an optimisation.

        A value of 3.0 means the improved system runs three times longer
        on the same cell than the baseline.
        """
        baseline = self.lifetime_hours(baseline_current_ua)
        improved = self.lifetime_hours(improved_current_ua)
        return improved / baseline


def charge_uc_to_mah(charge_uc: float) -> float:
    """Convert a charge in microcoulombs (µA·s) into milliampere-hours."""
    if charge_uc < 0:
        raise ValueError(f"charge_uc must be non-negative, got {charge_uc}")
    return charge_uc / 1000.0 / SECONDS_PER_HOUR

"""Energy and memory cost models.

The paper's power numbers come from a Bosch BMI160 IMU driven by a TI
CC2640R2F microcontroller.  This subpackage provides the analytic
substitutes used by the reproduction:

* :mod:`repro.energy.accelerometer` — current consumption of the
  accelerometer as a function of sensor configuration (normal versus
  duty-cycled low-power operation);
* :mod:`repro.energy.mcu` — processing-cost and memory models for the
  feature extraction and classification running on the MCU;
* :mod:`repro.energy.accounting` — helpers that integrate current over
  simulation traces and express savings relative to a baseline.
"""

from repro.energy.accelerometer import AccelerometerPowerModel
from repro.energy.accounting import (
    average_current_ua,
    energy_uc,
    relative_saving,
    state_residency,
)
from repro.energy.battery import Battery, charge_uc_to_mah
from repro.energy.mcu import McuModel

__all__ = [
    "AccelerometerPowerModel",
    "McuModel",
    "Battery",
    "charge_uc_to_mah",
    "average_current_ua",
    "energy_uc",
    "relative_saving",
    "state_residency",
]

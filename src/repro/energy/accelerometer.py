"""Current-consumption model of the simulated accelerometer.

Section IV-A of the paper explains the mechanism this model captures:

* In **normal mode** the sensing front-end is powered continuously, so
  the current draw is a constant independent of the averaging window.
* In **low-power mode** the sensor suspends itself between output
  samples and only wakes long enough to acquire and average the
  configured number of internal sub-samples.  The fraction of time spent
  awake — the duty cycle — is therefore proportional to
  ``sampling_hz * (averaging_window * conversion_time + wakeup_time)``,
  and the average current interpolates between the suspend current and
  the active current accordingly.

A configuration whose duty cycle reaches (or exceeds) one simply cannot
suspend and behaves like normal mode.  With the default constants this
reproduces the structure of Fig. 2: the ``A128`` configurations at
12.5 Hz and above sit in the normal-mode region around the active
current, while the remaining combinations spread across roughly a
10–100 µA low-power region.

The default constants are loosely derived from the BMI160 datasheet
(180 µA typical active current, ~3 µA suspend) but are not calibrated
measurements; the reproduction targets the *shape* of the paper's
trade-off, not its absolute microamp values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.core.config import OperationMode, SensorConfig
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class AccelerometerPowerModel:
    """Analytic current model for a duty-cycled accelerometer.

    Parameters
    ----------
    active_current_ua:
        Current drawn while the sensing front-end is on (normal-mode
        current), in microamperes.
    suspend_current_ua:
        Current drawn while the sensor is suspended between samples.
    conversion_time_s:
        Time needed to acquire one internal sub-sample of the averaging
        window.
    wakeup_time_s:
        Fixed overhead paid once per output sample when resuming from
        suspend in low-power mode.
    """

    active_current_ua: float = 180.0
    suspend_current_ua: float = 3.0
    conversion_time_s: float = 1.0 / 1600.0
    wakeup_time_s: float = 0.0002

    def __post_init__(self) -> None:
        check_positive(self.active_current_ua, "active_current_ua")
        check_non_negative(self.suspend_current_ua, "suspend_current_ua")
        check_positive(self.conversion_time_s, "conversion_time_s")
        check_non_negative(self.wakeup_time_s, "wakeup_time_s")
        if self.suspend_current_ua >= self.active_current_ua:
            raise ValueError(
                "suspend_current_ua must be smaller than active_current_ua, got "
                f"{self.suspend_current_ua} >= {self.active_current_ua}"
            )

    @classmethod
    def bmi160(cls) -> "AccelerometerPowerModel":
        """The default, BMI160-flavoured parameterisation."""
        return cls()

    def duty_cycle(self, config: SensorConfig) -> float:
        """Fraction of time the sensor must stay awake under ``config``.

        Values are clipped to 1.0: a configuration that cannot fit its
        acquisitions into the sample period keeps the sensor on
        permanently.
        """
        on_time_per_sample = (
            config.averaging_window * self.conversion_time_s + self.wakeup_time_s
        )
        duty = config.sampling_hz * on_time_per_sample
        return float(min(duty, 1.0))

    def mode_for(self, config: SensorConfig) -> OperationMode:
        """Operation mode ``config`` effectively runs in.

        A configuration with a saturated duty cycle is reported as
        :attr:`OperationMode.NORMAL`; everything else duty-cycles in
        low-power mode.
        """
        return (
            OperationMode.NORMAL
            if self.duty_cycle(config) >= 1.0
            else OperationMode.LOW_POWER
        )

    def current_ua(self, config: SensorConfig) -> float:
        """Average current drawn under ``config``, in microamperes."""
        duty = self.duty_cycle(config)
        return self.suspend_current_ua + duty * (
            self.active_current_ua - self.suspend_current_ua
        )

    def energy_uc(self, config: SensorConfig, duration_s: float) -> float:
        """Charge drawn over ``duration_s`` seconds, in microcoulombs.

        Because the supply voltage is constant on the target platform,
        charge (µA·s) is the quantity the paper reports and compares; it
        is proportional to energy.
        """
        check_non_negative(duration_s, "duration_s")
        return self.current_ua(config) * duration_s

    def current_table(
        self, configs: Iterable[SensorConfig]
    ) -> Dict[SensorConfig, float]:
        """Current draw for each configuration in ``configs``."""
        return {config: self.current_ua(config) for config in configs}

    def describe(self, config: SensorConfig) -> Mapping[str, float | str]:
        """Human-readable summary of how ``config`` is powered."""
        return {
            "config": config.name,
            "mode": self.mode_for(config).value,
            "duty_cycle": self.duty_cycle(config),
            "current_ua": self.current_ua(config),
        }

"""Energy accounting over simulation traces.

The closed-loop simulator (:mod:`repro.sim.runtime`) records, for every
one-second classification step, which sensor configuration was active
and how much current it drew.  The helpers here aggregate such records
into the quantities the paper reports: average current, total charge,
per-state residency and relative savings versus a baseline.

All functions accept plain sequences/arrays so they can be used both on
full simulation traces and on ad-hoc data in tests and notebooks.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.utils.validation import check_positive


def energy_uc(
    currents_ua: Sequence[float], durations_s: Sequence[float] | float = 1.0
) -> float:
    """Total charge drawn, in microcoulombs (µA·s).

    Parameters
    ----------
    currents_ua:
        Current drawn during each interval, in microamperes.
    durations_s:
        Either one duration per interval or a scalar applied to all
        intervals (the simulator steps once per second, so the default
        of one second per interval matches its traces).
    """
    currents = np.asarray(currents_ua, dtype=float)
    if np.isscalar(durations_s):
        durations = np.full(currents.shape, float(durations_s))
    else:
        durations = np.asarray(durations_s, dtype=float)
        if durations.shape != currents.shape:
            raise ValueError(
                "durations_s must be a scalar or match currents_ua in length, got "
                f"{durations.shape} vs {currents.shape}"
            )
    if (durations < 0).any():
        raise ValueError("durations_s must be non-negative")
    return float(np.sum(currents * durations))


def average_current_ua(
    currents_ua: Sequence[float], durations_s: Sequence[float] | float = 1.0
) -> float:
    """Time-weighted average current in microamperes."""
    currents = np.asarray(currents_ua, dtype=float)
    if currents.size == 0:
        raise ValueError("cannot average an empty current trace")
    if np.isscalar(durations_s):
        return float(np.mean(currents))
    durations = np.asarray(durations_s, dtype=float)
    total_time = float(np.sum(durations))
    check_positive(total_time, "total duration")
    return energy_uc(currents, durations) / total_time


def relative_saving(baseline: float, candidate: float) -> float:
    """Fractional reduction of ``candidate`` relative to ``baseline``.

    A value of 0.69 means the candidate consumes 69 % less than the
    baseline (the paper's headline sensor-power reduction).  Negative
    values indicate the candidate consumes more than the baseline.
    """
    check_positive(baseline, "baseline")
    return float((baseline - candidate) / baseline)


def state_residency(
    state_names: Sequence[str], durations_s: Sequence[float] | float = 1.0
) -> Dict[str, float]:
    """Fraction of time spent in each named state.

    Parameters
    ----------
    state_names:
        Name of the active state (typically a sensor-configuration name)
        during each interval.
    durations_s:
        Interval durations, scalar or per-interval.

    Returns
    -------
    dict
        Mapping from state name to its share of total time (the values
        sum to 1.0).
    """
    names = list(state_names)
    if not names:
        raise ValueError("state_names must not be empty")
    if np.isscalar(durations_s):
        durations = np.full(len(names), float(durations_s))
    else:
        durations = np.asarray(durations_s, dtype=float)
        if durations.shape != (len(names),):
            raise ValueError(
                "durations_s must be a scalar or match state_names in length"
            )
    total = float(np.sum(durations))
    check_positive(total, "total duration")
    residency: Dict[str, float] = {}
    for name, duration in zip(names, durations):
        residency[name] = residency.get(name, 0.0) + float(duration)
    return {name: value / total for name, value in residency.items()}


def summarize_power(
    currents_ua: Sequence[float],
    state_names: Sequence[str],
    durations_s: Sequence[float] | float = 1.0,
) -> Mapping[str, object]:
    """Bundle the common power statistics for a trace into one mapping."""
    return {
        "average_current_ua": average_current_ua(currents_ua, durations_s),
        "energy_uc": energy_uc(currents_ua, durations_s),
        "state_residency": state_residency(state_names, durations_s),
    }

"""Command-line interface for the AdaSense reproduction.

The CLI wraps the most common workflows so they can be run without writing
Python:

``adasense-repro experiments`` (or ``python -m repro.cli experiments``)
    List the available paper artefacts.
``adasense-repro run <experiment>``
    Run one experiment driver (Table I, Fig. 2, Fig. 5, Fig. 6, Fig. 7,
    memory, headline, mismatch) and print the paper-style table.
``adasense-repro train``
    Train the shared classifier and save it (plus its scaler) to a JSON
    file that ``simulate`` can reuse.
``adasense-repro simulate``
    Run the closed loop on a user-activity setting with a chosen
    controller and print the power/accuracy summary.
``adasense-repro fleet``
    Simulate a heterogeneous population of devices with the vectorized
    fleet engine and print (or export as JSON) fleet-level telemetry.
``adasense-repro campaign``
    Grid controller hyperparameters over one population and run every
    variant as a single fused stacked fleet, emitting per-archetype
    Pareto fronts (accuracy vs energy vs battery).

Every command accepts ``--seed`` so results are reproducible.  The
``repro`` console script and ``python -m repro`` invoke the same
entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.core.adasense import AdaSense
from repro.core.controller import (
    AdaptiveController,
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.core.pipeline import HarPipeline
from repro.datasets.scenarios import ActivitySetting, make_setting_schedule
from repro.fleet import (
    DevicePopulation,
    FleetSimulator,
    FleetTelemetry,
    ShardedFleetSimulator,
)
from repro.ml.persistence import load_model, save_model
from repro.obs import (
    DEFAULT_HEARTBEAT_S,
    LOG_LEVELS,
    MetricsRegistry,
    RunMonitor,
    configure_logging,
    to_prometheus_text,
    write_chrome_trace,
    write_metrics_json,
)

#: Experiment name -> callable returning an object with ``format_table()``.
ExperimentRunner = Callable[[str, int], object]


def _run_table1(scale: str, seed: int):
    from repro.experiments.table1 import run_table1

    return run_table1()


def _run_fig2(scale: str, seed: int):
    from repro.experiments.fig2_dse import run_fig2

    windows = 60 if scale == "quick" else 120
    return run_fig2(windows_per_activity=windows, seed=seed)


def _run_fig5(scale: str, seed: int):
    from repro.experiments.fig5_behavior import run_fig5

    return run_fig5(scale=scale)


def _run_fig6(scale: str, seed: int):
    from repro.experiments.fig6_power_accuracy import run_fig6

    return run_fig6(scale=scale, seed=seed)


def _run_fig7(scale: str, seed: int):
    from repro.experiments.fig7_comparison import run_fig7

    return run_fig7(scale=scale, seed=seed)


def _run_memory(scale: str, seed: int):
    from repro.experiments.memory_overhead import run_memory_overhead

    return run_memory_overhead(scale=scale, seed=seed)


def _run_headline(scale: str, seed: int):
    from repro.experiments.headline import run_headline

    return run_headline(scale=scale, seed=seed)


def _run_mismatch(scale: str, seed: int):
    from repro.experiments.mismatch import run_mismatch

    windows = 30 if scale == "quick" else 120
    return run_mismatch(windows_per_activity_per_config=windows, seed=seed)


EXPERIMENTS: Dict[str, tuple[str, ExperimentRunner]] = {
    "table1": ("Table I — explored sensor configurations", _run_table1),
    "fig2": ("Fig. 2 — accuracy/current trade-off and Pareto front", _run_fig2),
    "fig5": ("Fig. 5 — behavioural analysis (sit then walk)", _run_fig5),
    "fig6": ("Fig. 6 — accuracy and power vs stability threshold", _run_fig6),
    "fig7": ("Fig. 7 — AdaSense vs the intensity-based approach", _run_fig7),
    "memory": ("Section V-D — memory and processing overhead", _run_memory),
    "headline": ("Headline — power reduction vs accuracy loss", _run_headline),
    "mismatch": ("Motivation — configuration-mismatch experiment", _run_mismatch),
}

_CONTROLLERS = ("static", "spot", "spot_confidence")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="adasense-repro",
        description="AdaSense (DAC 2020) reproduction command-line interface.",
    )
    # Shared by every subcommand so the flag works in either position
    # (``repro fleet --log-level debug``).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level", choices=LOG_LEVELS, default=None,
        help="route diagnostic logging to stderr at this level "
             "(sharded workers prefix their lines with [shard N])",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "experiments", help="list the reproducible paper artefacts",
        parents=[common],
    )

    run_parser = subparsers.add_parser(
        "run", help="run one experiment driver", parents=[common]
    )
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--scale", choices=("quick", "paper"), default="quick",
        help="experiment fidelity (default: quick)",
    )
    run_parser.add_argument("--seed", type=int, default=2020)

    train_parser = subparsers.add_parser(
        "train", help="train the shared classifier and save it to JSON",
        parents=[common],
    )
    train_parser.add_argument("--output", required=True, help="destination JSON file")
    train_parser.add_argument(
        "--windows", type=int, default=60,
        help="training windows per activity per configuration (default: 60)",
    )
    train_parser.add_argument("--hidden", type=int, default=32, help="hidden units")
    train_parser.add_argument("--seed", type=int, default=2020)

    simulate_parser = subparsers.add_parser(
        "simulate", help="run the closed loop on a user-activity setting",
        parents=[common],
    )
    simulate_parser.add_argument(
        "--setting", choices=[setting.value for setting in ActivitySetting],
        default="low", help="activity-change rate of the simulated user",
    )
    simulate_parser.add_argument("--duration", type=float, default=600.0,
                                 help="simulated seconds (default: 600)")
    simulate_parser.add_argument("--controller", choices=_CONTROLLERS,
                                 default="spot_confidence")
    simulate_parser.add_argument("--threshold", type=int, default=20,
                                 help="SPOT stability threshold in seconds")
    simulate_parser.add_argument("--confidence", type=float, default=0.85,
                                 help="confidence gate for spot_confidence")
    simulate_parser.add_argument("--model", default=None,
                                 help="JSON model saved by 'train' (otherwise trains a fresh one)")
    simulate_parser.add_argument("--windows", type=int, default=40,
                                 help="training windows per activity per configuration "
                                      "when no saved model is given")
    simulate_parser.add_argument("--seed", type=int, default=2020)

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="simulate a heterogeneous device population with the fleet engine",
        parents=[common],
    )
    fleet_parser.add_argument("--devices", type=int, default=100,
                              help="number of simulated devices (default: 100)")
    fleet_parser.add_argument("--duration", type=float, default=600.0,
                              help="simulated seconds per device (default: 600)")
    fleet_parser.add_argument("--out", default=None,
                              help="write the full JSON telemetry report here")
    fleet_parser.add_argument(
        "--engine", choices=("batched", "sequential", "sharded"), default="batched",
        help="batched lock-step fleet engine (default), the per-device "
             "sequential reference loop, or the process-sharded engine",
    )
    fleet_parser.add_argument(
        "--features", choices=("incremental", "exact"), default="incremental",
        help="feature extraction: chunk-cached incremental path (default) "
             "or the exact full-window path",
    )
    fleet_parser.add_argument(
        "--shards", type=int, default=None,
        help="worker processes for --engine sharded (default: CPU count)",
    )
    fleet_parser.add_argument(
        "--max-retries", type=int, default=2, dest="max_retries",
        help="worker re-attempts per shard before the run fails "
             "(--engine sharded; default: 2, plus one inline last-resort "
             "attempt)",
    )
    fleet_parser.add_argument(
        "--shard-timeout", type=float, default=None, dest="shard_timeout",
        metavar="SECONDS",
        help="wall-clock budget per shard attempt; hung workers are "
             "terminated and retried (--engine sharded; default: no "
             "timeout)",
    )
    fleet_parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="checkpoint directory for --engine sharded: shards simulate "
             "in rounds (see --round) and serialise their engine state "
             "after each one, so retries and resumed campaigns continue "
             "from the last complete round bit-identically",
    )
    fleet_parser.add_argument(
        "--round", type=float, default=None, dest="round_s",
        metavar="SECONDS",
        help="simulated seconds per checkpoint round (default: 60 when "
             "--checkpoint is given)",
    )
    fleet_parser.add_argument(
        "--resume", action="store_true",
        help="resume the campaign in --checkpoint DIR from its last "
             "complete rounds (bit-identical to an uninterrupted run)",
    )
    fleet_parser.add_argument(
        "--controllers", choices=("bank", "per_object"), default="bank",
        help="advance adaptive controllers with the vectorized "
             "array-of-states bank (default) or one object at a time",
    )
    fleet_parser.add_argument(
        "--noise", choices=("per_device", "batched"), default="per_device",
        help="acquisition layer: per-device generator draws (default, "
             "bit-exact v1.3.0 reference) or the batched layer (pooled "
             "counter-based noise streams, ring sample storage, cached "
             "signal tables; statistically equivalent and shard-invariant)",
    )
    fleet_parser.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64",
        help="compute-lane precision: float64 (default, bit-exact with "
             "prior releases) or float32 (single-precision signal "
             "synthesis, acquisition and feature extraction; features "
             "reach the classifier as float64 either way)",
    )
    fleet_parser.add_argument(
        "--trace", choices=("summary", "full"), default="summary",
        help="collect streaming O(devices) telemetry accumulators "
             "(default) or materialise full per-step traces; reports are "
             "bit-identical (--engine sequential always records full "
             "traces)",
    )
    fleet_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="meter the run and write the metrics snapshot (counters, "
             "gauges, phase-span histograms) as JSON; metering never "
             "perturbs the simulated traces",
    )
    fleet_parser.add_argument(
        "--trace-events", default=None, metavar="PATH", dest="trace_events",
        help="meter the run and write per-tick phase spans as Chrome "
             "trace-event JSON (open in Perfetto or chrome://tracing; "
             "one lane per shard)",
    )
    fleet_parser.add_argument(
        "--prometheus", default=None, metavar="PATH",
        help="meter the run and write the snapshot in the Prometheus "
             "text exposition format",
    )
    fleet_parser.add_argument(
        "--watch", action="store_true",
        help="render a live progress/ETA status line on stderr, fed by "
             "in-flight shard heartbeats (--engine sharded; traces stay "
             "bit-identical)",
    )
    fleet_parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="append the live telemetry event stream (heartbeats, "
             "attempts, checkpoints, stragglers) as NDJSON to PATH "
             "(--engine sharded)",
    )
    fleet_parser.add_argument(
        "--heartbeat", type=float, default=None, dest="heartbeat_s",
        metavar="SECONDS",
        help="simulated seconds between shard heartbeats (--engine "
             f"sharded; default: {DEFAULT_HEARTBEAT_S:g} when live "
             "telemetry is enabled)",
    )
    fleet_parser.add_argument(
        "--flight", default=None, metavar="DIR",
        help="flight-recorder directory: on a worker death, timeout or "
             "corrupt payload the recent event ring for that shard is "
             "dumped here (--engine sharded; defaults to --checkpoint "
             "DIR when set)",
    )
    fleet_parser.add_argument("--model", default=None,
                              help="JSON model saved by 'train' (otherwise trains a fresh one)")
    fleet_parser.add_argument("--windows", type=int, default=40,
                              help="training windows per activity per configuration "
                                   "when no saved model is given")
    fleet_parser.add_argument("--seed", type=int, default=2020,
                              help="master seed for the population, the training "
                                   "data and every device's random stream")

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run a controller hyperparameter grid as one fused stacked fleet",
        parents=[common],
    )
    campaign_parser.add_argument("--devices", type=int, default=100,
                                 help="physical devices in the shared population "
                                      "(default: 100)")
    campaign_parser.add_argument("--duration", type=float, default=600.0,
                                 help="simulated seconds per device (default: 600)")
    campaign_parser.add_argument(
        "--thresholds", default=None, metavar="T1,T2,...",
        help="SPOT stability thresholds to grid (comma-separated seconds)",
    )
    campaign_parser.add_argument(
        "--confidences", default=None, metavar="C1,C2,...",
        help="confidence cutoffs to grid (comma-separated probabilities)",
    )
    campaign_parser.add_argument(
        "--kinds", default=None, metavar="K1,K2,...",
        help="controller kinds to force fleet-wide "
             "(comma-separated, e.g. spot,spot_confidence)",
    )
    campaign_parser.add_argument(
        "--tables", default=None, metavar="N1+N2,...",
        help="SPOT config tables to grid: comma-separated tables, each a "
             "'+'-joined list of config names, e.g. "
             "F100_A128+F50_A16+F12.5_A8",
    )
    campaign_parser.add_argument(
        "--out", default=None,
        help="write the campaign JSON report (variants, Pareto fronts) here",
    )
    campaign_parser.add_argument(
        "--shards", type=int, default=None,
        help="split the fused fleet across worker processes on the "
             "variant axis (default: in-process)",
    )
    campaign_parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="checkpoint directory: the fused fleet simulates in rounds "
             "and can be resumed bit-identically with --resume",
    )
    campaign_parser.add_argument(
        "--round", type=float, default=None, dest="round_s", metavar="SECONDS",
        help="simulated seconds per checkpoint round (default: 60 when "
             "--checkpoint is given)",
    )
    campaign_parser.add_argument(
        "--resume", action="store_true",
        help="resume the campaign in --checkpoint DIR from its last "
             "complete rounds",
    )
    campaign_parser.add_argument(
        "--features", choices=("incremental", "exact"), default="incremental",
        help="feature extraction mode (default: incremental)",
    )
    campaign_parser.add_argument(
        "--noise", choices=("per_device", "batched"), default="batched",
        help="acquisition layer (default: batched — the lane whose signal "
             "tables share evaluations across variants)",
    )
    campaign_parser.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64",
        help="compute-lane precision (default: float64)",
    )
    campaign_parser.add_argument(
        "--trace", choices=("summary", "full"), default="summary",
        help="streaming summary accumulators (default) or full traces",
    )
    campaign_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="meter the run and write the metrics snapshot as JSON "
             "(includes campaign.variants / campaign.shared_group_hits)",
    )
    campaign_parser.add_argument(
        "--watch", action="store_true",
        help="render a live progress/ETA status line on stderr, fed by "
             "in-flight shard heartbeats (forces the supervised sharded "
             "path; results stay bit-identical)",
    )
    campaign_parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="append the live telemetry event stream (heartbeats, "
             "attempts, checkpoints, stragglers) as NDJSON to PATH "
             "(forces the supervised sharded path)",
    )
    campaign_parser.add_argument(
        "--heartbeat", type=float, default=None, dest="heartbeat_s",
        metavar="SECONDS",
        help="simulated seconds between shard heartbeats (default: "
             f"{DEFAULT_HEARTBEAT_S:g} when live telemetry is enabled)",
    )
    campaign_parser.add_argument(
        "--flight", default=None, metavar="DIR",
        help="flight-recorder directory for crash dumps (defaults to "
             "--checkpoint DIR when set)",
    )
    campaign_parser.add_argument("--model", default=None,
                                 help="JSON model saved by 'train' "
                                      "(otherwise trains a fresh one)")
    campaign_parser.add_argument("--windows", type=int, default=40,
                                 help="training windows per activity per "
                                      "configuration when no saved model is given")
    campaign_parser.add_argument("--seed", type=int, default=2020,
                                 help="master seed for the population, the "
                                      "training data and every device's stream")
    return parser


def _make_controller(name: str, threshold: int, confidence: float) -> AdaptiveController:
    if name == "static":
        return StaticController()
    if name == "spot":
        return SpotController(stability_threshold=threshold)
    if name == "spot_confidence":
        return SpotWithConfidenceController(
            stability_threshold=threshold, confidence_threshold=confidence
        )
    raise ValueError(f"unknown controller {name!r}")


def _command_experiments(args: argparse.Namespace, out) -> int:
    out.write("Reproducible paper artefacts:\n")
    for name, (description, _) in sorted(EXPERIMENTS.items()):
        out.write(f"  {name:<10} {description}\n")
    return 0


def _command_run(args: argparse.Namespace, out) -> int:
    description, runner = EXPERIMENTS[args.experiment]
    out.write(f"{description}\n{'=' * len(description)}\n")
    result = runner(args.scale, args.seed)
    out.write(result.format_table() + "\n")
    return 0


def _command_train(args: argparse.Namespace, out) -> int:
    system = AdaSense.train(
        windows_per_activity_per_config=args.windows,
        hidden_units=(args.hidden,),
        seed=args.seed,
    )
    pipeline = system.pipeline
    path = save_model(
        args.output,
        pipeline.classifier,
        scaler=pipeline.scaler,
        metadata={
            "windows_per_activity_per_config": args.windows,
            "hidden_units": args.hidden,
            "seed": args.seed,
        },
    )
    out.write(
        f"trained shared classifier ({pipeline.num_parameters} parameters, "
        f"{pipeline.memory_bytes()} bytes) -> {path}\n"
    )
    return 0


def _load_or_train_system(args: argparse.Namespace) -> AdaSense:
    if args.model is not None:
        classifier, scaler, _ = load_model(args.model)
        return AdaSense(pipeline=HarPipeline(classifier=classifier, scaler=scaler))
    return AdaSense.train(
        windows_per_activity_per_config=args.windows, seed=args.seed
    )


def _command_simulate(args: argparse.Namespace, out) -> int:
    system = _load_or_train_system(args)
    controller = _make_controller(args.controller, args.threshold, args.confidence)
    adaptive = system.with_controller(controller)
    schedule = make_setting_schedule(
        ActivitySetting(args.setting), total_duration_s=args.duration, seed=args.seed
    )
    trace = adaptive.simulate(schedule, seed=args.seed + 1)

    always_on = system.power_model.current_ua(StaticController().current_config)
    saving = 1.0 - trace.average_current_ua / always_on
    out.write(f"setting            : {args.setting}\n")
    out.write(f"controller         : {args.controller} (threshold {args.threshold}s)\n")
    out.write(f"simulated duration : {trace.duration_s:.0f} s\n")
    out.write(f"accuracy           : {trace.accuracy:.3f}\n")
    out.write(f"average current    : {trace.average_current_ua:.1f} uA\n")
    out.write(f"power saving       : {100.0 * saving:.1f} % vs always-on\n")
    out.write("state residency    :\n")
    for name, share in sorted(trace.state_residency().items()):
        out.write(f"  {name:>12}: {100.0 * share:5.1f} %\n")
    return 0


def _monitor_from_args(args: argparse.Namespace) -> Optional[RunMonitor]:
    """A :class:`RunMonitor` when any live-telemetry flag was given."""
    if not (
        args.watch
        or args.events is not None
        or args.heartbeat_s is not None
        or args.flight is not None
    ):
        return None
    return RunMonitor(
        watch=sys.stderr if args.watch else None,
        events=args.events,
        flight_dir=args.flight,
        heartbeat_s=(
            args.heartbeat_s
            if args.heartbeat_s is not None
            else DEFAULT_HEARTBEAT_S
        ),
    )


def _command_fleet(args: argparse.Namespace, out) -> int:
    system = _load_or_train_system(args)
    population = DevicePopulation.generate(
        num_devices=args.devices,
        duration_s=args.duration,
        master_seed=args.seed,
    )
    want_metrics = (
        args.metrics is not None
        or args.trace_events is not None
        or args.prometheus is not None
    )
    registry = (
        MetricsRegistry(trace_events=args.trace_events is not None)
        if want_metrics
        else None
    )
    snapshot = None
    if args.engine == "sharded":
        monitor = _monitor_from_args(args)
        sharded = ShardedFleetSimulator(
            system.pipeline,
            features=args.features,
            controllers=args.controllers,
            noise=args.noise,
            dtype=args.dtype,
            metrics=registry,
            max_retries=args.max_retries,
            shard_timeout_s=args.shard_timeout,
            checkpoint_dir=args.checkpoint,
            round_s=args.round_s,
            resume=args.resume,
            monitor=monitor,
        )
        run = sharded.run(population, num_shards=args.shards, trace=args.trace)
        result = run.result
        telemetry = run.telemetry
        snapshot = run.metrics
        out.write(
            f"engine             : sharded ({run.num_shards} shards: "
            f"{', '.join(str(size) for size in run.shard_sizes)})\n"
        )
        for index, (size, shard_elapsed) in enumerate(
            zip(run.shard_sizes, run.shard_elapsed_s)
        ):
            attempts = (
                run.shard_attempts[index]
                if index < len(run.shard_attempts)
                else 1
            )
            retry_note = (
                f", {attempts} attempts" if attempts > 1 else ""
            )
            out.write(
                f"  shard {index}        : {size} devices, "
                f"{shard_elapsed:.2f} s{retry_note}\n"
            )
        if run.retries or run.failures or run.timeouts:
            out.write(
                f"  recovery         : {run.retries} retries, "
                f"{run.failures} failed attempts, "
                f"{run.timeouts} timeouts\n"
            )
        if args.checkpoint is not None:
            out.write(
                f"  checkpoints      : {args.checkpoint} "
                f"({'resumed' if args.resume else 'fresh'} campaign)\n"
            )
        stats = run.straggler_stats()
        if stats:
            out.write(
                f"  shard skew       : {stats['skew']:.2f}x "
                f"(straggler shard {int(stats['straggler'])}, "
                f"spread {stats['spread_s']:.2f} s)\n"
            )
        if run.stragglers:
            out.write(
                "  live stragglers  : "
                + ", ".join(f"shard {index}" for index in run.stragglers)
                + "\n"
            )
        if args.events is not None:
            out.write(f"  event stream     -> {args.events}\n")
    else:
        simulator = FleetSimulator(
            system.pipeline,
            features=args.features,
            controllers=args.controllers,
            noise=args.noise,
            dtype=args.dtype,
            metrics=registry,
        )
        if args.engine == "sequential":
            result = simulator.run_sequential(population)
        else:
            result = simulator.run(population, trace=args.trace)
        telemetry = FleetTelemetry.from_result(result)
        if registry is not None:
            snapshot = registry.snapshot()
        out.write(f"engine             : {result.mode}\n")
    out.write(f"features           : {args.features}\n")
    out.write(f"controllers        : {args.controllers}\n")
    out.write(f"noise              : {args.noise}\n")
    out.write(f"dtype              : {args.dtype}\n")
    out.write(f"trace              : {result.trace_mode}\n")
    out.write(
        f"throughput         : {result.throughput_device_seconds_per_s:.0f} "
        f"device-seconds/s ({result.elapsed_s:.2f} s wall clock)\n"
    )
    out.write(telemetry.format_table() + "\n")
    if args.out is not None:
        telemetry.to_json(args.out)
        out.write(f"telemetry          -> {args.out}\n")
    if snapshot is not None:
        meta = {
            "engine": args.engine,
            "devices": args.devices,
            "duration_s": args.duration,
            "features": args.features,
            "controllers": args.controllers,
            "noise": args.noise,
            "dtype": args.dtype,
            "trace": args.trace,
            "seed": args.seed,
        }
        if args.metrics is not None:
            write_metrics_json(snapshot, args.metrics, extra=meta)
            out.write(f"metrics            -> {args.metrics}\n")
        if args.trace_events is not None:
            write_chrome_trace(snapshot, args.trace_events)
            out.write(f"trace events       -> {args.trace_events}\n")
        if args.prometheus is not None:
            with open(args.prometheus, "w", encoding="utf-8") as handle:
                handle.write(to_prometheus_text(snapshot))
            out.write(f"prometheus         -> {args.prometheus}\n")
    return 0


def _split_csv(text: Optional[str], convert) -> Optional[list]:
    if text is None:
        return None
    return [convert(part) for part in text.split(",") if part]


def _command_campaign(args: argparse.Namespace, out) -> int:
    from repro.campaign import CampaignRunner, variant_grid

    system = _load_or_train_system(args)
    population = DevicePopulation.generate(
        num_devices=args.devices,
        duration_s=args.duration,
        master_seed=args.seed,
    )
    variants = variant_grid(
        stability_thresholds=_split_csv(args.thresholds, int),
        confidence_thresholds=_split_csv(args.confidences, float),
        controller_kinds=_split_csv(args.kinds, str),
        config_tables=(
            None
            if args.tables is None
            else [tuple(table.split("+")) for table in args.tables.split(",")]
        ),
    )
    registry = MetricsRegistry() if args.metrics is not None else None
    monitor = _monitor_from_args(args)
    runner = CampaignRunner(
        system.pipeline,
        variants,
        features=args.features,
        noise=args.noise,
        dtype=args.dtype,
        metrics=registry,
        num_shards=args.shards,
        checkpoint_dir=args.checkpoint,
        round_s=args.round_s,
        resume=args.resume,
        monitor=monitor,
    )
    result = runner.run(population, trace=args.trace)
    if args.events is not None:
        out.write(f"event stream       -> {args.events}\n")
    out.write(f"features           : {args.features}\n")
    out.write(f"noise              : {args.noise}\n")
    out.write(f"dtype              : {args.dtype}\n")
    out.write(f"trace              : {result.trace_mode}\n")
    out.write(result.format_table() + "\n")
    if args.out is not None:
        import json as _json

        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.write(f"campaign report    -> {args.out}\n")
    if registry is not None and result.metrics is not None:
        write_metrics_json(
            result.metrics,
            args.metrics,
            extra={
                "engine": "campaign",
                "devices": args.devices,
                "variants": result.num_variants,
                "duration_s": args.duration,
                "noise": args.noise,
                "dtype": args.dtype,
                "trace": args.trace,
                "seed": args.seed,
            },
        )
        out.write(f"metrics            -> {args.metrics}\n")
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point for ``repro`` / ``adasense-repro`` / ``python -m repro``."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if (
        getattr(args, "resume", False)
        and getattr(args, "checkpoint", None) is None
    ):
        parser.error(f"{args.command}: --resume requires --checkpoint DIR")
    if args.command == "fleet" and args.engine != "sharded":
        live_flags = [
            flag
            for flag, given in (
                ("--watch", args.watch),
                ("--events", args.events is not None),
                ("--heartbeat", args.heartbeat_s is not None),
                ("--flight", args.flight is not None),
            )
            if given
        ]
        if live_flags:
            parser.error(
                f"fleet: {'/'.join(live_flags)} requires --engine sharded"
            )
    configure_logging(getattr(args, "log_level", None))
    commands = {
        "experiments": _command_experiments,
        "run": _command_run,
        "train": _command_train,
        "simulate": _command_simulate,
        "fleet": _command_fleet,
        "campaign": _command_campaign,
    }
    return commands[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

"""The AdaSense facade: one object wiring sensing, pipeline and control.

Most downstream users only need three things: train the shared
classifier, pick an adaptive controller, and run the closed loop on an
activity schedule.  :class:`AdaSense` packages those steps behind a
small API so the examples and benchmarks stay short, while every piece
remains individually replaceable for experiments (swap the controller,
the noise model, the power model, the feature extractor, ...).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.config import DEFAULT_SPOT_STATES, SensorConfig
from repro.core.controller import (
    AdaptiveController,
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.core.features import FeatureExtractor
from repro.core.pipeline import ClassificationResult, HarPipeline
from repro.datasets.windows import WindowDataset, WindowDatasetBuilder
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ, NoiseModel
from repro.sim.runtime import ClosedLoopSimulator, ScheduleLike
from repro.sim.trace import SimulationTrace
from repro.utils.rng import SeedLike, as_rng


class AdaSense:
    """High-level entry point for the AdaSense reproduction.

    Parameters
    ----------
    pipeline:
        A trained :class:`HarPipeline` (build one with
        :meth:`AdaSense.train` unless you have special requirements).
    controller:
        The adaptive controller; defaults to SPOT-with-confidence with
        the paper's settings (four Pareto states, confidence 0.85,
        stability threshold 20 s).
    power_model:
        Accelerometer current model; defaults to the BMI160-flavoured
        model.
    noise:
        Sensor noise model used by simulations.
    internal_rate_hz:
        Internal conversion rate of the simulated accelerometer.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        controller: Optional[AdaptiveController] = None,
        power_model: Optional[AccelerometerPowerModel] = None,
        noise: Optional[NoiseModel] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
    ) -> None:
        self._pipeline = pipeline
        self._controller = (
            controller
            if controller is not None
            else SpotWithConfidenceController(stability_threshold=20)
        )
        self._power_model = (
            power_model if power_model is not None else AccelerometerPowerModel.bmi160()
        )
        self._noise = noise if noise is not None else NoiseModel()
        self._internal_rate_hz = float(internal_rate_hz)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        configs: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
        windows_per_activity_per_config: int = 60,
        hidden_units: Sequence[int] = (32,),
        controller: Optional[AdaptiveController] = None,
        extractor: Optional[FeatureExtractor] = None,
        noise: Optional[NoiseModel] = None,
        power_model: Optional[AccelerometerPowerModel] = None,
        seed: SeedLike = None,
    ) -> "AdaSense":
        """Train the shared classifier and assemble a ready-to-run system.

        This follows the paper's training recipe: windows are generated
        under every configuration the controller may select, a single
        classifier is trained on the union, and the resulting pipeline is
        paired with the requested adaptive controller.

        Parameters
        ----------
        configs:
            Sensor configurations represented in the training data
            (default: the four Pareto-optimal SPOT states).
        windows_per_activity_per_config:
            Training windows per (activity, configuration) pair.
        hidden_units:
            Hidden layer sizes of the shared MLP.
        controller:
            Adaptive controller for the assembled system (default:
            SPOT-with-confidence, threshold 20 s, confidence 0.85).
        extractor:
            Feature extractor to use end to end.
        noise:
            Sensor noise model used both for training-data generation
            and later simulations.
        power_model:
            Accelerometer current model for the assembled system.
        seed:
            Master seed for data generation and training.

        Returns
        -------
        AdaSense
        """
        rng = as_rng(seed)
        noise = noise if noise is not None else NoiseModel()
        builder = WindowDatasetBuilder(extractor=extractor, noise=noise, seed=rng)
        dataset = builder.build(
            configs=configs,
            windows_per_activity_per_config=windows_per_activity_per_config,
        )
        pipeline = HarPipeline.train(
            dataset, hidden_units=hidden_units, extractor=extractor, seed=rng
        )
        return cls(
            pipeline=pipeline,
            controller=controller,
            power_model=power_model,
            noise=noise,
        )

    @classmethod
    def from_dataset(
        cls,
        dataset: WindowDataset,
        hidden_units: Sequence[int] = (32,),
        controller: Optional[AdaptiveController] = None,
        seed: SeedLike = None,
        **kwargs,
    ) -> "AdaSense":
        """Assemble a system from an existing (possibly real) window dataset."""
        pipeline = HarPipeline.train(dataset, hidden_units=hidden_units, seed=seed)
        return cls(pipeline=pipeline, controller=controller, **kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._pipeline

    @property
    def controller(self) -> AdaptiveController:
        """The adaptive controller."""
        return self._controller

    @property
    def power_model(self) -> AccelerometerPowerModel:
        """The accelerometer current model."""
        return self._power_model

    @property
    def noise_model(self) -> NoiseModel:
        """The sensor noise model used in simulations."""
        return self._noise

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def classify(self, samples: np.ndarray, sampling_hz: float) -> ClassificationResult:
        """Classify a raw sample batch (delegates to the pipeline)."""
        return self._pipeline.classify_samples(samples, sampling_hz)

    def with_controller(self, controller: AdaptiveController) -> "AdaSense":
        """A copy of this system using a different adaptive controller.

        The pipeline, power model and noise model are shared, which makes
        apples-to-apples controller comparisons (static versus SPOT versus
        SPOT-with-confidence) cheap.
        """
        return AdaSense(
            pipeline=self._pipeline,
            controller=controller,
            power_model=self._power_model,
            noise=self._noise,
            internal_rate_hz=self._internal_rate_hz,
        )

    def simulator(self) -> ClosedLoopSimulator:
        """Build the closed-loop simulator for this system."""
        return ClosedLoopSimulator(
            pipeline=self._pipeline,
            controller=self._controller,
            power_model=self._power_model,
            noise=self._noise,
            internal_rate_hz=self._internal_rate_hz,
        )

    def simulate(self, schedule: ScheduleLike, seed: SeedLike = None) -> SimulationTrace:
        """Run the closed loop over an activity schedule."""
        return self.simulator().run(schedule, seed=seed)

    # ------------------------------------------------------------------
    # Convenience controller factories
    # ------------------------------------------------------------------
    @staticmethod
    def spot_controller(
        stability_threshold: int = 20,
        states: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
    ) -> SpotController:
        """Build a plain SPOT controller with the paper's default states."""
        return SpotController(states=states, stability_threshold=stability_threshold)

    @staticmethod
    def spot_with_confidence_controller(
        stability_threshold: int = 20,
        confidence_threshold: float = 0.85,
        states: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
    ) -> SpotWithConfidenceController:
        """Build a SPOT-with-confidence controller (paper default 0.85)."""
        return SpotWithConfidenceController(
            states=states,
            stability_threshold=stability_threshold,
            confidence_threshold=confidence_threshold,
        )

    @staticmethod
    def static_controller(config: Optional[SensorConfig] = None) -> StaticController:
        """Build the always-one-configuration baseline controller."""
        if config is None:
            return StaticController()
        return StaticController(config)

"""The six daily activities recognised by the AdaSense HAR framework.

The paper's classifier distinguishes *sit*, *stand*, *walk*, *go
upstairs*, *go downstairs* and *lie down*.  This module defines the
canonical enumeration used throughout the library together with the
static/dynamic split that the intensity-based baseline (NK et al. [8])
relies on.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Sequence, Tuple


class Activity(IntEnum):
    """Enumeration of the six recognised daily activities.

    The integer values double as class indices for the classifier's
    softmax output layer, so they must stay contiguous and start at 0.
    """

    SIT = 0
    STAND = 1
    WALK = 2
    UPSTAIRS = 3
    DOWNSTAIRS = 4
    LIE = 5

    @property
    def label(self) -> str:
        """Human readable label matching the wording used in the paper."""
        return _LABELS[self]

    @property
    def is_static(self) -> bool:
        """Whether the activity is a low-intensity (postural) activity.

        The intensity-based baseline treats ``sit``, ``stand`` and ``lie
        down`` as low-intensity activities that allow the sensor to drop
        into its power-saving configuration.
        """
        return self in STATIC_ACTIVITIES

    @property
    def is_dynamic(self) -> bool:
        """Whether the activity involves locomotion (walking variants)."""
        return self in DYNAMIC_ACTIVITIES

    @classmethod
    def from_any(cls, value: "Activity | int | str") -> "Activity":
        """Coerce an int index, a name or a label into an :class:`Activity`.

        Accepts the enum itself, the integer class index, the enum member
        name (``"WALK"``, case-insensitive) or the paper-style label
        (``"go upstairs"``).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, (int,)) and not isinstance(value, bool):
            return cls(value)
        if isinstance(value, str):
            name = value.strip()
            upper = name.upper().replace(" ", "_")
            if upper in cls.__members__:
                return cls[upper]
            lowered = name.lower()
            for activity, label in _LABELS.items():
                if label == lowered:
                    return activity
            raise ValueError(f"unknown activity name {value!r}")
        raise TypeError(f"cannot interpret {value!r} as an Activity")


_LABELS = {
    Activity.SIT: "sit",
    Activity.STAND: "stand",
    Activity.WALK: "walk",
    Activity.UPSTAIRS: "go upstairs",
    Activity.DOWNSTAIRS: "go downstairs",
    Activity.LIE: "lie down",
}

#: Low intensity, postural activities (no locomotion).
STATIC_ACTIVITIES: Tuple[Activity, ...] = (Activity.SIT, Activity.STAND, Activity.LIE)

#: High intensity, locomotion activities.
DYNAMIC_ACTIVITIES: Tuple[Activity, ...] = (
    Activity.WALK,
    Activity.UPSTAIRS,
    Activity.DOWNSTAIRS,
)

#: All activities ordered by class index.
ALL_ACTIVITIES: Tuple[Activity, ...] = tuple(Activity)

#: Number of output classes for the activity classifier.
NUM_ACTIVITIES: int = len(ALL_ACTIVITIES)


def activity_names() -> List[str]:
    """Return the paper-style labels ordered by class index."""
    return [activity.label for activity in ALL_ACTIVITIES]


def encode_activities(activities: Sequence["Activity | int | str"]) -> List[int]:
    """Convert a sequence of activity-like values into class indices."""
    return [int(Activity.from_any(value)) for value in activities]

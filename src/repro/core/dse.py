"""Sensor-configuration design-space exploration (Section IV-B, Fig. 2).

The exploration answers one question per configuration of Table I: *if
the accelerometer ran permanently in this configuration, what
recognition accuracy would the HAR pipeline reach and how much current
would the sensor draw?*  Plotting the answers yields the accuracy/power
trade-off of Fig. 2, and the non-dominated points form the Pareto front
from which the SPOT controller's states are chosen.

Accuracy per configuration is measured the way the paper's exploration
implies: a classifier is trained and tested on windows acquired under
that configuration alone, so the number reflects how informative the
configuration's data is rather than how well a mismatched classifier
copes with it (classifier/configuration mismatch is a separate
experiment, see :mod:`repro.experiments.mismatch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.activities import NUM_ACTIVITIES
from repro.core.config import (
    ConfigEvaluation,
    SensorConfig,
    TABLE1_CONFIGS,
    pareto_front,
)
from repro.datasets.windows import WindowDatasetBuilder
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import StandardScaler, train_test_split
from repro.utils.rng import SeedLike, as_rng, stable_seed_from
from repro.utils.validation import check_positive_int


@dataclass
class DseResult:
    """Outcome of a design-space exploration run.

    Attributes
    ----------
    evaluations:
        One :class:`ConfigEvaluation` per explored configuration, in the
        order they were explored.
    """

    evaluations: List[ConfigEvaluation]

    @property
    def front(self) -> List[ConfigEvaluation]:
        """The accuracy/current Pareto front, highest power first."""
        return pareto_front(self.evaluations)

    @property
    def front_names(self) -> List[str]:
        """Names of the Pareto-optimal configurations."""
        return [evaluation.name for evaluation in self.front]

    def evaluation_for(self, config: "SensorConfig | str") -> ConfigEvaluation:
        """Look up the evaluation of one configuration by object or name."""
        name = config.name if isinstance(config, SensorConfig) else str(config)
        for evaluation in self.evaluations:
            if evaluation.name == name:
                return evaluation
        raise KeyError(f"configuration {name!r} was not part of this exploration")

    def format_table(self) -> str:
        """Human-readable table mirroring the data behind Fig. 2."""
        front_names = set(self.front_names)
        lines = [
            f"{'configuration':>14}  {'mode':>10}  {'current (uA)':>12}  "
            f"{'accuracy':>8}  {'pareto':>6}"
        ]
        for evaluation in sorted(self.evaluations, key=lambda e: -e.current_ua):
            marker = "*" if evaluation.name in front_names else ""
            lines.append(
                f"{evaluation.name:>14}  {evaluation.mode.value:>10}  "
                f"{evaluation.current_ua:12.1f}  {evaluation.accuracy:8.3f}  "
                f"{marker:>6}"
            )
        return "\n".join(lines)


class DesignSpaceExplorer:
    """Evaluates accuracy and current for a set of sensor configurations.

    Parameters
    ----------
    builder:
        Window dataset builder providing the synthetic acquisition path.
    power_model:
        Accelerometer current model used for the power half of each
        operating point.
    hidden_units:
        Hidden-layer sizes of the per-configuration classifiers trained
        during the exploration.
    seed:
        Master seed; per-configuration datasets and classifiers derive
        deterministic child seeds from it, so two explorations with the
        same seed are identical.
    """

    def __init__(
        self,
        builder: Optional[WindowDatasetBuilder] = None,
        power_model: Optional[AccelerometerPowerModel] = None,
        hidden_units: Sequence[int] = (24,),
        seed: SeedLike = None,
    ) -> None:
        self._seed_rng = as_rng(seed)
        self._base_seed = int(self._seed_rng.integers(0, 2**31 - 1))
        self._builder = builder
        self._power_model = (
            power_model if power_model is not None else AccelerometerPowerModel.bmi160()
        )
        self._hidden_units = tuple(hidden_units)

    @property
    def power_model(self) -> AccelerometerPowerModel:
        """The accelerometer power model used by the exploration."""
        return self._power_model

    def explore(
        self,
        configs: Sequence[SensorConfig] = TABLE1_CONFIGS,
        windows_per_activity: int = 40,
        test_fraction: float = 0.3,
    ) -> DseResult:
        """Evaluate every configuration in ``configs``.

        Parameters
        ----------
        configs:
            Configurations to evaluate (default: the full Table I).
        windows_per_activity:
            Windows generated per activity for each configuration.
        test_fraction:
            Fraction of each configuration's windows held out to measure
            accuracy.

        Returns
        -------
        DseResult
        """
        check_positive_int(windows_per_activity, "windows_per_activity")
        if not configs:
            raise ValueError("configs must not be empty")

        evaluations: List[ConfigEvaluation] = []
        for config in configs:
            accuracy = self._accuracy_for(config, windows_per_activity, test_fraction)
            evaluations.append(
                ConfigEvaluation(
                    config=config,
                    accuracy=accuracy,
                    current_ua=self._power_model.current_ua(config),
                    mode=self._power_model.mode_for(config),
                )
            )
        return DseResult(evaluations=evaluations)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _builder_for(self, config: SensorConfig) -> WindowDatasetBuilder:
        if self._builder is not None:
            return self._builder
        seed = stable_seed_from(self._base_seed, config.name, "dataset")
        return WindowDatasetBuilder(seed=seed)

    def _accuracy_for(
        self, config: SensorConfig, windows_per_activity: int, test_fraction: float
    ) -> float:
        builder = self._builder_for(config)
        dataset = builder.build_for_config(
            config, windows_per_activity=windows_per_activity
        )
        train_features, test_features, train_labels, test_labels = train_test_split(
            dataset.features,
            dataset.labels,
            test_fraction=test_fraction,
            seed=stable_seed_from(self._base_seed, config.name, "split"),
        )
        scaler = StandardScaler()
        train_features = scaler.fit_transform(train_features)
        test_features = scaler.transform(test_features)
        classifier = MLPClassifier(
            input_dim=dataset.num_features,
            num_classes=NUM_ACTIVITIES,
            hidden_units=self._hidden_units,
            seed=stable_seed_from(self._base_seed, config.name, "model"),
            max_epochs=120,
        )
        classifier.fit(train_features, train_labels)
        return classifier.score(test_features, test_labels)

"""The HAR processing pipeline of Fig. 1: features -> scaler -> classifier.

The pipeline consumes a batch of raw accelerometer samples (whatever the
active sensor configuration produced over the last two seconds), runs
the unified feature extraction, standardises the features and asks the
shared classifier for an activity plus its softmax confidence.  Because
the feature vector has a fixed size, one pipeline instance serves every
sensor configuration — which is the core co-optimisation idea of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activities import NUM_ACTIVITIES, Activity
from repro.core.features import FeatureExtractor, default_feature_extractor
from repro.datasets.windows import WindowDataset
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import StandardScaler
from repro.sensors.imu import SensorWindow
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ClassificationResult:
    """Outcome of classifying one window of sensor data.

    Attributes
    ----------
    activity:
        The predicted activity.
    confidence:
        Softmax probability of the predicted activity — the quantity
        SPOT-with-confidence thresholds.
    probabilities:
        Full probability vector over the six activities.
    """

    activity: Activity
    confidence: float
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        if self.probabilities.shape != (NUM_ACTIVITIES,):
            raise ValueError(
                f"probabilities must have shape ({NUM_ACTIVITIES},), got "
                f"{self.probabilities.shape}"
            )


class HarPipeline:
    """Feature extraction, scaling and classification bundled together.

    Parameters
    ----------
    classifier:
        A trained probabilistic classifier (typically
        :class:`repro.ml.mlp.MLPClassifier`).
    scaler:
        The feature scaler fitted on the training features, or ``None``
        when the classifier was trained on raw features.
    extractor:
        The feature extractor; must match the one used to build the
        training set.
    """

    def __init__(
        self,
        classifier: MLPClassifier,
        scaler: Optional[StandardScaler] = None,
        extractor: Optional[FeatureExtractor] = None,
    ) -> None:
        self._classifier = classifier
        self._scaler = scaler
        self._extractor = extractor if extractor is not None else default_feature_extractor()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def classifier(self) -> MLPClassifier:
        """The underlying classifier."""
        return self._classifier

    @property
    def scaler(self) -> Optional[StandardScaler]:
        """The feature scaler (``None`` when features are used raw)."""
        return self._scaler

    @property
    def extractor(self) -> FeatureExtractor:
        """The feature extractor."""
        return self._extractor

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters in the classifier."""
        return self._classifier.num_parameters

    def memory_bytes(self, bytes_per_weight: int = 4) -> int:
        """Bytes needed to store the classifier weights on the device."""
        from repro.ml.persistence import model_memory_bytes

        return model_memory_bytes(self._classifier, bytes_per_weight)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def classify_samples(
        self, samples: np.ndarray, sampling_hz: float
    ) -> ClassificationResult:
        """Classify a raw sample batch acquired at ``sampling_hz``."""
        check_positive(sampling_hz, "sampling_hz")
        features = self._extractor.extract(samples, sampling_hz)
        return self.classify_features(features)

    def classify_window(self, window: SensorWindow) -> ClassificationResult:
        """Classify a :class:`SensorWindow` returned by the simulator."""
        return self.classify_samples(window.samples, window.sampling_hz)

    def classify_windows(
        self, windows: Sequence[SensorWindow]
    ) -> List[ClassificationResult]:
        """Classify many sensor windows with one batched classifier call.

        This is the fleet-simulation hot path: windows sharing a shape
        and sampling rate (devices running the same sensor configuration)
        are stacked and feature-extracted together, and the whole feature
        matrix goes through a single :meth:`classify_batch` call.  The
        results keep the order of ``windows`` and are bit-identical to
        classifying each window on its own.
        """
        if not windows:
            return []
        features = np.empty((len(windows), self._extractor.num_features))
        groups: Dict[Tuple[int, float], List[int]] = {}
        for index, window in enumerate(windows):
            key = (window.samples.shape[0], float(window.sampling_hz))
            groups.setdefault(key, []).append(index)
        for (_, sampling_hz), indices in groups.items():
            stacked = np.stack([np.asarray(windows[i].samples, dtype=float) for i in indices])
            features[indices] = self._extractor.extract_stacked(stacked, sampling_hz)
        return self.classify_batch(features)

    def classify_features(self, features: np.ndarray) -> ClassificationResult:
        """Classify an already-extracted feature vector."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 1:
            raise ValueError(
                f"classify_features expects a single feature vector, got shape "
                f"{features.shape}"
            )
        return self.classify_batch(features[None, :])[0]

    def classify_batch(self, features: np.ndarray) -> List[ClassificationResult]:
        """Classify a matrix of feature vectors with one classifier call.

        Every inference path in the library funnels through this method,
        so single-device and fleet simulations share one code path.  The
        results are invariant to how requests are batched: a feature
        vector classified alone yields bit-identical probabilities to the
        same vector classified inside a larger batch.

        Parameters
        ----------
        features:
            Matrix of shape ``(batch, num_features)``.

        Returns
        -------
        list of ClassificationResult
            One result per input row, in order.
        """
        probabilities = self._batch_probabilities(features)
        results: List[ClassificationResult] = []
        for row in probabilities:
            index = int(np.argmax(row))
            results.append(
                ClassificationResult(
                    activity=Activity(index),
                    confidence=float(row[index]),
                    probabilities=row,
                )
            )
        return results

    def classify_batch_labels(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Classify a feature matrix into plain label/confidence arrays.

        The fleet-scale spelling of :meth:`classify_batch`: the same
        probabilities (bit for bit — both methods share one internal
        path, and ``argmax`` breaks ties identically), but returned as
        two arrays instead of one result object per row, so the
        execution engine's controller bank and streaming telemetry can
        consume them without materialising 10⁵ Python objects per tick.

        Returns
        -------
        (labels, confidences)
            Integer class index and softmax confidence per input row.
        """
        probabilities = self._batch_probabilities(features)
        if probabilities.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        labels = probabilities.argmax(axis=1)
        confidences = probabilities[np.arange(labels.shape[0]), labels]
        return labels, confidences

    def _batch_probabilities(self, features: np.ndarray) -> np.ndarray:
        """Shared batched probability computation for the classify paths."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(
                f"classify_batch expects a feature matrix, got shape {features.shape}"
            )
        if features.shape[0] == 0:
            return np.empty((0, NUM_ACTIVITIES))
        if self._scaler is not None:
            features = self._scaler.transform(features)
        # A single-row matrix product may be dispatched to a different
        # BLAS kernel (gemv) than the same row inside a larger batch
        # (gemm), which changes the floating-point summation order.
        # Duplicating the lone row keeps results batch-size invariant.
        if features.shape[0] == 1:
            return np.atleast_2d(
                self._classifier.predict_proba(np.vstack([features, features]))
            )[:1]
        return np.atleast_2d(self._classifier.predict_proba(features))

    # ------------------------------------------------------------------
    # Training / evaluation on window datasets
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        dataset: WindowDataset,
        hidden_units: Sequence[int] = (32,),
        extractor: Optional[FeatureExtractor] = None,
        seed: SeedLike = None,
        max_epochs: int = 200,
        learning_rate: float = 5e-3,
    ) -> "HarPipeline":
        """Train a pipeline on a labelled window dataset.

        The dataset's features are standardised, a single MLP is trained
        on windows from *all* configurations present in the dataset (the
        paper's shared-classifier approach) and the fitted scaler plus
        classifier are wrapped into a ready-to-use pipeline.
        """
        scaler = StandardScaler()
        features = scaler.fit_transform(dataset.features)
        classifier = MLPClassifier(
            input_dim=dataset.num_features,
            num_classes=NUM_ACTIVITIES,
            hidden_units=hidden_units,
            seed=seed,
            max_epochs=max_epochs,
            learning_rate=learning_rate,
        )
        classifier.fit(features, dataset.labels)
        return cls(classifier=classifier, scaler=scaler, extractor=extractor)

    def evaluate(self, dataset: WindowDataset) -> float:
        """Recognition accuracy of the pipeline on a window dataset."""
        predictions = self.predict_dataset(dataset)
        return accuracy_score(dataset.labels, predictions)

    def predict_dataset(self, dataset: WindowDataset) -> np.ndarray:
        """Predicted class indices for every window in ``dataset``."""
        features = dataset.features
        if self._scaler is not None:
            features = self._scaler.transform(features)
        return np.atleast_1d(self._classifier.predict(features))

    def confusion(self, dataset: WindowDataset) -> np.ndarray:
        """Confusion matrix of the pipeline on ``dataset``."""
        predictions = self.predict_dataset(dataset)
        return confusion_matrix(dataset.labels, predictions, NUM_ACTIVITIES)

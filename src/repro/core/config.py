"""Sensor configurations and the Table I design space.

A *sensor configuration* in AdaSense is a pair of

* an output **sampling frequency** (how many averaged samples per second
  the accelerometer delivers to the HAR pipeline), and
* an **averaging window** (how many internal sub-samples the IMU averages
  to produce one output sample).

The paper explores the 16 combinations of Table I and selects the four
Pareto-optimal ones ``{F100_A128, F50_A16, F12.5_A16, F12.5_A8}`` as the
states of the SPOT controller.  This module defines the configuration
dataclass, the canonical Table I registry, name parsing and generic
Pareto-front utilities used by the design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import lru_cache
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.utils.validation import check_positive, check_positive_int


class OperationMode(Enum):
    """Accelerometer operation modes described in Section IV-A.

    In *normal* mode the sensing element is always powered, so the
    averaging window has no effect on current draw.  In *low-power* mode
    the sensor duty-cycles between suspend and active states: it wakes
    up long enough to capture and average the configured number of
    sub-samples for every output sample, so both the sampling frequency
    and the averaging window determine the on-time.
    """

    NORMAL = "normal"
    LOW_POWER = "low_power"


@dataclass(frozen=True, order=False)
class SensorConfig:
    """One accelerometer configuration (sampling frequency, averaging window).

    Parameters
    ----------
    sampling_hz:
        Output data rate of the accelerometer in hertz.
    averaging_window:
        Number of internal sub-samples averaged per output sample.
    """

    sampling_hz: float
    averaging_window: int

    def __post_init__(self) -> None:
        check_positive(self.sampling_hz, "sampling_hz")
        check_positive_int(self.averaging_window, "averaging_window")

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``"F12.5_A16"``."""
        freq = self.sampling_hz
        freq_text = f"{freq:g}"
        return f"F{freq_text}_A{self.averaging_window}"

    @property
    def samples_per_window(self) -> int:
        """Number of output samples produced during one classification window.

        The HAR framework classifies 2-second windows, so this is simply
        ``2 * sampling_hz`` rounded to the nearest integer.
        """
        from repro.core.features import WINDOW_DURATION_S

        return int(round(self.sampling_hz * WINDOW_DURATION_S))

    def samples_in(self, duration_s: float) -> int:
        """Number of output samples produced in ``duration_s`` seconds."""
        check_positive(duration_s, "duration_s")
        return int(round(self.sampling_hz * duration_s))

    @classmethod
    def from_name(cls, name: str) -> "SensorConfig":
        """Parse a paper-style configuration name such as ``"F50_A16"``.

        Raises
        ------
        ValueError
            If the name does not follow the ``F<freq>_A<window>`` pattern.
        """
        text = name.strip()
        if not text.upper().startswith("F") or "_A" not in text.upper():
            raise ValueError(f"malformed configuration name {name!r}")
        freq_part, _, window_part = text[1:].partition("_")
        window_part = window_part.lstrip("Aa")
        try:
            freq = float(freq_part)
            window = int(window_part)
        except ValueError as exc:
            raise ValueError(f"malformed configuration name {name!r}") from exc
        return cls(sampling_hz=freq, averaging_window=window)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _build_table1() -> Tuple[SensorConfig, ...]:
    """Construct the 16 Table I combinations in the paper's order."""
    combos = [
        (100.0, 128),
        (50.0, 128),
        (25.0, 128),
        (12.5, 128),
        (6.25, 128),
        (25.0, 32),
        (12.5, 32),
        (6.25, 32),
        (50.0, 16),
        (25.0, 16),
        (12.5, 16),
        (6.25, 16),
        (50.0, 8),
        (25.0, 8),
        (12.5, 8),
        (6.25, 8),
    ]
    return tuple(SensorConfig(freq, window) for freq, window in combos)


#: The 16 sampling-frequency / averaging-window combinations of Table I.
TABLE1_CONFIGS: Tuple[SensorConfig, ...] = _build_table1()

#: Lookup of Table I configurations by paper-style name.
TABLE1_BY_NAME: Dict[str, SensorConfig] = {cfg.name: cfg for cfg in TABLE1_CONFIGS}

#: The four Pareto-optimal configurations the paper selects as SPOT states,
#: ordered from highest to lowest power (the FSM traverses them in order).
DEFAULT_SPOT_STATES: Tuple[SensorConfig, ...] = (
    TABLE1_BY_NAME["F100_A128"],
    TABLE1_BY_NAME["F50_A16"],
    TABLE1_BY_NAME["F12.5_A16"],
    TABLE1_BY_NAME["F12.5_A8"],
)

#: The highest-accuracy, highest-power configuration (the paper's baseline).
HIGH_POWER_CONFIG: SensorConfig = TABLE1_BY_NAME["F100_A128"]

#: The lowest-power SPOT state.
LOW_POWER_CONFIG: SensorConfig = TABLE1_BY_NAME["F12.5_A8"]


def get_config(name_or_config: "SensorConfig | str") -> SensorConfig:
    """Return a :class:`SensorConfig` from a config instance or its name."""
    if isinstance(name_or_config, SensorConfig):
        return name_or_config
    if isinstance(name_or_config, str):
        if name_or_config in TABLE1_BY_NAME:
            return TABLE1_BY_NAME[name_or_config]
        return SensorConfig.from_name(name_or_config)
    raise TypeError(
        f"expected SensorConfig or name string, got {type(name_or_config).__name__}"
    )


@lru_cache(maxsize=None)
def intern_config_table(names: Tuple[str, ...]) -> Tuple[SensorConfig, ...]:
    """Resolve a tuple of configuration names to one shared config tuple.

    Campaign grids spawn many controller variants over the same SPOT
    state table; interning by name guarantees every variant (and every
    device within a variant) holds the *same* tuple object, so the
    fleet engine's controller banks — which group devices by their
    ``states`` table — fuse devices from different variants into one
    vectorized bank instead of building one bank per variant.

    Raises
    ------
    ValueError
        If ``names`` is empty or contains a malformed configuration
        name.
    """
    if not names:
        raise ValueError("a config table needs at least one configuration")
    return tuple(get_config(name) for name in names)


@dataclass(frozen=True)
class ConfigEvaluation:
    """Accuracy / current operating point of one sensor configuration.

    Produced by the design-space exploration (Fig. 2): each configuration
    is characterised by a recognition accuracy and a current draw per
    unit time.
    """

    config: SensorConfig
    accuracy: float
    current_ua: float
    mode: OperationMode = OperationMode.LOW_POWER
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Paper-style name of the evaluated configuration."""
        return self.config.name


def pareto_front(points: Iterable[ConfigEvaluation]) -> List[ConfigEvaluation]:
    """Extract the accuracy/current Pareto front from evaluated points.

    A point dominates another when it has *higher or equal* accuracy and
    *lower or equal* current, with at least one of the two strict.  The
    returned front is sorted by decreasing current (so the first element
    is the highest-power configuration, mirroring the SPOT state order).

    Parameters
    ----------
    points:
        Evaluated configurations, typically from
        :class:`repro.core.dse.DesignSpaceExplorer`.
    """
    candidates = list(points)
    front: List[ConfigEvaluation] = []
    for point in candidates:
        dominated = False
        for other in candidates:
            if other is point:
                continue
            better_or_equal = (
                other.accuracy >= point.accuracy and other.current_ua <= point.current_ua
            )
            strictly_better = (
                other.accuracy > point.accuracy or other.current_ua < point.current_ua
            )
            if better_or_equal and strictly_better:
                dominated = True
                break
        if not dominated:
            front.append(point)
    front.sort(key=lambda item: (-item.current_ua, -item.accuracy))
    return front


def sort_by_power(
    configs: Sequence[SensorConfig], currents_ua: Sequence[float]
) -> List[SensorConfig]:
    """Sort ``configs`` by decreasing current consumption.

    Helper used when deriving SPOT states from a freshly computed Pareto
    front: the FSM expects its states ordered from highest to lowest
    power.
    """
    if len(configs) != len(currents_ua):
        raise ValueError(
            "configs and currents_ua must have the same length, got "
            f"{len(configs)} and {len(currents_ua)}"
        )
    order = sorted(range(len(configs)), key=lambda idx: -float(currents_ua[idx]))
    return [configs[idx] for idx in order]

"""Adaptive sensor-configuration controllers (Sections IV-C to IV-E).

The controller closes the loop of Fig. 3: every second it receives the
classifier's output (activity plus softmax confidence) and decides which
sensor configuration the accelerometer should use for the next episode.

Three controllers are provided:

* :class:`StaticController` — never switches; used as the paper's
  "always high power" baseline.
* :class:`SpotController` — the State Prediction Optimization Technique
  (SPOT) finite-state machine: step down one state after the activity
  has been stable for ``stability_threshold`` consecutive
  classifications, snap back to the highest-power state whenever the
  activity changes.
* :class:`SpotWithConfidenceController` — SPOT plus the confidence
  refinement of Section IV-E: the snap-back to the high-power state only
  happens when the classifier reports the change with a confidence above
  ``confidence_threshold``, which filters out spurious switches caused
  by noisy windows.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.core.activities import Activity
from repro.core.config import DEFAULT_SPOT_STATES, HIGH_POWER_CONFIG, SensorConfig
from repro.utils.validation import check_non_negative, check_probability


@runtime_checkable
class AdaptiveController(Protocol):
    """Protocol every sensor-configuration controller implements."""

    @property
    def current_config(self) -> SensorConfig:
        """Configuration the sensor should use for the next acquisition."""
        ...  # pragma: no cover - protocol definition

    def reset(self) -> None:
        """Return the controller to its initial state."""
        ...  # pragma: no cover - protocol definition

    def update(self, activity: Activity, confidence: float) -> SensorConfig:
        """Consume one classification result and return the next configuration."""
        ...  # pragma: no cover - protocol definition


class StaticController:
    """A controller that keeps the sensor in one fixed configuration.

    Parameters
    ----------
    config:
        The configuration to hold; defaults to the highest-accuracy
        F100_A128 state, which is the paper's accuracy/power baseline.
    """

    def __init__(self, config: SensorConfig = HIGH_POWER_CONFIG) -> None:
        self._config = config

    @property
    def current_config(self) -> SensorConfig:
        """The fixed configuration."""
        return self._config

    def reset(self) -> None:
        """No internal state to reset."""

    def update(self, activity: Activity, confidence: float) -> SensorConfig:
        """Ignore the classification result and keep the fixed configuration."""
        check_probability(confidence, "confidence")
        return self._config

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StaticController(config={self._config.name})"


class SpotController:
    """The State Prediction Optimization Technique finite-state machine.

    The controller maintains an ordered list of sensor configurations
    (highest power first).  Starting at the first state it counts
    consecutive classifications that agree with the previous one; when
    the counter reaches ``stability_threshold`` it advances to the next,
    lower-power state and restarts the count.  Any detected activity
    change resets the counter and returns the FSM to the first state.

    Parameters
    ----------
    states:
        Sensor configurations ordered from highest to lowest power;
        defaults to the four Pareto-optimal configurations of the paper.
    stability_threshold:
        Number of consecutive matching classifications required before
        stepping down one state.  The pipeline classifies once per
        second, so this value is also the threshold in seconds used on
        the x-axis of Fig. 6.
    """

    def __init__(
        self,
        states: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
        stability_threshold: int = 20,
    ) -> None:
        states = list(states)
        if not states:
            raise ValueError("states must contain at least one configuration")
        check_non_negative(stability_threshold, "stability_threshold")
        self._states: List[SensorConfig] = states
        self._stability_threshold = int(stability_threshold)
        self._state_index = 0
        self._counter = 0
        self._last_activity: Optional[Activity] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def states(self) -> Tuple[SensorConfig, ...]:
        """The FSM states ordered from highest to lowest power."""
        return tuple(self._states)

    @property
    def stability_threshold(self) -> int:
        """Number of matching classifications needed to step down."""
        return self._stability_threshold

    @property
    def state_index(self) -> int:
        """Index of the currently active state (0 = highest power)."""
        return self._state_index

    @property
    def counter(self) -> int:
        """Current count of consecutive matching classifications."""
        return self._counter

    @property
    def last_activity(self) -> Optional[Activity]:
        """The activity reported by the previous classification."""
        return self._last_activity

    @property
    def current_config(self) -> SensorConfig:
        """Configuration of the active FSM state."""
        return self._states[self._state_index]

    @property
    def at_lowest_state(self) -> bool:
        """Whether the FSM has reached its last (lowest-power) state."""
        return self._state_index == len(self._states) - 1

    # ------------------------------------------------------------------
    # FSM behaviour
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the first (highest-power) state and clear the history."""
        self._state_index = 0
        self._counter = 0
        self._last_activity = None

    def update(self, activity: Activity, confidence: float) -> SensorConfig:
        """Advance the FSM with one classification result.

        Parameters
        ----------
        activity:
            The activity reported by the classifier for the last window.
        confidence:
            The classifier's softmax probability for that activity.
            Plain SPOT ignores it; it is part of the signature so that
            SPOT and SPOT-with-confidence are interchangeable.

        Returns
        -------
        SensorConfig
            The configuration to use for the next acquisition episode.
        """
        activity = Activity.from_any(activity)
        check_probability(confidence, "confidence")

        if self._last_activity is None or activity == self._last_activity:
            self._handle_stable()
        elif self._should_escalate(activity, confidence):
            # Condition C3: the activity changed -> snap back to the
            # high-accuracy state and restart the stability count.
            self._state_index = 0
            self._counter = 0
        else:
            # A change was reported but is not trusted (only possible in
            # the confidence-aware subclass): hold the current state.
            pass

        self._last_activity = activity
        return self.current_config

    def _handle_stable(self) -> None:
        """Apply conditions C1/C2/C4 for a classification matching the last one."""
        if self.at_lowest_state:
            # Condition C4: already at the lowest-power state, stay there.
            return
        self._counter += 1
        if self._counter >= self._stability_threshold:
            # Condition C2: stable long enough -> move to the next state.
            self._state_index += 1
            self._counter = 0
        # Otherwise condition C1: stay and keep counting.

    def _should_escalate(self, activity: Activity, confidence: float) -> bool:
        """Whether a reported activity change should trigger the snap-back."""
        return True

    def restore_state(
        self,
        state_index: int,
        counter: int,
        last_activity: Optional[Activity],
    ) -> None:
        """Overwrite the FSM state in one call.

        The vectorized controller bank
        (:class:`repro.exec.controller_bank.ControllerBank`) advances
        array-of-states copies of many SPOT machines at once and uses
        this hook to write the final state back into the per-object
        controllers, so code that inspects a controller after a banked
        run sees exactly what a per-object run would have left behind.
        """
        if not 0 <= state_index < len(self._states):
            raise ValueError(
                f"state_index must lie in [0, {len(self._states)}), got {state_index}"
            )
        check_non_negative(counter, "counter")
        self._state_index = int(state_index)
        self._counter = int(counter)
        self._last_activity = (
            None if last_activity is None else Activity.from_any(last_activity)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(state={self.current_config.name}, "
            f"counter={self._counter}, threshold={self._stability_threshold})"
        )


class SpotWithConfidenceController(SpotController):
    """SPOT with the confidence refinement of Section IV-E.

    The decision to move back to the high-power state is only taken when
    the classifier reports the activity change with a confidence above
    ``confidence_threshold`` (0.85 in the paper's evaluation).  Changes
    reported with low confidence — typically caused by a noisy window at
    a low-power configuration — leave the FSM where it is, avoiding the
    power cost of a spurious escalation.

    Parameters
    ----------
    states, stability_threshold:
        As for :class:`SpotController`.
    confidence_threshold:
        Minimum confidence required for an activity change to trigger
        the return to the high-power state.
    """

    def __init__(
        self,
        states: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
        stability_threshold: int = 20,
        confidence_threshold: float = 0.85,
    ) -> None:
        super().__init__(states=states, stability_threshold=stability_threshold)
        check_probability(confidence_threshold, "confidence_threshold")
        self._confidence_threshold = float(confidence_threshold)

    @property
    def confidence_threshold(self) -> float:
        """Minimum confidence required to trust a reported activity change."""
        return self._confidence_threshold

    def _should_escalate(self, activity: Activity, confidence: float) -> bool:
        return confidence >= self._confidence_threshold

    def update(self, activity: Activity, confidence: float) -> SensorConfig:
        """Advance the FSM, ignoring low-confidence activity changes.

        Low-confidence changes neither escalate nor count towards
        stability, and they do not overwrite the remembered activity —
        the controller waits for a trustworthy classification before
        updating its view of what the user is doing.
        """
        activity = Activity.from_any(activity)
        check_probability(confidence, "confidence")
        if (
            self._last_activity is not None
            and activity != self._last_activity
            and confidence < self._confidence_threshold
        ):
            return self.current_config
        return super().update(activity, confidence)
